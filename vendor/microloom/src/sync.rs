//! Model-checked stand-ins for `std::sync` types.
//!
//! Drop-in (method-compatible subset) replacements whose every operation
//! is a scheduling + memory-model event in the exploration. Construct
//! them only inside [`crate::model`] — construction outside a model
//! panics, so a mis-wired `cfg(microloom)` facade fails loudly instead of
//! silently skipping the checking.

use crate::rt::ObjId;
use std::panic::Location;

pub use std::sync::Arc;

pub mod atomic {
    //! Model-checked atomics (`std::sync::atomic` layout).

    use super::*;

    pub use std::sync::atomic::Ordering;

    /// Model-checked `AtomicUsize`. Values are modeled as `u64`, matching
    /// the 64-bit targets the workspace runs on.
    pub struct AtomicUsize {
        engine: Arc<crate::rt::Engine>,
        obj: ObjId,
    }

    impl AtomicUsize {
        #[track_caller]
        pub fn new(value: usize) -> Self {
            let (engine, _) = crate::ctx();
            let obj = engine.new_atomic(value as u64, Location::caller());
            AtomicUsize { engine, obj }
        }

        pub fn load(&self, ordering: Ordering) -> usize {
            let (_, me) = crate::ctx();
            self.engine.atomic_load(me, self.obj, ordering, "usize") as usize
        }

        pub fn store(&self, value: usize, ordering: Ordering) {
            let (_, me) = crate::ctx();
            self.engine
                .atomic_store(me, self.obj, value as u64, ordering, "usize");
        }

        pub fn fetch_add(&self, value: usize, ordering: Ordering) -> usize {
            let (_, me) = crate::ctx();
            self.engine
                .atomic_rmw(me, self.obj, ordering, "usize.fetch_add", |old| {
                    Some(old.wrapping_add(value as u64))
                }) as usize
        }

        pub fn fetch_sub(&self, value: usize, ordering: Ordering) -> usize {
            let (_, me) = crate::ctx();
            self.engine
                .atomic_rmw(me, self.obj, ordering, "usize.fetch_sub", |old| {
                    Some(old.wrapping_sub(value as u64))
                }) as usize
        }

        pub fn swap(&self, value: usize, ordering: Ordering) -> usize {
            let (_, me) = crate::ctx();
            self.engine
                .atomic_rmw(me, self.obj, ordering, "usize.swap", |_| Some(value as u64))
                as usize
        }

        /// `compare_exchange` modeled with a single `success` ordering (a
        /// failed exchange is a pure load at the same strength).
        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            success: Ordering,
            _failure: Ordering,
        ) -> Result<usize, usize> {
            let (_, me) = crate::ctx();
            let observed =
                self.engine
                    .atomic_rmw(me, self.obj, success, "usize.compare_exchange", |old| {
                        (old == current as u64).then_some(new as u64)
                    }) as usize;
            if observed == current {
                Ok(observed)
            } else {
                Err(observed)
            }
        }
    }

    /// Model-checked `AtomicBool`.
    pub struct AtomicBool {
        engine: Arc<crate::rt::Engine>,
        obj: ObjId,
    }

    impl AtomicBool {
        #[track_caller]
        pub fn new(value: bool) -> Self {
            let (engine, _) = crate::ctx();
            let obj = engine.new_atomic(u64::from(value), Location::caller());
            AtomicBool { engine, obj }
        }

        pub fn load(&self, ordering: Ordering) -> bool {
            let (_, me) = crate::ctx();
            self.engine.atomic_load(me, self.obj, ordering, "bool") != 0
        }

        pub fn store(&self, value: bool, ordering: Ordering) {
            let (_, me) = crate::ctx();
            self.engine
                .atomic_store(me, self.obj, u64::from(value), ordering, "bool");
        }

        pub fn swap(&self, value: bool, ordering: Ordering) -> bool {
            let (_, me) = crate::ctx();
            self.engine
                .atomic_rmw(me, self.obj, ordering, "bool.swap", |_| {
                    Some(u64::from(value))
                })
                != 0
        }
    }
}

pub use atomic::{AtomicBool, AtomicUsize};

/// Model-checked mutex. Lock acquisition is a blocking scheduling event;
/// acquiring joins the previous unlocker's view (lock/unlock
/// synchronize), and the stored data sits behind a real `std` mutex so
/// teardown of failed executions stays data-race free.
///
/// No poisoning: `lock` returns the guard directly, like `parking_lot`
/// (and the vendored stub of it) — a panicking model thread already
/// fails the whole exploration.
pub struct Mutex<T> {
    engine: Arc<crate::rt::Engine>,
    obj: ObjId,
    data: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        let (engine, _) = crate::ctx();
        let obj = engine.new_mutex(Location::caller());
        Mutex {
            engine,
            obj,
            data: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (_, me) = crate::ctx();
        self.engine.mutex_lock(me, self.obj);
        MutexGuard {
            inner: Some(self.data.lock().unwrap_or_else(|e| e.into_inner())),
            lock: self,
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data before the logical unlock wakes any waiter.
        self.inner = None;
        let (_, me) = crate::ctx();
        self.lock.engine.mutex_unlock(me, self.lock.obj);
    }
}
