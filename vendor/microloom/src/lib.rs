//! Vendored loom-style interleaving model checker.
//!
//! `microloom` runs a closure over and over, exploring every schedule of
//! the model threads it spawns (DFS over scheduling and stale-read
//! decisions), in the spirit of the `loom` crate but std-only and small
//! enough to vendor (the build image has no registry access, like the
//! sibling `microcheck` shim).
//!
//! ```
//! use microloom::sync::atomic::{AtomicUsize, Ordering};
//! use microloom::sync::Arc;
//!
//! microloom::model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             microloom::thread::spawn(move || {
//!                 counter.fetch_add(1, Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(counter.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! # What is explored
//!
//! Model code must use [`sync::atomic::AtomicUsize`],
//! [`sync::atomic::AtomicBool`], [`sync::Mutex`] and
//! [`thread::spawn`] / [`thread::scope`] instead of the `std` types.
//! Every operation on those types is a *scheduling boundary*: the checker
//! decides which thread performs the next operation, and atomic loads
//! additionally decide *which store they read* under a simplified C11
//! memory model (per-object modification order, per-thread coherence
//! floors, release views joined by acquire loads). `Relaxed` loads can
//! therefore legally observe stale values, which is what distinguishes
//! them from `Acquire`/`Release` pairs on real litmus tests.
//!
//! Exploration is exhaustive up to the configured bounds
//! ([`Builder::max_preemptions`], [`Builder::max_ops`],
//! [`Builder::max_executions`]) with sound state-hash pruning: a
//! scheduling point whose full fingerprint (thread positions +
//! observation history + views + store lists + mutex states + remaining
//! preemption budget) has been scheduled from before is abandoned, since
//! the earlier visit explores the same continuations.
//!
//! # Failure replay
//!
//! The first failing execution (assertion panic, explicit panic, detected
//! deadlock, or op-budget blowout) aborts exploration. [`check`] returns
//! the printable schedule as [`Failure::trace`]; [`model`] panics with
//! it. Exploration order is deterministic, so the failing schedule — and
//! its trace, byte for byte — is the same on every run.
//!
//! # Simplifications vs. C11 (and loom)
//!
//! * `SeqCst` is modeled as Acquire/Release that always reads the newest
//!   store — stronger than C11's total SC order, never weaker.
//! * RMWs read the newest store (atomicity) and continue release
//!   sequences.
//! * Non-atomic shared memory is not instrumented; share plain data via
//!   [`sync::Mutex`] only.
//! * A model that truly deadlocks on [`sync::Mutex`] cycles is reported,
//!   but teardown of the failed execution may then hang on the underlying
//!   OS mutexes; structure models so locks are released (the committed
//!   models are lock-free).

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

mod rt;
pub mod sync;
pub mod thread;

use rt::{DecisionRec, Engine, Limits};

thread_local! {
    static CTX: RefCell<Option<(Arc<Engine>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(engine: Arc<Engine>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((engine, id)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The current model thread's engine handle and id. Panics when called
/// outside [`model`] — microloom types must only be used by model code.
pub(crate) fn ctx() -> (Arc<Engine>, usize) {
    CTX.with(|c| {
        c.borrow().clone().unwrap_or_else(|| {
            panic!(
                "microloom sync/thread types may only be used inside microloom::model(); \
                 build the real types in non-model code via the cfg(microloom) facade"
            )
        })
    })
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Statistics of a completed (all schedules passed) exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Schedules executed (including pruned ones).
    pub executions: usize,
    /// Executions abandoned early because their state fingerprint was
    /// already covered.
    pub pruned: usize,
    /// Largest number of branching decisions in any one schedule.
    pub max_depth: usize,
}

/// A failing schedule found by the checker.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (panic message, deadlock description, …).
    pub message: String,
    /// Printable, deterministic replay of the failing schedule.
    pub trace: String,
    /// Branching decisions in the failing schedule.
    pub decisions: usize,
    /// Executions run before the failure was found.
    pub executions: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.trace)
    }
}

/// Exploration bounds. The defaults explore *all* interleavings (no
/// preemption bound) with pruning on; set [`Builder::max_preemptions`]
/// to cut the space on models with many operations — for most bugs two
/// or three preemptions suffice (the loom/CHESS observation).
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Max context switches away from a still-runnable thread per
    /// schedule; `None` = unbounded (fully exhaustive).
    pub max_preemptions: Option<usize>,
    /// Abort exploration after this many schedules.
    pub max_executions: usize,
    /// Fail any single schedule that exceeds this many operations
    /// (catches unbounded spin loops, which DFS cannot enumerate).
    pub max_ops: usize,
    /// State-fingerprint pruning (sound for deterministic models; keep
    /// on unless debugging the checker itself).
    pub prune: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_preemptions: None,
            max_executions: 2_000_000,
            max_ops: 20_000,
            prune: true,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn max_preemptions(mut self, bound: usize) -> Self {
        self.max_preemptions = Some(bound);
        self
    }

    pub fn max_executions(mut self, cap: usize) -> Self {
        self.max_executions = cap;
        self
    }

    /// Explores every schedule of `f`. Returns the exploration [`Report`]
    /// if all pass, or the first [`Failure`] with its replay trace.
    pub fn check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let visited: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        let mut replay: Vec<DecisionRec> = Vec::new();
        let mut report = Report::default();
        loop {
            if report.executions >= self.max_executions {
                return Err(Failure {
                    message: format!(
                        "exploration exceeded max_executions = {} before covering every \
                         schedule; raise the cap or bound preemptions",
                        self.max_executions
                    ),
                    trace: String::new(),
                    decisions: 0,
                    executions: report.executions,
                });
            }
            let limits = Limits {
                max_preemptions: self.max_preemptions,
                max_ops: self.max_ops,
                prune: self.prune,
            };
            let engine = Engine::new(
                replay.iter().map(|d| d.chosen).collect(),
                Arc::clone(&visited),
                limits,
            );
            let root_engine = Arc::clone(&engine);
            let root_f = Arc::clone(&f);
            let root = std::thread::Builder::new()
                .name("microloom-t0".into())
                .spawn(move || {
                    set_ctx(Arc::clone(&root_engine), 0);
                    let outcome = catch_unwind(AssertUnwindSafe(|| root_f()));
                    let panicked = outcome.err().map(|p| panic_message(p.as_ref()));
                    root_engine.thread_finished(0, panicked);
                    clear_ctx();
                })
                .expect("microloom: cannot spawn the model root thread");
            // The wrapper caught everything, so this join cannot fail.
            let _ = root.join();
            engine.wait_all_finished();
            let detached: Vec<_> = engine
                .os_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
                .collect();
            for handle in detached {
                let _ = handle.join();
            }
            report.executions += 1;
            let (decisions, failure, pruned) = engine.take_state();
            if pruned {
                report.pruned += 1;
            }
            report.max_depth = report.max_depth.max(decisions.len());
            if let Some(info) = failure {
                return Err(Failure {
                    message: info.message.clone(),
                    trace: rt::format_failure(&info, report.executions),
                    decisions: info.decisions,
                    executions: report.executions,
                });
            }
            // DFS advance: bump the deepest decision with an untaken
            // alternative; exploration is complete when none remains.
            replay = decisions;
            loop {
                match replay.last_mut() {
                    None => return Ok(report),
                    Some(d) if d.chosen + 1 < d.n_alts => {
                        d.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        replay.pop();
                    }
                }
            }
        }
    }
}

/// Explores every schedule of `f` with the default [`Builder`]; panics
/// with the deterministic replay trace if any schedule fails.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(failure) = Builder::new().check(f) {
        panic!("{}", failure.trace);
    }
}

/// [`Builder::check`] with the default bounds.
pub fn check<F>(f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
