//! The model-checking runtime: one [`Engine`] per explored execution.
//!
//! Every model thread is a real OS thread, but a token-passing scheduler
//! (one mutex + condvar) ensures exactly one of them runs at a time. A
//! thread arriving at a *boundary* (thread start, every sync operation,
//! blocking points, thread exit) asks the scheduler which thread proceeds;
//! each such choice is a recorded [`DecisionRec`], and the DFS in
//! `lib.rs` re-runs the model with a longer replay prefix until every
//! alternative at every decision has been taken.
//!
//! Shared memory is modeled C11-style: an atomic object is a list of
//! stores, each optionally carrying the *release view* of the storing
//! thread. A load may read any store at or after the thread's coherence
//! floor for that object — so `Relaxed` loads can legally observe stale
//! values, and only an `Acquire` load of a `Release` store joins the
//! storer's view into the reader's. This is what lets the checker
//! distinguish `Relaxed` from `Acquire`/`Release` on real litmus tests.
//! Simplifications (documented in the crate docs): `SeqCst` is modeled as
//! Acquire/Release plus always reading the newest store, and RMWs always
//! read the newest store (atomicity) and extend release sequences.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

pub(crate) type ThreadId = usize;
pub(crate) type ObjId = usize;

/// One decision made during an execution: `chosen` out of `n_alts`
/// alternatives. The DFS advances the deepest decision with an untaken
/// alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DecisionRec {
    pub chosen: usize,
    pub n_alts: usize,
}

/// A thread's view of memory: for every atomic object, the index of the
/// oldest store this thread may still read (its coherence floor).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub(crate) struct View {
    seen: Vec<usize>,
}

impl View {
    fn floor(&self, obj: ObjId) -> usize {
        self.seen.get(obj).copied().unwrap_or(0)
    }

    fn raise(&mut self, obj: ObjId, store: usize) {
        if self.seen.len() <= obj {
            self.seen.resize(obj + 1, 0);
        }
        if self.seen[obj] < store {
            self.seen[obj] = store;
        }
    }

    pub(crate) fn join(&mut self, other: &View) {
        if self.seen.len() < other.seen.len() {
            self.seen.resize(other.seen.len(), 0);
        }
        for (mine, theirs) in self.seen.iter_mut().zip(other.seen.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// One store in an atomic object's modification order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Store {
    value: u64,
    /// The storing thread's view if the store (or the release sequence it
    /// continues) was a `Release`; an `Acquire` load of this store joins it.
    release_view: Option<View>,
}

#[derive(Debug)]
struct AtomicObj {
    label: &'static Location<'static>,
    stores: Vec<Store>,
}

#[derive(Debug)]
struct MutexObj {
    label: &'static Location<'static>,
    holder: Option<ThreadId>,
    /// View of the last unlocking thread; joined by the next locker.
    release_view: View,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Status {
    /// Has work to do the moment the scheduler picks it.
    Runnable,
    /// Waiting for a thread to finish.
    JoinedOn(ThreadId),
    /// Waiting for a mutex to be released.
    LockWait(ObjId),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    /// Scheduler boundaries this thread has passed (part of the state
    /// fingerprint: a deterministic thread's local state is a function of
    /// its position and everything it has observed).
    op_count: usize,
    /// Running fold of every value this thread has read.
    observed: u64,
    view: View,
    /// Final view at exit, joined into any thread that joins on us.
    exit_view: Option<View>,
}

/// Why an execution was declared failing.
#[derive(Debug, Clone)]
pub(crate) struct FailureInfo {
    pub message: String,
    pub trace: Vec<String>,
    pub decisions: usize,
    /// True when the panic happened after pruning abandoned branch
    /// recording; the trace is still a real interleaving but the decision
    /// list no longer replays it exactly.
    pub during_free_run: bool,
}

pub(crate) struct EngState {
    threads: Vec<ThreadState>,
    active: ThreadId,
    objects: Vec<AtomicObj>,
    mutexes: Vec<MutexObj>,
    /// Decisions made so far this execution.
    pub(crate) decisions: Vec<DecisionRec>,
    /// Prefix of choices to replay before exploring defaults.
    replay: Vec<usize>,
    preemptions: usize,
    ops_executed: usize,
    /// Human-readable event log of this execution, for failure replay.
    trace: Vec<String>,
    /// Set on the first panic/deadlock observed; never overwritten.
    pub(crate) failure: Option<FailureInfo>,
    /// When true the scheduler stops branching (and, on `free_for_all`,
    /// stops gating) so the execution drains deterministically.
    abandoned: bool,
    free_for_all: bool,
    /// True when this execution was cut by the state-hash prune.
    pub(crate) pruned: bool,
    /// Per-scope lists of spawned-but-unjoined children (see the scope
    /// frame methods below).
    frames: Vec<Vec<ThreadId>>,
}

#[derive(Clone, Copy)]
pub(crate) struct Limits {
    pub max_preemptions: Option<usize>,
    pub max_ops: usize,
    pub prune: bool,
}

pub(crate) struct Engine {
    st: Mutex<EngState>,
    cv: Condvar,
    limits: Limits,
    /// State fingerprints seen across *all* executions of this model run.
    visited: Arc<Mutex<HashSet<u64>>>,
    /// OS handles of `microloom::thread::spawn` threads, drained by the
    /// explorer after the execution completes.
    pub(crate) os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Message used to unwind a thread that the scheduler has declared dead
/// (deadlock) — recognized so it is not double-reported as a model panic.
pub(crate) const DEADLOCK_PANIC: &str = "microloom: execution abandoned (deadlock)";

impl Engine {
    pub(crate) fn new(
        replay: Vec<usize>,
        visited: Arc<Mutex<HashSet<u64>>>,
        limits: Limits,
    ) -> Arc<Self> {
        Arc::new(Engine {
            st: Mutex::new(EngState {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    op_count: 0,
                    observed: 0,
                    view: View::default(),
                    exit_view: None,
                }],
                active: 0,
                objects: Vec::new(),
                mutexes: Vec::new(),
                decisions: Vec::new(),
                replay,
                preemptions: 0,
                ops_executed: 0,
                trace: Vec::new(),
                failure: None,
                abandoned: false,
                free_for_all: false,
                pruned: false,
                frames: Vec::new(),
            }),
            cv: Condvar::new(),
            limits,
            visited,
            os_handles: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn take_state(&self) -> (Vec<DecisionRec>, Option<FailureInfo>, bool) {
        let st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        (st.decisions.clone(), st.failure.clone(), st.pruned)
    }

    // ---- scheduling core -------------------------------------------------

    /// Picks `chosen` out of `n_alts` alternatives: from the replay prefix
    /// while it lasts, the default (0) afterwards. Records the decision so
    /// the explorer can branch later. Returns the default without
    /// recording once the execution is abandoned.
    fn choose(st: &mut EngState, n_alts: usize) -> usize {
        // Forced choices are never recorded (and never consume a replay
        // slot): the replay prefix holds branching decisions only, so a
        // deterministic model re-run stays aligned with it.
        if n_alts <= 1 || st.abandoned {
            return 0;
        }
        let depth = st.decisions.len();
        let chosen = if depth < st.replay.len() {
            st.replay[depth].min(n_alts - 1)
        } else {
            0
        };
        st.decisions.push(DecisionRec { chosen, n_alts });
        chosen
    }

    /// Fingerprint of everything that determines the future of a
    /// deterministic model: per-thread positions + observation history +
    /// views, every atomic's store list, mutex states, and the remaining
    /// preemption budget.
    fn state_hash(st: &EngState, limits: &Limits) -> u64 {
        let mut h = DefaultHasher::new();
        for t in &st.threads {
            t.status.hash(&mut h);
            t.op_count.hash(&mut h);
            t.observed.hash(&mut h);
            t.view.hash(&mut h);
        }
        for o in &st.objects {
            o.stores.hash(&mut h);
        }
        for m in &st.mutexes {
            m.holder.hash(&mut h);
            m.release_view.hash(&mut h);
        }
        if let Some(bound) = limits.max_preemptions {
            bound.saturating_sub(st.preemptions).hash(&mut h);
        }
        h.finish()
    }

    /// The scheduling boundary run by `me` before executing its next
    /// operation: choose who proceeds, hand the token over if it is not
    /// `me`, and block until the token comes back.
    ///
    /// Every boundary is a decision over the runnable threads (bounded by
    /// the preemption budget). This is also where the state-hash prune
    /// fires: once the same fingerprint has been scheduled from before,
    /// the continuation is already covered by the earlier visit.
    fn boundary(&self, me: ThreadId, desc: &str) {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        if st.free_for_all {
            return;
        }
        st.ops_executed += 1;
        if st.ops_executed > self.limits.max_ops {
            drop(st);
            self.fail_here(
                me,
                format!(
                    "execution exceeded {} operations — unbounded loop in the model? \
                     (spin waits must be bounded; prefer join() over spinning)",
                    self.limits.max_ops
                ),
            );
            panic!("{DEADLOCK_PANIC}");
        }
        st.threads[me].op_count += 1;
        // Prune: only in the exploration region (past the replay prefix),
        // never while replaying toward the branch under investigation.
        if self.limits.prune && !st.abandoned && st.decisions.len() >= st.replay.len() {
            let fp = Self::state_hash(&st, &self.limits);
            let first_visit = self
                .visited
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(fp);
            if !first_visit {
                st.abandoned = true;
                st.pruned = true;
            }
        }
        let mut alts = Self::runnable_alts(&st, me);
        if alts.is_empty() {
            // No runnable thread anywhere: every other thread is blocked
            // and `me` cannot continue either only if me is not runnable —
            // but `me` reached this boundary, so it is runnable and always
            // in `alts`. Unreachable; kept as a guard.
            drop(st);
            self.fail_here(me, "scheduler invariant violated".to_string());
            panic!("{DEADLOCK_PANIC}");
        }
        if let Some(bound) = self.limits.max_preemptions {
            if st.preemptions >= bound {
                alts.truncate(1);
            }
        }
        let chosen = alts[Self::choose(&mut st, alts.len())];
        if chosen != me {
            st.preemptions += 1;
            st.active = chosen;
            self.cv.notify_all();
            while st.active != me && !st.free_for_all {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        // Recorded after the token is secured, so the printed schedule
        // lists operations in the order they actually execute.
        st.trace.push(format!("t{me} {desc}"));
    }

    /// Runnable threads ordered current-first (default = keep running, no
    /// preemption), then by id.
    fn runnable_alts(st: &EngState, me: ThreadId) -> Vec<ThreadId> {
        let mut alts = Vec::new();
        if st.threads[me].status == Status::Runnable {
            alts.push(me);
        }
        for (id, t) in st.threads.iter().enumerate() {
            if id != me && t.status == Status::Runnable {
                alts.push(id);
            }
        }
        alts
    }

    /// Hands the token to some runnable thread while `me` is blocked or
    /// exiting. Declares a deadlock if nothing is runnable but threads
    /// remain unfinished.
    fn hand_off(&self, st: &mut EngState, _me: ThreadId) -> Result<(), String> {
        let mut alts: Vec<ThreadId> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(id, _)| id)
            .collect();
        if alts.is_empty() {
            if st.threads.iter().any(|t| t.status != Status::Finished) {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !matches!(t.status, Status::Finished | Status::Runnable))
                    .map(|(id, t)| format!("t{id} {:?}", t.status))
                    .collect();
                return Err(format!(
                    "deadlock: no runnable thread ({})",
                    stuck.join(", ")
                ));
            }
            return Ok(()); // everything finished; nobody needs the token
        }
        // Blocking hand-offs are not preemptions (the current thread cannot
        // continue), but which waiter resumes is still a choice to explore.
        if alts.len() > 1 {
            let chosen = Self::choose(st, alts.len());
            alts.swap(0, chosen);
        }
        st.active = alts[0];
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks `me` with `status` until `wake(state)` says it can proceed.
    fn block_until(
        &self,
        me: ThreadId,
        status: Status,
        desc: &str,
        mut ready: impl FnMut(&EngState) -> bool,
    ) {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.free_for_all || ready(&st) {
                st.threads[me].status = Status::Runnable;
                return;
            }
            st.trace.push(format!("t{me} blocks: {desc}"));
            st.threads[me].status = status;
            if let Err(deadlock) = self.hand_off(&mut st, me) {
                drop(st);
                self.fail_here(me, deadlock);
                panic!("{DEADLOCK_PANIC}");
            }
            while st.active != me && !st.free_for_all {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.threads[me].status = Status::Runnable;
        }
    }

    /// Records the first failure with the trace so far and switches to
    /// free-for-all teardown so every OS thread can drain.
    pub(crate) fn fail_here(&self, me: ThreadId, message: String) {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        if st.failure.is_none() {
            st.trace.push(format!("t{me} FAILS: {message}"));
            st.failure = Some(FailureInfo {
                message,
                trace: st.trace.clone(),
                decisions: st.decisions.len(),
                during_free_run: st.abandoned,
            });
        }
        st.free_for_all = true;
        self.cv.notify_all();
    }

    // ---- thread lifecycle ------------------------------------------------

    /// Registers a child thread spawned by `parent`; the child starts
    /// runnable (its first schedulable unit is "start running") and
    /// inherits the parent's view, as a real spawn synchronizes-with the
    /// child's start.
    pub(crate) fn register_thread(&self, parent: ThreadId) -> ThreadId {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        let id = st.threads.len();
        let view = st.threads[parent].view.clone();
        st.threads.push(ThreadState {
            status: Status::Runnable,
            op_count: 0,
            observed: 0,
            view,
            exit_view: None,
        });
        st.trace.push(format!("t{parent} spawns t{id}"));
        id
    }

    /// Parks a freshly spawned OS thread until the scheduler first picks
    /// it. The spawn itself was the parent's boundary; the child's first
    /// schedulable step begins here.
    pub(crate) fn wait_first_schedule(&self, me: ThreadId) {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        while st.active != me && !st.free_for_all {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The parent's spawn boundary: a scheduling point followed by child
    /// registration.
    pub(crate) fn spawn_boundary(&self, me: ThreadId) -> ThreadId {
        self.boundary(me, "spawn");
        self.register_thread(me)
    }

    pub(crate) fn thread_finished(&self, me: ThreadId, panicked: Option<String>) {
        if let Some(message) = panicked {
            if message != DEADLOCK_PANIC {
                self.fail_here(me, format!("panic: {message}"));
            }
        }
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        st.threads[me].status = Status::Finished;
        st.threads[me].exit_view = Some(st.threads[me].view.clone());
        st.trace.push(format!("t{me} exits"));
        // Joiners become runnable again; their block_until loop rechecks
        // the finished condition once scheduled.
        for t in st.threads.iter_mut() {
            if t.status == Status::JoinedOn(me) {
                t.status = Status::Runnable;
            }
        }
        if st.free_for_all {
            self.cv.notify_all();
            return;
        }
        let deadlock = self.hand_off(&mut st, me).err();
        // Always notify: joiners made runnable above and the explorer's
        // wait_all_finished both key off this exit.
        self.cv.notify_all();
        if let Some(deadlock) = deadlock {
            drop(st);
            self.fail_here(me, deadlock);
            // The thread is exiting anyway; no need to unwind.
        }
    }

    // ---- scope frames ----------------------------------------------------
    //
    // A scope's not-yet-joined children, tracked engine-side so the
    // `thread::Scope` handle can stay `Copy` (which is what lets the
    // vendored crossbeam stub wrap it with crossbeam's own two-lifetime
    // API, nested spawns included).

    pub(crate) fn new_frame(&self) -> usize {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        st.frames.push(Vec::new());
        st.frames.len() - 1
    }

    pub(crate) fn frame_push(&self, frame: usize, child: ThreadId) {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        st.frames[frame].push(child);
    }

    pub(crate) fn frame_remove(&self, frame: usize, child: ThreadId) {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        st.frames[frame].retain(|&id| id != child);
    }

    pub(crate) fn frame_take(&self, frame: usize) -> Vec<ThreadId> {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut st.frames[frame])
    }

    /// Blocks the explorer until every registered thread has logically
    /// finished — detached (`microloom::thread::spawn`) threads may still
    /// be draining after the root closure returns.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        while st.threads.iter().any(|t| t.status != Status::Finished) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Scheduler half of `join`: block until `target` has logically
    /// finished, then adopt its exit view (join synchronizes-with exit).
    pub(crate) fn join_thread(&self, me: ThreadId, target: ThreadId) {
        self.boundary(me, &format!("join t{target}"));
        self.block_until(
            me,
            Status::JoinedOn(target),
            &format!("join t{target}"),
            |st| st.threads[target].status == Status::Finished,
        );
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(exit_view) = st.threads[target].exit_view.clone() {
            st.threads[me].view.join(&exit_view);
        }
    }

    pub(crate) fn yield_now(&self, me: ThreadId) {
        self.boundary(me, "yield");
    }

    // ---- atomics ---------------------------------------------------------

    pub(crate) fn new_atomic(&self, initial: u64, label: &'static Location<'static>) -> ObjId {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        let id = st.objects.len();
        st.objects.push(AtomicObj {
            label,
            stores: vec![Store {
                value: initial,
                release_view: None,
            }],
        });
        // Creation is not a scheduling boundary (no other thread can refer
        // to the object yet), but the creator must not later read stores
        // older than the initializing one.
        let creator = st.active;
        st.threads[creator].view.raise(id, 0);
        id
    }

    fn label_of(st: &EngState, obj: ObjId) -> String {
        let l = st.objects[obj].label;
        let file = l.file().rsplit('/').next().unwrap_or(l.file());
        format!("{}:{}", file, l.line())
    }

    fn fold_observed(st: &mut EngState, me: ThreadId, value: u64) {
        let mut h = DefaultHasher::new();
        st.threads[me].observed.hash(&mut h);
        value.hash(&mut h);
        st.threads[me].observed = h.finish();
    }

    /// An atomic load: may read any store at or after the thread's
    /// coherence floor. Which one is a recorded decision (newest first, so
    /// the default execution behaves like sequential consistency).
    /// `SeqCst` always reads the newest store (a sound over-approximation
    /// of C11 that keeps the model small).
    pub(crate) fn atomic_load(
        &self,
        me: ThreadId,
        obj: ObjId,
        ordering: Ordering,
        op: &str,
    ) -> u64 {
        self.boundary(me, &format!("{op}.load({ordering:?})"));
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        let newest = st.objects[obj].stores.len() - 1;
        let floor = st.threads[me].view.floor(obj).min(newest);
        let candidates = newest - floor; // extra (stale) alternatives
        let chosen = if candidates > 0 && !matches!(ordering, Ordering::SeqCst) {
            let pick = Self::choose(&mut st, candidates + 1);
            newest - pick
        } else {
            newest
        };
        let store = st.objects[obj].stores[chosen].clone();
        if chosen < newest {
            let label = Self::label_of(&st, obj);
            st.trace.push(format!(
                "t{me} … reads stale store #{chosen} of {newest} ({} = {})",
                label, store.value
            ));
        }
        st.threads[me].view.raise(obj, chosen);
        if matches!(
            ordering,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        ) {
            if let Some(rv) = &store.release_view {
                let rv = rv.clone();
                st.threads[me].view.join(&rv);
            }
        }
        Self::fold_observed(&mut st, me, store.value);
        store.value
    }

    /// An atomic store appended to the modification order. `Release` (and
    /// stronger) attaches the storing thread's view for `Acquire` loads to
    /// join; a `Relaxed` store publishes nothing.
    pub(crate) fn atomic_store(
        &self,
        me: ThreadId,
        obj: ObjId,
        value: u64,
        ordering: Ordering,
        op: &str,
    ) {
        self.boundary(me, &format!("{op}.store({value}, {ordering:?})"));
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        let release_view = if matches!(
            ordering,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        ) {
            Some(st.threads[me].view.clone())
        } else {
            None
        };
        let index = st.objects[obj].stores.len();
        st.objects[obj].stores.push(Store {
            value,
            release_view,
        });
        st.threads[me].view.raise(obj, index);
    }

    /// A read-modify-write: always reads the newest store (atomicity),
    /// applies `f`, appends the result. Continues the release sequence of
    /// the store it replaces, so an `Acquire` load of a `Relaxed` RMW
    /// still synchronizes with the original `Release` store.
    pub(crate) fn atomic_rmw(
        &self,
        me: ThreadId,
        obj: ObjId,
        ordering: Ordering,
        op: &str,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        self.boundary(me, &format!("{op}({ordering:?})"));
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        let newest = st.objects[obj].stores.len() - 1;
        let prev = st.objects[obj].stores[newest].clone();
        st.threads[me].view.raise(obj, newest);
        if matches!(
            ordering,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        ) {
            if let Some(rv) = &prev.release_view {
                let rv = rv.clone();
                st.threads[me].view.join(&rv);
            }
        }
        Self::fold_observed(&mut st, me, prev.value);
        if let Some(next) = f(prev.value) {
            let mut release_view = prev.release_view.clone();
            if matches!(
                ordering,
                Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
            ) {
                let mut view = st.threads[me].view.clone();
                if let Some(rv) = &release_view {
                    view.join(rv);
                }
                release_view = Some(view);
            }
            let index = st.objects[obj].stores.len();
            st.objects[obj].stores.push(Store {
                value: next,
                release_view,
            });
            st.threads[me].view.raise(obj, index);
        }
        prev.value
    }

    // ---- mutexes ---------------------------------------------------------

    pub(crate) fn new_mutex(&self, label: &'static Location<'static>) -> ObjId {
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        let id = st.mutexes.len();
        st.mutexes.push(MutexObj {
            label,
            holder: None,
            release_view: View::default(),
        });
        id
    }

    pub(crate) fn mutex_lock(&self, me: ThreadId, obj: ObjId) {
        self.boundary(me, &format!("lock(m{obj})"));
        loop {
            self.block_until(me, Status::LockWait(obj), &format!("lock(m{obj})"), |st| {
                st.mutexes[obj].holder.is_none()
            });
            let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
            if st.mutexes[obj].holder.is_none() || st.free_for_all {
                st.mutexes[obj].holder = Some(me);
                let rv = st.mutexes[obj].release_view.clone();
                st.threads[me].view.join(&rv);
                let label = Self::label_of_mutex(&st, obj);
                st.trace.push(format!("t{me} acquires mutex {label}"));
                return;
            }
            // Lost the race to another woken waiter; block again.
        }
    }

    fn label_of_mutex(st: &EngState, obj: ObjId) -> String {
        let l = st.mutexes[obj].label;
        let file = l.file().rsplit('/').next().unwrap_or(l.file());
        format!("{}:{}", file, l.line())
    }

    pub(crate) fn mutex_unlock(&self, me: ThreadId, obj: ObjId) {
        self.boundary(me, &format!("unlock(m{obj})"));
        let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
        st.mutexes[obj].holder = None;
        st.mutexes[obj].release_view = st.threads[me].view.clone();
        // Lock waiters become runnable again; the next boundary decides
        // which of them (if any) takes the lock first.
        for t in st.threads.iter_mut() {
            if t.status == Status::LockWait(obj) {
                t.status = Status::Runnable;
            }
        }
    }
}

/// Formats a failure as the printable, deterministic replay trace.
pub(crate) fn format_failure(info: &FailureInfo, executions: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "microloom: model failed after {executions} execution(s); {} decision(s) in the failing schedule{}\n",
        info.decisions,
        if info.during_free_run {
            " (failure surfaced during a pruned free-run; the schedule below is real but not replayed decision-by-decision)"
        } else {
            ""
        }
    ));
    out.push_str(&format!("failure: {}\n", info.message));
    out.push_str("failing schedule:\n");
    for (i, line) in info.trace.iter().enumerate() {
        out.push_str(&format!("  #{i:<3} {line}\n"));
    }
    out
}
