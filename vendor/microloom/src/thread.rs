//! Model-checked stand-ins for `std::thread` spawning.
//!
//! Model threads are real OS threads gated by the scheduler, so exactly
//! one runs at a time and every hand-off is a recorded decision.
//! [`scope`] mirrors `std::thread::scope` (which the vendored `crossbeam`
//! stub wraps under `cfg(microloom)`), [`spawn`] mirrors
//! `std::thread::spawn` for `'static` closures.

use crate::rt::Engine;
use crate::{clear_ctx, ctx, panic_message, set_ctx};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// A decision point with no memory effect: lets the scheduler interleave
/// here, like `std::thread::yield_now` gives the OS a chance to.
pub fn yield_now() {
    let (engine, me) = ctx();
    engine.yield_now(me);
}

/// Handle to a detached model thread; [`JoinHandle::join`] returns the
/// closure's result or the panic payload, like `std`.
pub struct JoinHandle<T> {
    engine: Arc<Engine>,
    id: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        let (_, me) = ctx();
        self.engine.join_thread(me, self.id);
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("microloom: joined thread left no result")
    }
}

/// Spawns a `'static` model thread. The spawn itself is a scheduling
/// boundary of the parent; the child starts whenever the exploration
/// schedules it and inherits the parent's memory view (spawn
/// synchronizes-with thread start).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (engine, me) = ctx();
    let id = engine.spawn_boundary(me);
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let child_engine = Arc::clone(&engine);
    let os_handle = std::thread::Builder::new()
        .name(format!("microloom-t{id}"))
        .spawn(move || {
            set_ctx(Arc::clone(&child_engine), id);
            child_engine.wait_first_schedule(id);
            let outcome = catch_unwind(AssertUnwindSafe(f));
            let panicked = outcome.as_ref().err().map(|p| panic_message(p.as_ref()));
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
            child_engine.thread_finished(id, panicked);
            clear_ctx();
        })
        .expect("microloom: cannot spawn a model thread");
    engine
        .os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(os_handle);
    JoinHandle { engine, id, result }
}

/// A scope in which borrowing model threads can be spawned; mirrors
/// `std::thread::Scope`. `Copy`, like a `&std::thread::Scope`, so
/// wrappers (the vendored crossbeam stub) can rebuild scope values inside
/// spawned closures and support nested spawns. The engine handle and the
/// scope's pending-join list live in the engine, looked up via the
/// thread-local context and the `frame` index.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    frame: usize,
}

/// Handle to a thread spawned inside a [`Scope`]; mirrors
/// `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    id: usize,
    frame: usize,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        let (engine, me) = ctx();
        engine.frame_remove(self.frame, self.id);
        engine.join_thread(me, self.id);
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let (engine, me) = ctx();
        let id = engine.spawn_boundary(me);
        engine.frame_push(self.frame, id);
        let child_engine = Arc::clone(&engine);
        let inner = self.inner.spawn(move || {
            set_ctx(Arc::clone(&child_engine), id);
            child_engine.wait_first_schedule(id);
            let outcome = catch_unwind(AssertUnwindSafe(f));
            let panicked = outcome.as_ref().err().map(|p| panic_message(p.as_ref()));
            child_engine.thread_finished(id, panicked);
            clear_ctx();
            match outcome {
                Ok(value) => value,
                // Re-raise so std's scope propagates the panic to an
                // (eventual) join or the scope exit, exactly like a real
                // scoped thread; the failure is already recorded.
                Err(payload) => resume_unwind(payload),
            }
        });
        ScopedJoinHandle {
            inner,
            id,
            frame: self.frame,
        }
    }
}

/// Mirrors `std::thread::scope`: runs `f` with a [`Scope`], joining every
/// spawned thread (through the scheduler) before returning.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let (engine, me) = ctx();
    let frame = engine.new_frame();
    std::thread::scope(move |inner| {
        let scope = Scope { inner, frame };
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        if let Err(payload) = &outcome {
            // Record now (first failure wins) and switch to free-for-all,
            // so the children below drain instead of waiting for a token
            // the unwinding owner would never hand out.
            engine.fail_here(me, format!("panic: {}", panic_message(payload.as_ref())));
        }
        // Logically join children the closure never joined, so std's
        // implicit OS-level join below cannot block a thread the
        // scheduler still considers runnable.
        for id in engine.frame_take(frame) {
            engine.join_thread(me, id);
        }
        match outcome {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    })
}
