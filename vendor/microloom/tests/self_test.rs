//! Self-tests in the broken-lemma style of `vendor/microcheck`: seed a
//! known concurrency bug and pin that the checker finds it, that the
//! replayed failing schedule is deterministic (byte-identical across
//! runs), and that correct code passes *exhaustively*.

use microloom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use microloom::sync::{Arc, Mutex};
use std::sync::atomic::AtomicUsize as StdAtomicUsize;
use std::sync::atomic::Ordering as StdOrdering;

/// Two threads incrementing with an atomic RMW can never lose an update,
/// under any interleaving.
#[test]
fn fetch_add_counter_passes_exhaustively() {
    let report = microloom::check(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                microloom::thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    })
    .expect("fetch_add counter must pass under all interleavings");
    // Exhaustiveness smoke: more than one schedule must actually run.
    assert!(report.executions > 1, "explored only {report:?}");
}

/// The deliberately racy load-then-store counter: the checker must find
/// the lost update, and the failing schedule must replay identically on
/// every run (all nondeterminism is captured in the decision sequence).
#[test]
fn racy_counter_is_caught_with_deterministic_minimal_trace() {
    fn broken_model() -> microloom::Failure {
        microloom::check(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    microloom::thread::spawn(move || {
                        let seen = counter.load(Ordering::SeqCst);
                        counter.store(seen + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2, "an increment was lost");
        })
        .expect_err("the racy counter must be caught")
    }

    let first = broken_model();
    let second = broken_model();
    assert!(
        first.message.contains("an increment was lost"),
        "unexpected failure: {}",
        first.message
    );
    // Deterministic replay: the full printable trace is byte-identical.
    assert_eq!(first.trace, second.trace);
    assert_eq!(first.decisions, second.decisions);
    assert_eq!(first.executions, second.executions);
    // Minimality: the interleaving needs exactly one preemption, so the
    // DFS (which tries fewer-deviation schedules first) must find it
    // within a handful of branching decisions.
    // Minimality, pinned exactly: the failing schedule needs one
    // preemption (t2's load slipped between t1's load and store) and the
    // DFS finds it after eight schedules with seven branching decisions.
    assert_eq!(
        first.decisions, 7,
        "schedule no longer minimal:\n{}",
        first.trace
    );
    assert_eq!(first.executions, 8);
    assert!(
        first.trace.contains("usize.load(SeqCst)\n"),
        "trace lost its op log:\n{}",
        first.trace
    );
}

/// The message-passing litmus test that separates `Relaxed` from
/// `Release`/`Acquire`: with relaxed flag operations the reader may
/// observe the flag set but the payload stale; with a release store and
/// acquire load, the payload is always visible. This is the regression
/// test for the pool's abort/error-publication flag orderings.
#[test]
fn message_passing_litmus_distinguishes_orderings() {
    fn message_passing(
        store_order: Ordering,
        load_order: Ordering,
    ) -> Result<microloom::Report, microloom::Failure> {
        microloom::check(move || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let writer = {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                microloom::thread::spawn(move || {
                    data.store(42, Ordering::Relaxed);
                    flag.store(true, store_order);
                })
            };
            let reader = {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                microloom::thread::spawn(move || {
                    if flag.load(load_order) {
                        assert_eq!(
                            data.load(Ordering::Relaxed),
                            42,
                            "flag observed but payload stale"
                        );
                    }
                })
            };
            writer.join().unwrap();
            reader.join().unwrap();
        })
    }

    let relaxed = message_passing(Ordering::Relaxed, Ordering::Relaxed)
        .expect_err("relaxed message passing must be caught");
    assert!(
        relaxed.message.contains("payload stale"),
        "unexpected failure: {}",
        relaxed.message
    );
    assert!(
        relaxed.trace.contains("reads stale store"),
        "the trace should show the stale read:\n{}",
        relaxed.trace
    );
    message_passing(Ordering::Release, Ordering::Acquire)
        .expect("release/acquire message passing must pass exhaustively");
}

/// A mutex makes the load-then-store counter correct again, and lock
/// acquisition synchronizes (the critical sections never interleave).
#[test]
fn mutex_restores_mutual_exclusion() {
    microloom::check(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                microloom::thread::spawn(move || {
                    let mut guard = counter.lock();
                    *guard += 1;
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    })
    .expect("mutex counter must pass under all interleavings");
}

/// Scoped threads borrow stack state, like the crossbeam stub the pool
/// runs on; results and panics surface through join, and non-model
/// bookkeeping (plain std atomics) stays usable for assertions.
#[test]
fn scoped_threads_borrow_and_surface_panics() {
    microloom::check(|| {
        let claims = StdAtomicUsize::new(0);
        microloom::thread::scope(|scope| {
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        claims.fetch_add(1, StdOrdering::Relaxed);
                    })
                })
                .collect();
            for worker in workers {
                worker.join().unwrap();
            }
        });
        assert_eq!(claims.load(StdOrdering::Relaxed), 2);
    })
    .expect("scoped claim counter must pass under all interleavings");
}

/// A preemption bound of zero only runs threads to completion (switching
/// away from a runnable thread is exactly what a preemption is), so the
/// racy counter's bug is invisible — demonstrating what the bound trades
/// away and why the committed pool models keep it unbounded.
#[test]
fn preemption_bound_zero_hides_the_racy_counter() {
    microloom::Builder::new()
        .max_preemptions(0)
        .check(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    microloom::thread::spawn(move || {
                        let seen = counter.load(Ordering::SeqCst);
                        counter.store(seen + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        })
        .expect("with zero preemptions the threads serialize and the race is hidden");
}

/// Using microloom types outside `model()` is a wiring bug (the facade
/// selected the model types in a real build); it must fail loudly.
#[test]
fn sync_types_outside_model_panic() {
    let outcome = std::panic::catch_unwind(|| drop(AtomicUsize::new(0)));
    let payload = outcome.expect_err("construction outside model() must panic");
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        message.contains("inside microloom::model"),
        "unexpected panic message: {message}"
    );
}
