//! Vendored, API-compatible subset of `crossbeam`'s scoped threads.
//!
//! Implements `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stable since Rust 1.63, which makes the original's unsafe machinery
//! unnecessary). Spawned closures receive a `&Scope` like crossbeam's, so
//! nested spawns work, and the outer `scope` call returns `Err` instead of
//! unwinding when a spawned thread panics.
//!
//! Built with `RUSTFLAGS="--cfg microloom"`, the same API is backed by the
//! vendored `microloom` model checker instead: every spawn/join becomes a
//! scheduling decision and the checker explores all interleavings of the
//! code running inside the scope. This is how `dts_core::pool` is model
//! checked without diverging from the shipped implementation.

#[cfg(not(microloom))]
pub mod thread {
    //! Scoped threads (std backend).

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked thread.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope in which threads borrowing local state can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so it
        /// can spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Creates a scope, runs `f` in it, and joins all spawned threads
    /// before returning. Returns `Err` if `f` or any non-joined thread
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(microloom)]
pub mod thread {
    //! Scoped threads (microloom model-checked backend).
    //!
    //! Same API as the std backend; usable only inside
    //! `microloom::model()`, where every operation is a recorded
    //! scheduling decision. `microloom::thread::Scope` is `Copy`
    //! precisely so this wrapper can rebuild a `&Scope`-receiving
    //! closure, keeping crossbeam's nested-spawn signature.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked thread.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope in which threads borrowing local state can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: microloom::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T>(microloom::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped model thread; the spawn is a scheduling
        /// boundary of the calling thread.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Creates a scope, runs `f` in it, and joins all spawned threads
    /// (through the model scheduler) before returning. Returns `Err` if
    /// `f` or any non-joined thread panicked — note that under microloom
    /// any model-thread panic also fails the whole exploration.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            microloom::thread::scope(|s| f(&Scope { inner: *s }))
        }))
    }
}

#[cfg(all(test, not(microloom)))]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0u64; 8];
        super::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, chunk) in slots.chunks_mut(3).enumerate() {
                handles.push(scope.spawn(move |_| {
                    for slot in chunk.iter_mut() {
                        *slot = i as u64 + 1;
                    }
                    i
                }));
            }
            let ids: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(ids, vec![0, 1, 2]);
        })
        .unwrap();
        assert_eq!(slots, vec![1, 1, 1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let out = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}

#[cfg(all(test, microloom))]
mod microloom_tests {
    /// The microloom-backed scope preserves crossbeam's semantics inside
    /// a model: borrowing spawns, result joins, nested spawns.
    #[test]
    fn scoped_threads_work_inside_a_model() {
        microloom::model(|| {
            let slots = std::sync::Mutex::new(vec![0u64; 4]);
            let sum = super::thread::scope(|scope| {
                let a = scope.spawn(|_| {
                    slots.lock().unwrap()[0] = 1;
                    1u64
                });
                let b = scope.spawn(|inner| {
                    // Nested spawn through the scope argument.
                    inner
                        .spawn(|_| slots.lock().unwrap()[1] = 2)
                        .join()
                        .unwrap();
                    2u64
                });
                a.join().unwrap() + b.join().unwrap()
            })
            .unwrap();
            assert_eq!(sum, 3);
            assert_eq!(&*slots.lock().unwrap(), &[1, 2, 0, 0]);
        });
    }
}
