//! Vendored, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly; a poisoned lock is recovered
//! rather than propagated, matching parking_lot's no-poisoning semantics).

use std::sync;

/// Mutual exclusion primitive; `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader–writer lock; `read`/`write` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
