//! Vendored, API-compatible subset of `serde`.
//!
//! The build image has no reachable crates registry, so this crate provides
//! the serialization contract the workspace actually uses: the
//! [`Serialize`]/[`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (from the sibling `serde_derive` stub), and a self-describing [`Value`]
//! tree that `serde_json` renders to and parses from.
//!
//! Unlike real serde there is no visitor machinery: serializers produce a
//! [`Value`] and deserializers consume one. The JSON shapes match serde's
//! defaults (named structs → objects, newtype structs → their inner value,
//! unit enum variants → strings, data-carrying variants → externally tagged
//! single-key objects), so swapping the real crates back in produces the
//! same documents.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format between `Serialize`
/// impls and data-format crates (`serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object, erroring out for missing fields and
    /// non-objects (used by derived `Deserialize` impls).
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Error::unexpected("object", other),
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Type-mismatch helper returning `Err` directly.
    pub fn unexpected<T>(expected: &str, got: &Value) -> Result<T, Error> {
        Err(Error(format!("expected {expected}, got {}", got.kind())))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Error::unexpected("bool", other),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Error::unexpected("unsigned integer", other),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for i64")))?,
                    other => return Error::unexpected("integer", other),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Error::unexpected("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Error::unexpected("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Error::unexpected("single-character string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Error::unexpected("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Error::unexpected("two-element array", other),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Error::unexpected("object", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for a stable document; serde_json users typically compare
        // round-tripped values, not raw strings, but determinism is free.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Error::unexpected("object", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
