//! Vendored JSON renderer/parser for the in-tree `serde` subset.
//!
//! Provides the `serde_json` entry points the workspace uses —
//! [`to_string`], [`to_string_pretty`], [`from_str`] — on top of
//! `serde::Value`. Numbers round-trip losslessly: integers stay integers,
//! floats are printed with Rust's shortest round-trippable representation.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error raised by JSON rendering or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching real serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value of type `T` from a JSON document.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // `{}` on f64 is the shortest representation that parses back to
            // the same bits; force a `.0` so the value re-parses as a float.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the in-tree
                            // writers (they never escape non-BMP characters).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("tile \"A\"\n".into())),
            ("bytes".into(), Value::UInt(176_128)),
            ("offset".into(), Value::Int(-3)),
            ("ratio".into(), Value::Float(1.25)),
            ("whole".into(), Value::Float(2.0)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for render in [
            to_string(&value).unwrap(),
            to_string_pretty(&value).unwrap(),
        ] {
            let back: Value = from_str(&render).unwrap();
            assert_eq!(back, value, "render was: {render}");
        }
    }

    #[test]
    fn floats_keep_their_type() {
        let compact = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(compact, "2.0");
        assert_eq!(from_str::<Value>("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(from_str::<Value>("2").unwrap(), Value::UInt(2));
        assert_eq!(from_str::<Value>("-2").unwrap(), Value::Int(-2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(to_string(&Value::Float(f64::NAN)).is_err());
    }
}
