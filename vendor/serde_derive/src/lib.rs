//! Derive macros for the vendored `serde` subset.
//!
//! Generates `Serialize`/`Deserialize` impls against the value-model API of
//! the in-tree `serde` crate (`to_value`/`from_value`). Because `syn` and
//! `quote` are unavailable in the build image, the item is parsed with a
//! small hand-rolled scanner over `proc_macro::TokenStream` and the impl is
//! emitted as a string.
//!
//! Supported shapes (everything the workspace derives on):
//!
//! * structs with named fields → JSON objects,
//! * tuple structs with one field (incl. `#[serde(transparent)]`) → the
//!   inner value,
//! * tuple structs with n > 1 fields → arrays,
//! * unit structs → `null`,
//! * enums: unit variants → strings, data variants → externally tagged
//!   single-key objects (serde's default representation).
//!
//! Generic items are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Skips outer attributes (`#[...]`, covering doc comments too) and
/// visibility (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Extracts the field names of a `{ ... }` named-field group.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "expected field name, got {:?}",
                tokens[i].to_string()
            ));
        };
        names.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        // Skip the type up to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(names)
}

/// Counts the fields of a `( ... )` tuple group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        fields -= 1; // trailing comma
    }
    fields
}

/// Parses the variants of an enum body.
fn parse_variants(group: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "expected variant name, got {:?}",
                tokens[i].to_string()
            ));
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an explicit discriminant and the separating comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, got `{kind}`"));
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic items are not supported by the vendored serde derive: `{name}`"
        ));
    }
    if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        }
    } else {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => return Err(format!("expected struct body, got {other:?}")),
        };
        Ok(Item::Struct { name, fields })
    }
}

/// Derives `serde::Serialize` (value-model `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let (name, body) = match &item {
        Item::Struct { name, fields } => (name, serialize_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, serialize_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

fn serialize_struct_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let items: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (variant, fields) in variants {
        let arm = match fields {
            Fields::Unit => format!(
                "{name}::{variant} => ::serde::Value::Str(::std::string::String::from({variant:?}))"
            ),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{variant}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({variant:?}), {inner})])",
                    binders.join(", ")
                )
            }
            Fields::Named(field_names) => {
                let items: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{variant} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({variant:?}), ::serde::Value::Object(::std::vec![{}]))])",
                    field_names.join(", "),
                    items.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join(",\n"))
}

/// Derives `serde::Deserialize` (value-model `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let (name, body) = match &item {
        Item::Struct { name, fields } => (name, deserialize_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, deserialize_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({})),\n\
                     __other => ::serde::Error::unexpected(\"array of length {n}\", __other),\n\
                 }}",
                items.join(", ")
            )
        }
        Fields::Named(names) => {
            let items: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::Value::field(__value, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{\n{}\n}})",
                items.join(",\n")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for (variant, fields) in variants {
        match fields {
            Fields::Unit => unit_arms.push(format!(
                "{variant:?} => ::std::result::Result::Ok({name}::{variant})"
            )),
            Fields::Tuple(1) => data_arms.push(format!(
                "{variant:?} => ::std::result::Result::Ok({name}::{variant}(::serde::Deserialize::from_value(__inner)?))"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                data_arms.push(format!(
                    "{variant:?} => match __inner {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} =>\n\
                             ::std::result::Result::Ok({name}::{variant}({})),\n\
                         __other => ::serde::Error::unexpected(\"array of length {n}\", __other),\n\
                     }}",
                    items.join(", ")
                ))
            }
            Fields::Named(field_names) => {
                let items: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::Value::field(__inner, {f:?})?)?"
                        )
                    })
                    .collect();
                data_arms.push(format!(
                    "{variant:?} => ::std::result::Result::Ok({name}::{variant} {{\n{}\n}})",
                    items.join(",\n")
                ))
            }
        }
    }
    let unknown = format!(
        "__other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other)))"
    );
    unit_arms.push(unknown.clone());
    data_arms.push(unknown);
    format!(
        "match __value {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit}\n}},\n\
             ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __inner) = &__fields[0];\n\
                 match __tag.as_str() {{\n{data}\n}}\n\
             }},\n\
             __other => ::serde::Error::unexpected(\"enum representation\", __other),\n\
         }}",
        unit = unit_arms.join(",\n"),
        data = data_arms.join(",\n")
    )
}
