//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build image has no reachable crates registry, so the workspace ships
//! this minimal deterministic implementation of the parts of `rand 0.8` the
//! codebase uses: [`rngs::StdRng`] (xoshiro256++ seeded with splitmix64),
//! the [`Rng`]/[`SeedableRng`]/[`RngCore`] traits, uniform range sampling,
//! [`distributions::Uniform`], and [`seq::SliceRandom`]. Sequences are
//! deterministic per seed but are **not** the same streams the real crate
//! produces; all in-repo consumers only rely on per-seed determinism.

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random-value API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a float in `[0, 1)`.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample (mirror of `rand`'s trait).
pub trait SampleRange<T> {
    /// Draws one sample from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit domain: every word is a valid sample.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with a splitmix64
    /// seed expansion. Deterministic per seed, `Clone`, and cheap.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Sampling distributions (only uniform is needed in-tree).

    use super::{unit_f64, RngCore, SampleRange};

    /// A distribution that can produce values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed or half-open interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: empty range");
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive: empty range");
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    macro_rules! uniform_distribution {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    if self.inclusive {
                        (self.low..=self.high).sample_single(rng)
                    } else {
                        (self.low..self.high).sample_single(rng)
                    }
                }
            }
        )*};
    }

    uniform_distribution!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// The "standard" distribution of the real crate; here only `f64` in
    /// `[0, 1)` and raw `u64`/`u32` words are supported.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
}

pub mod seq {
    //! Sequence utilities (`shuffle`, `choose`).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// Rough equivalent of `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..=100u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..=100u64)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&x| x <= 100));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&x));
            let y: usize = rng.gen_range(3..9usize);
            assert!((3..9).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
