//! Vendored property-testing shim in the spirit of `proptest`.
//!
//! The build image has no reachable crates registry, so this crate provides
//! the property-testing surface the workspace needs: seeded generators (the
//! [`Gen`] trait plus integer-range, tuple and vector combinators), a
//! deterministic check runner with **greedy failure shrinking**, and the
//! [`property!`] / [`prop_assert!`] macros. Failures are minimized before
//! they are reported: the runner repeatedly asks the generator for smaller
//! candidates ([`Gen::shrink`]) and keeps the smallest value that still
//! fails, so a 200-task counterexample typically collapses to a handful of
//! near-trivial values.
//!
//! ```
//! use microcheck::{gens, Config};
//!
//! // Every value drawn from the range satisfies the property: check passes.
//! let gen = gens::u64_in(0..=100);
//! microcheck::check(&Config::default(), &gen, |&x| {
//!     microcheck::prop_assert!(x <= 100);
//!     Ok(())
//! })
//! .unwrap();
//!
//! // A failing property is shrunk to the smallest failing value.
//! let failure = microcheck::check(&Config::default(), &gen, |&x| {
//!     microcheck::prop_assert!(x < 10, "x = {x} is too large");
//!     Ok(())
//! })
//! .unwrap_err();
//! assert_eq!(failure.minimal, 10);
//! ```
//!
//! Properties either return `Err(message)` (what [`prop_assert!`] does) or
//! panic (a plain `assert!` also works — panics are caught and treated as
//! failures, though the messages libtest prints during shrinking are
//! noisier).

use rand::prelude::*;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod gens;

/// Outcome of one property evaluation: `Ok(())` or a failure message.
pub type PropResult = Result<(), String>;

/// How many cases to run and how to seed them.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to draw (default 256).
    pub cases: usize,
    /// Seed of the case stream (default `0x5eed`). Every run with the same
    /// seed draws the same cases, so failures reproduce exactly.
    pub seed: u64,
    /// Upper bound on shrink candidates evaluated while minimizing a
    /// failure (default 10 000).
    pub max_shrink_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0x5eed,
            max_shrink_steps: 10_000,
        }
    }
}

impl Config {
    /// The default configuration with `MICROCHECK_CASES` and
    /// `MICROCHECK_SEED` environment overrides applied — what the
    /// [`property!`] macro uses, so a failing seed can be replayed without
    /// editing the test.
    ///
    /// # Panics
    ///
    /// Panics on an unparseable override: a replay with a mistyped seed
    /// (e.g. hex) must not silently run the default seed and "pass".
    pub fn from_env() -> Self {
        let mut config = Config::default();
        if let Some(cases) = env_override("MICROCHECK_CASES") {
            assert!(
                cases >= 1,
                "MICROCHECK_CASES must be at least 1 (0 would make every property pass vacuously)"
            );
            config.cases = cases;
        }
        if let Some(seed) = env_override("MICROCHECK_SEED") {
            config.seed = seed;
        }
        config
    }
}

/// Reads a numeric environment override, panicking (loudly, instead of
/// silently falling back to the default) when the value does not parse.
fn env_override<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(value) => Some(value),
        Err(_) => panic!("invalid {name} `{raw}` (expected a decimal integer)"),
    }
}

/// A seeded generator of values of one type, with a shrinking relation.
///
/// `shrink` proposes *strictly simpler* candidates for a failing value —
/// each candidate must be closer to the generator's notion of minimal (the
/// runner does not detect shrink cycles, it only caps the number of
/// candidates evaluated). An empty vector means the value is already
/// minimal.
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes simpler variants of `value`, most aggressive first.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

/// A minimized property failure.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// The originally drawn failing value.
    pub original: T,
    /// The smallest failing value the shrinker reached.
    pub minimal: T,
    /// Failure message of the minimal value.
    pub message: String,
    /// Seed of the run (replay with `MICROCHECK_SEED=<seed>`).
    pub seed: u64,
    /// Zero-based index of the failing case.
    pub case: usize,
    /// Number of accepted shrink steps (`original` → `minimal`).
    pub shrink_steps: usize,
    /// Number of shrink candidates evaluated in total.
    pub candidates_tried: usize,
}

impl<T: Debug> Failure<T> {
    /// Multi-line human-readable report, used by [`property!`] as the panic
    /// message.
    pub fn report(&self, name: &str) -> String {
        format!(
            "property `{name}` failed (case {case}, seed {seed}):\n  \
             minimal:  {minimal:?}\n  \
             original: {original:?}\n  \
             shrink:   {steps} steps ({tried} candidates tried)\n  \
             message:  {message}",
            case = self.case,
            seed = self.seed,
            minimal = self.minimal,
            original = self.original,
            steps = self.shrink_steps,
            tried = self.candidates_tried,
            message = self.message,
        )
    }
}

/// Evaluates the property once, converting panics into failure messages so
/// `assert!` works inside properties.
fn eval<T>(prop: &impl Fn(&T) -> PropResult, value: &T) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(result) => result,
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "property panicked (non-string payload)".into())),
    }
}

/// Runs `prop` on `config.cases` values drawn from `gen`; on the first
/// failure, shrinks it to a minimal counterexample and returns it.
///
/// This is the panic-free entry point — tests that assert *on the failure
/// itself* (e.g. that a deliberately broken property shrinks to a known
/// minimal counterexample) call this directly; ordinary property tests use
/// the [`property!`] macro, which panics with [`Failure::report`].
pub fn check<G: Gen>(
    config: &Config,
    gen: &G,
    prop: impl Fn(&G::Value) -> PropResult,
) -> Result<(), Failure<G::Value>> {
    assert!(
        config.cases >= 1,
        "a property checked over zero cases would pass vacuously"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    for case in 0..config.cases {
        let original = gen.generate(&mut rng);
        let Err(first_message) = eval(&prop, &original) else {
            continue;
        };

        // Greedy shrink: take the first simpler candidate that still fails
        // and restart from it, until no candidate fails or the step budget
        // runs out.
        let mut minimal = original.clone();
        let mut message = first_message;
        let mut shrink_steps = 0;
        let mut candidates_tried = 0;
        'shrinking: loop {
            for candidate in gen.shrink(&minimal) {
                if candidates_tried >= config.max_shrink_steps {
                    break 'shrinking;
                }
                candidates_tried += 1;
                if let Err(m) = eval(&prop, &candidate) {
                    minimal = candidate;
                    message = m;
                    shrink_steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }

        return Err(Failure {
            original,
            minimal,
            message,
            seed: config.seed,
            case,
            shrink_steps,
            candidates_tried,
        });
    }
    Ok(())
}

/// Declares a `#[test]` property in `proptest` style:
///
/// ```
/// microcheck::property! {
///     /// Addition over the drawn domain never overflows.
///     fn addition_is_small((a, b) in (microcheck::gens::u64_in(0..=10),
///                                     microcheck::gens::u64_in(0..=10))) {
///         microcheck::prop_assert!(a + b <= 20, "a={a} b={b}");
///     }
/// }
/// # fn main() {}
/// ```
///
/// The body runs once per drawn value; use [`prop_assert!`] /
/// [`prop_assert_eq!`] (or plain `assert!`) to reject a value. On failure
/// the test panics with the minimized counterexample and the seed to replay
/// it.
///
/// A property may override the default case count with a trailing
/// `cases = N` (the `MICROCHECK_CASES` environment variable still wins):
///
/// ```ignore
/// microcheck::property! {
///     fn thorough(x in microcheck::gens::u64_in(0..=9), cases = 20_000) { ... }
/// }
/// ```
#[macro_export]
macro_rules! property {
    ($($(#[$attr:meta])* fn $name:ident($pat:pat in $gen:expr $(, cases = $cases:expr)? $(,)?) $body:block)+) => {$(
        $(#[$attr])*
        #[test]
        fn $name() {
            #[allow(unused_mut)]
            let mut config = $crate::Config::from_env();
            $(
                if ::std::env::var("MICROCHECK_CASES").is_err() {
                    config.cases = $cases;
                }
            )?
            let gen = $gen;
            let outcome = $crate::check(&config, &gen, |value| {
                let $pat = ::std::clone::Clone::clone(value);
                $body
                ::std::result::Result::Ok(())
            });
            if let ::std::result::Result::Err(failure) = outcome {
                ::std::panic!("{}", failure.report(stringify!($name)));
            }
        }
    )+};
}

/// Rejects the current property case unless `cond` holds. Only valid inside
/// a block whose return type is [`PropResult`] (the [`property!`] body or a
/// closure handed to [`check`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// [`prop_assert!`] for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err(format!(
                "{}\n  left:  {:?}\n  right: {:?}",
                format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gens;

    #[test]
    fn passing_property_checks_every_case() {
        let mut seen = std::cell::Cell::new(0usize);
        let gen = gens::u64_in(5..=9);
        check(&Config::default(), &gen, |&x| {
            seen.set(seen.get() + 1);
            prop_assert!((5..=9).contains(&x));
            Ok(())
        })
        .unwrap();
        assert_eq!(*seen.get_mut(), Config::default().cases);
    }

    #[test]
    fn failing_int_property_shrinks_to_the_boundary() {
        // `x < 10` over 0..=1000: the smallest failing value is exactly 10.
        let gen = gens::u64_in(0..=1000);
        let failure = check(&Config::default(), &gen, |&x| {
            prop_assert!(x < 10, "x = {x}");
            Ok(())
        })
        .unwrap_err();
        assert_eq!(failure.minimal, 10);
        assert!(failure.original >= 10);
        assert_eq!(failure.message, "x = 10");
    }

    #[test]
    fn shrinking_respects_the_range_low_bound() {
        // Everything fails, so the minimum is the range low itself.
        let gen = gens::u64_in(7..=1000);
        let failure = check(&Config::default(), &gen, |_| Err("always".into())).unwrap_err();
        assert_eq!(failure.minimal, 7);
        assert_eq!(failure.case, 0);
    }

    #[test]
    fn tuples_shrink_component_wise() {
        let gen = (gens::u64_in(0..=500), gens::u64_in(0..=500));
        let failure = check(&Config::default(), &gen, |&(a, b)| {
            prop_assert!(a + b < 20, "a={a} b={b}");
            Ok(())
        })
        .unwrap_err();
        let (a, b) = failure.minimal;
        assert_eq!(a + b, 20, "minimal failing sum sits on the boundary");
    }

    #[test]
    fn vectors_shrink_length_and_elements() {
        let gen = gens::vec_of(gens::u64_in(0..=3), 0..=40);
        let failure = check(&Config::default(), &gen, |v| {
            prop_assert!(v.iter().sum::<u64>() < 5);
            Ok(())
        })
        .unwrap_err();
        let sum: u64 = failure.minimal.iter().sum();
        assert!(
            failure.minimal.len() <= 2 && (5..=6).contains(&sum),
            "minimal = {:?}",
            failure.minimal
        );
    }

    #[test]
    fn panicking_properties_are_caught_and_shrunk() {
        let gen = gens::u64_in(0..=100);
        let failure = check(&Config::default(), &gen, |&x| {
            assert!(x < 3, "boom at {x}");
            Ok(())
        })
        .unwrap_err();
        assert_eq!(failure.minimal, 3);
        assert!(failure.message.contains("boom at 3"), "{}", failure.message);
    }

    #[test]
    fn same_seed_reproduces_the_same_failure() {
        let gen = gens::u64_in(0..=u64::MAX);
        let run = || {
            check(&Config::default(), &gen, |&x| {
                prop_assert!(x % 17 != 3);
                Ok(())
            })
            .unwrap_err()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.original, b.original);
        assert_eq!(a.minimal, b.minimal);
        assert_eq!(a.case, b.case);
    }

    #[test]
    fn shrink_budget_is_honored() {
        let config = Config {
            max_shrink_steps: 1,
            ..Config::default()
        };
        let gen = gens::u64_in(0..=u64::MAX);
        let failure = check(&config, &gen, |_| Err("always".into())).unwrap_err();
        assert!(failure.candidates_tried <= 1);
    }

    property! {
        /// The macro form itself: drawn values stay in their ranges.
        fn macro_form_draws_in_range((a, v) in (
            gens::usize_in(1..=8),
            gens::vec_of(gens::u64_in(2..=4), 0..=5),
        )) {
            prop_assert!((1..=8).contains(&a));
            prop_assert!(v.len() <= 5);
            prop_assert!(v.iter().all(|&x| (2..=4).contains(&x)));
            prop_assert_eq!(a, a);
        }
    }
}
