//! Built-in generators: integer ranges, tuples, vectors.
//!
//! Numeric generators shrink toward the **low end of their range** (so
//! domains whose natural minimum is 1 should be drawn from `1..=hi`), tuple
//! generators shrink one component at a time, and vector generators shrink
//! the length first — halving before single removals — and then the
//! elements.

use crate::Gen;
use rand::prelude::*;
use std::ops::RangeInclusive;

/// Uniform integer range generator; see [`u64_in`] / [`usize_in`].
#[derive(Debug, Clone)]
pub struct IntRange<T> {
    lo: T,
    hi: T,
}

macro_rules! int_range_gen {
    ($t:ty, $ctor:ident) => {
        /// Uniform values of the inclusive range, shrinking toward its low
        /// end.
        pub fn $ctor(range: RangeInclusive<$t>) -> IntRange<$t> {
            assert!(
                range.start() <= range.end(),
                concat!(stringify!($ctor), ": empty range")
            );
            IntRange {
                lo: *range.start(),
                hi: *range.end(),
            }
        }

        impl Gen for IntRange<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.lo..=self.hi)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v <= self.lo {
                    return Vec::new();
                }
                // Jump to the minimum first, then halve the distance, then
                // creep: the usual "aggressive first" ladder.
                let mut out = vec![self.lo];
                let half = self.lo + (v - self.lo) / 2;
                if half > self.lo && half < v {
                    out.push(half);
                }
                if v - 1 > half {
                    out.push(v - 1);
                }
                out
            }
        }
    };
}

int_range_gen!(u64, u64_in);
int_range_gen!(usize, usize_in);

macro_rules! tuple_gen {
    ($(($($g:ident . $idx:tt),+))+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_gen! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Vector generator; see [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Vectors whose length is drawn from `len` and whose elements come from
/// `elem`. Shrinking first halves the vector (keeping either half), then
/// removes single elements, then shrinks individual elements in place — the
/// "halve task counts, then shrink values" order that minimizes scheduling
/// counterexamples fastest.
pub fn vec_of<G: Gen>(elem: G, len: RangeInclusive<usize>) -> VecOf<G> {
    assert!(len.start() <= len.end(), "vec_of: empty length range");
    VecOf {
        elem,
        min_len: *len.start(),
        max_len: *len.end(),
    }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = Vec::new();
        let len = value.len();
        if len > self.min_len {
            // Halves (respecting the minimum length), most aggressive first.
            let keep = (len / 2).max(self.min_len);
            if keep < len {
                out.push(value[..keep].to_vec());
                out.push(value[len - keep..].to_vec());
            }
            // Single removals; capped so shrinking a huge vector does not
            // enumerate thousands of candidates per round.
            for i in 0..len.min(16) {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Element-wise shrinks, first candidate per position.
        for i in 0..len.min(32) {
            for candidate in self.elem.shrink(&value[i]).into_iter().take(2) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn int_shrink_candidates_are_strictly_smaller() {
        let gen = u64_in(3..=100);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = gen.generate(&mut rng);
            assert!((3..=100).contains(&v));
            for c in gen.shrink(&v) {
                assert!(c < v && c >= 3, "shrink {v} -> {c}");
            }
        }
        assert!(gen.shrink(&3).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_len_and_shortens() {
        let gen = vec_of(u64_in(0..=5), 2..=10);
        let v = vec![5, 4, 3, 2, 1];
        for c in gen.shrink(&v) {
            assert!(c.len() >= 2);
            assert!(c.len() < v.len() || c.iter().sum::<u64>() < v.iter().sum::<u64>());
        }
        // At the minimum length only element shrinks remain.
        assert!(gen.shrink(&vec![0, 0]).is_empty());
    }

    #[test]
    fn tuples_generate_within_ranges() {
        let gen = (u64_in(0..=4), usize_in(1..=2), u64_in(9..=9));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let (a, b, c) = gen.generate(&mut rng);
            assert!(a <= 4 && (1..=2).contains(&b) && c == 9);
        }
        assert!(gen.shrink(&(0, 1, 9)).is_empty());
    }
}
