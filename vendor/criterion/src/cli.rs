//! Benchmark command-line interface.
//!
//! `cargo bench -- <args>` hands everything after `--` to each bench
//! binary. [`init_from_env`] parses those arguments once per process (the
//! entry-point macros call it); unknown flags are a **usage error** — the
//! process prints the usage text and exits nonzero, so a typo like
//! `--smok` or `--save-baselin` fails loudly instead of silently running a
//! default measurement.

use std::sync::OnceLock;

/// Everything the command line (plus the `CRITERION_INJECT_SLOWDOWN` test
/// hook) can configure for one benchmark process.
#[derive(Debug, Clone, PartialEq)]
pub struct CliConfig {
    /// Substring filter: only benchmark ids containing it run.
    pub filter: Option<String>,
    /// Record every measurement as a baseline with this name.
    pub save_baseline: Option<String>,
    /// Compare every measurement against the named baseline and fail the
    /// process on regressions.
    pub compare_baseline: Option<String>,
    /// Smoke profile: clamp warmup to one pass and samples to
    /// [`SMOKE_MAX_SAMPLES`](crate::SMOKE_MAX_SAMPLES); benchmark data
    /// generators also consult this (via [`smoke_mode`](crate::smoke_mode))
    /// to shrink their workloads.
    pub smoke: bool,
    /// Override of every benchmark's configured sample count.
    pub sample_size: Option<usize>,
    /// Override of every benchmark's configured warmup pass count.
    pub warmup: Option<usize>,
    /// Relative mean change below which a comparison is "no change"
    /// (fraction, e.g. `0.05` = 5%). The effective threshold is widened by
    /// the measured confidence intervals — see
    /// [`compare`](crate::report::compare).
    pub noise_threshold: f64,
    /// Multiplier applied to every measured sample (`1.0` = off). Set via
    /// the `CRITERION_INJECT_SLOWDOWN` environment variable; exists so the
    /// regression gate can be exercised end-to-end without editing a
    /// kernel.
    pub inject_slowdown: f64,
    /// `--help` was requested.
    pub help: bool,
}

impl Default for CliConfig {
    fn default() -> Self {
        CliConfig {
            filter: None,
            save_baseline: None,
            compare_baseline: None,
            smoke: false,
            sample_size: None,
            warmup: None,
            noise_threshold: 0.05,
            inject_slowdown: 1.0,
            help: false,
        }
    }
}

/// Usage text printed on `--help` and on usage errors.
pub const USAGE: &str = "\
Usage: <bench> [OPTIONS] [FILTER]

Arguments:
  [FILTER]                   only run benchmarks whose id contains FILTER

Options:
      --save-baseline <NAME>    save measurements under target/bench-baselines/<NAME>/
      --baseline <NAME>         compare against baseline <NAME> (recorded, or committed
                                under benches/baselines/<NAME>/); exit nonzero on regression
      --noise-threshold <FRAC>  relative mean change treated as noise (default 0.05)
      --smoke                   smoke profile: 1 warmup pass, few samples, reduced workloads
      --sample-size <N>         override the per-benchmark sample count
      --warm-up <N>             override the per-benchmark warmup pass count
      --bench                   accepted and ignored (cargo passes it)
  -h, --help                    print this help

Environment:
  CRITERION_BASELINE_DIR      overrides the baseline directory
  CRITERION_INJECT_SLOWDOWN   multiplies every measured sample (self-test hook)
  MICROCHECK_SEED / _CASES    (property tests, unrelated to benches)";

/// Parses an argument list (without the program name). Pure function so
/// tests can exercise every path without touching the process environment.
pub fn parse_args<S: AsRef<str>>(args: &[S]) -> Result<CliConfig, String> {
    let mut config = CliConfig::default();
    let mut iter = args.iter().map(|s| s.as_ref());
    let take_value = |flag: &str, iter: &mut dyn Iterator<Item = &str>| {
        // A following flag means the value was forgotten; swallowing it
        // would silently disable that flag (e.g. `--save-baseline --smoke`
        // running the full workload with a baseline named `--smoke`).
        match iter.next() {
            Some(value) if !value.starts_with('-') => Ok(value.to_owned()),
            _ => Err(format!("flag `{flag}` expects a value")),
        }
    };
    while let Some(arg) = iter.next() {
        match arg {
            "--save-baseline" => config.save_baseline = Some(take_value(arg, &mut iter)?),
            "--baseline" => config.compare_baseline = Some(take_value(arg, &mut iter)?),
            "--noise-threshold" => {
                let raw = take_value(arg, &mut iter)?;
                let parsed: f64 = raw
                    .parse()
                    .map_err(|_| format!("invalid --noise-threshold `{raw}`"))?;
                if !parsed.is_finite() || parsed < 0.0 {
                    return Err(format!("invalid --noise-threshold `{raw}`"));
                }
                config.noise_threshold = parsed;
            }
            "--sample-size" => {
                let raw = take_value(arg, &mut iter)?;
                let parsed: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid --sample-size `{raw}`"))?;
                if parsed == 0 {
                    return Err("--sample-size must be at least 1".into());
                }
                config.sample_size = Some(parsed);
            }
            "--warm-up" => {
                let raw = take_value(arg, &mut iter)?;
                config.warmup = Some(
                    raw.parse()
                        .map_err(|_| format!("invalid --warm-up `{raw}`"))?,
                );
            }
            "--smoke" => config.smoke = true,
            // Cargo passes `--bench` to benchmark executables; accept it.
            "--bench" => {}
            "-h" | "--help" => config.help = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            positional => {
                if let Some(previous) = &config.filter {
                    return Err(format!(
                        "at most one FILTER is accepted (got `{previous}` and `{positional}`)"
                    ));
                }
                config.filter = Some(positional.to_owned());
            }
        }
    }
    Ok(config)
}

static CONFIG: OnceLock<CliConfig> = OnceLock::new();

/// Parses the process arguments (and the `CRITERION_INJECT_SLOWDOWN`
/// environment hook) into the global configuration. On a usage error the
/// process prints the error plus [`USAGE`] to stderr and exits with code 2;
/// `--help` prints [`USAGE`] and exits 0.
///
/// Called by [`criterion_main!`](crate::criterion_main) (and the bench
/// harness) before any group runs; calling it twice is a no-op.
pub fn init_from_env() {
    if CONFIG.get().is_some() {
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if config.help {
        println!("{USAGE}");
        std::process::exit(0);
    }
    if let Ok(raw) = std::env::var("CRITERION_INJECT_SLOWDOWN") {
        match raw.parse::<f64>() {
            Ok(factor) if factor.is_finite() && factor > 0.0 => {
                config.inject_slowdown = factor;
            }
            _ => {
                eprintln!("error: invalid CRITERION_INJECT_SLOWDOWN `{raw}`");
                std::process::exit(2);
            }
        }
    }
    let _ = CONFIG.set(config);
}

/// Installs an explicit configuration instead of parsing the process
/// arguments — for harnesses and tests. No-op if a configuration is
/// already installed.
pub fn init_with(config: CliConfig) {
    let _ = CONFIG.set(config);
}

/// The active configuration (defaults if [`init_from_env`] was never
/// called, e.g. under `cargo test`).
pub fn config() -> &'static CliConfig {
    CONFIG.get_or_init(CliConfig::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_empty() {
        let config = parse_args::<&str>(&[]).unwrap();
        assert_eq!(config, CliConfig::default());
    }

    #[test]
    fn all_flags_parse() {
        let config = parse_args(&[
            "--smoke",
            "--save-baseline",
            "nightly",
            "--baseline",
            "ci-smoke",
            "--noise-threshold",
            "0.5",
            "--sample-size",
            "7",
            "--warm-up",
            "2",
            "--bench",
            "scale/",
        ])
        .unwrap();
        assert!(config.smoke);
        assert_eq!(config.save_baseline.as_deref(), Some("nightly"));
        assert_eq!(config.compare_baseline.as_deref(), Some("ci-smoke"));
        assert_eq!(config.noise_threshold, 0.5);
        assert_eq!(config.sample_size, Some(7));
        assert_eq!(config.warmup, Some(2));
        assert_eq!(config.filter.as_deref(), Some("scale/"));
        assert!(!config.help);
    }

    #[test]
    fn unknown_flags_are_usage_errors() {
        for bad in [
            &["--smok"][..],
            &["--save-baselin", "x"],
            &["--sample-size"],
            &["--sample-size", "0"],
            &["--sample-size", "many"],
            &["--noise-threshold", "-1"],
            &["--noise-threshold", "NaN"],
            &["--save-baseline", "--smoke"],
            &["--baseline", "--bench"],
            &["a", "b"],
        ] {
            assert!(parse_args(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn help_is_flagged_not_errored() {
        assert!(parse_args(&["-h"]).unwrap().help);
        assert!(parse_args(&["--help"]).unwrap().help);
    }
}
