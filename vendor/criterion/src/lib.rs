//! Vendored, API-compatible subset of `criterion` with a statistics
//! engine.
//!
//! Supports the benchmark surface the workspace uses — `Criterion::default()
//! .sample_size(n)`, `bench_function`, `Bencher::iter`, [`black_box`], and
//! the `criterion_group!`/`criterion_main!` macros — plus the measurement
//! methodology a performance-reproduction needs before a speedup claim is
//! trustworthy:
//!
//! * per-sample collection with configurable warmup passes and sample
//!   count ([`Criterion::warm_up_passes`], [`Criterion::sample_size`], and
//!   the `--warm-up`/`--sample-size` CLI overrides);
//! * a bootstrap **95% confidence interval of the mean** and median/MAD
//!   **outlier classification** per benchmark ([`stats::Summary`]);
//! * named JSON **baselines**: `--save-baseline <name>` records under
//!   `target/bench-baselines/<name>/`, `--baseline <name>` compares the
//!   current run (falling back to the committed `benches/baselines/<name>/`
//!   set) and makes the process exit nonzero when a mean regresses beyond a
//!   noise-aware threshold ([`report::compare`]);
//! * a `--smoke` profile for CI, and loud usage errors for unknown flags
//!   ([`cli`]).

use std::time::{Duration, Instant};

pub mod cli;
pub mod report;
pub mod stats;

pub use cli::{init_from_env, init_with, CliConfig};
pub use report::{final_summary, take_reports, BenchReport, Comparison, Verdict};
pub use stats::Summary;

/// Sample-count cap applied by the `--smoke` profile.
pub const SMOKE_MAX_SAMPLES: usize = 10;

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// `true` when the process runs under the `--smoke` CLI profile. Benchmark
/// data generators consult this to shrink their workloads to CI scale.
pub fn smoke_mode() -> bool {
    cli::config().smoke
}

/// Benchmark driver holding measurement configuration.
pub struct Criterion {
    sample_size: usize,
    warmup_passes: usize,
    noise_threshold: Option<f64>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warmup_passes: 1,
            noise_threshold: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Sets how many untimed warmup passes precede the timed samples
    /// (default 1).
    pub fn warm_up_passes(mut self, n: usize) -> Self {
        self.warmup_passes = n;
        self
    }

    /// Declares this group's benchmarks as inherently noisier than the
    /// process-wide default: baseline comparisons use the **larger** of
    /// this fraction and the `--noise-threshold` CLI value. A group can
    /// only widen its own allowance — it cannot tighten the gate the
    /// operator asked for.
    ///
    /// # Panics
    ///
    /// Panics on NaN, infinite or negative fractions, mirroring the CLI
    /// flag's validation.
    pub fn noise_threshold(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "noise_threshold must be a finite non-negative fraction"
        );
        self.noise_threshold = Some(fraction);
        self
    }

    fn effective_noise_threshold(&self, cli: &CliConfig) -> f64 {
        match self.noise_threshold {
            Some(own) => own.max(cli.noise_threshold),
            None => cli.noise_threshold,
        }
    }

    fn effective_sample_size(&self, cli: &CliConfig) -> usize {
        if let Some(n) = cli.sample_size {
            return n;
        }
        if cli.smoke {
            self.sample_size.min(SMOKE_MAX_SAMPLES)
        } else {
            self.sample_size
        }
    }

    fn effective_warmup(&self, cli: &CliConfig) -> usize {
        if let Some(n) = cli.warmup {
            return n;
        }
        if cli.smoke {
            self.warmup_passes.min(1)
        } else {
            self.warmup_passes
        }
    }

    /// Runs one benchmark: warmup passes, per-sample timing, summary
    /// statistics, and — depending on the CLI mode — baseline recording or
    /// regression comparison. Prints a one-line summary either way.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cli = cli::config();
        if let Some(filter) = &cli.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.effective_warmup(cli) {
            f(&mut bencher);
        }
        bencher.samples.clear();
        for _ in 0..self.effective_sample_size(cli) {
            f(&mut bencher);
        }
        if bencher.samples.is_empty() {
            println!("{id:<44} no samples recorded");
            return self;
        }
        let samples_ns: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 * cli.inject_slowdown)
            .collect();
        self.report_samples(id, &samples_ns, self.effective_warmup(cli), cli);
        self
    }

    /// Records an externally measured sample set (nanoseconds per event)
    /// under `id`, running it through the same summary/baseline/report
    /// pipeline as a timed benchmark. Load generators use this to gate
    /// quantities a [`Bencher::iter`] loop cannot express — per-request
    /// latency percentiles of a concurrent run, or inverted-throughput
    /// series — while keeping `--save-baseline` / `--baseline` regression
    /// gating and the JSON export identical to timed benchmarks. Empty
    /// sample sets are skipped with a notice, like a filtered benchmark.
    pub fn bench_recorded(&mut self, id: &str, samples_ns: &[f64]) -> &mut Self {
        let cli = cli::config();
        if let Some(filter) = &cli.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if samples_ns.is_empty() {
            println!("{id:<44} no samples recorded");
            return self;
        }
        let adjusted: Vec<f64> = samples_ns.iter().map(|s| s * cli.inject_slowdown).collect();
        self.report_samples(id, &adjusted, 0, cli);
        self
    }

    /// Shared back half of [`Criterion::bench_function`] and
    /// [`Criterion::bench_recorded`]: summary statistics, console line,
    /// baseline save/compare, report registration.
    fn report_samples(&self, id: &str, samples_ns: &[f64], warmup_passes: usize, cli: &CliConfig) {
        let summary = Summary::compute(samples_ns, warmup_passes, stats::id_seed(id));
        println!(
            "{id:<44} mean {} [{} {}] (95% CI, {} samples), median {} ±{}{}",
            format_ns(summary.mean_ns),
            format_ns(summary.ci_lower_ns),
            format_ns(summary.ci_upper_ns),
            summary.sample_size,
            format_ns(summary.median_ns),
            format_ns(summary.mad_ns),
            match (summary.mild_outliers, summary.severe_outliers) {
                (0, 0) => String::new(),
                (m, s) => format!(", outliers: {m} mild / {s} severe"),
            }
        );

        if let Some(name) = &cli.save_baseline {
            match report::save_baseline(name, id, &summary) {
                Ok(path) => println!("{:>44} saved baseline to {}", "", path.display()),
                Err(e) => eprintln!("warning: could not save baseline '{name}' for {id}: {e}"),
            }
        }
        let comparison =
            cli.compare_baseline
                .as_ref()
                .and_then(|name| match report::load_baseline(name, id) {
                    Some(baseline) => {
                        let comparison = report::compare(
                            name,
                            &summary,
                            &baseline,
                            self.effective_noise_threshold(cli),
                        );
                        println!(
                            "{:>44} vs '{name}': {:+.1}% (threshold ±{:.1}%) {}",
                            "",
                            (comparison.ratio - 1.0) * 100.0,
                            comparison.effective_threshold * 100.0,
                            match comparison.verdict {
                                Verdict::Regression => "REGRESSION",
                                Verdict::Improvement => "improvement",
                                Verdict::Unchanged => "no change",
                            }
                        );
                        Some(comparison)
                    }
                    None => {
                        eprintln!("warning: no baseline '{name}' for {id} (new benchmark?)");
                        report::record_missing_baseline();
                        None
                    }
                });
        report::record_report(BenchReport {
            id: id.to_owned(),
            summary,
            comparison,
        });
    }
}

/// Per-sample timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording the duration of one call as one sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

/// Formats a nanosecond quantity with a magnitude-appropriate unit.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` function: parses the CLI, runs the listed groups,
/// and exits nonzero when [`final_summary`] reports a regression.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_env();
            $($group();)+
            if !$crate::final_summary() {
                ::std::process::exit(1);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_chains() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke/a", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1))
        })
        .bench_function("smoke/b", |b| b.iter(|| black_box(2 * 2)));
        // One warm-up call plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn warmup_passes_are_configurable() {
        let mut c = Criterion::default().sample_size(2).warm_up_passes(3);
        let mut calls = 0u32;
        c.bench_function("smoke/warmup", |b| {
            calls += 1;
            b.iter(|| black_box(0))
        });
        assert_eq!(calls, 5);
    }

    #[test]
    fn reports_carry_the_summary_statistics() {
        let mut c = Criterion::default().sample_size(20);
        c.bench_function("registry/probe", |b| b.iter(|| black_box(17u64.pow(2))));
        let reports = take_reports();
        let probe = reports
            .iter()
            .find(|r| r.id == "registry/probe")
            .expect("report recorded");
        assert_eq!(probe.summary.sample_size, 20);
        assert!(probe.summary.ci_lower_ns <= probe.summary.mean_ns);
        assert!(probe.summary.mean_ns <= probe.summary.ci_upper_ns);
        assert!(probe.comparison.is_none());
    }

    criterion_group! {
        name = long_form_group;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }
    criterion_group!(short_form_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn group_macros_produce_callables() {
        long_form_group();
        short_form_group();
    }

    #[test]
    fn per_group_noise_threshold_only_widens_the_cli_allowance() {
        let cli_tight = CliConfig::default(); // 5%
        let c = Criterion::default().noise_threshold(0.5);
        assert_eq!(c.effective_noise_threshold(&cli_tight), 0.5);
        // An operator asking for a wider gate than the group's own wins.
        let cli_wide = CliConfig {
            noise_threshold: 4.0,
            ..CliConfig::default()
        };
        assert_eq!(c.effective_noise_threshold(&cli_wide), 4.0);
        // Without a group override the CLI value passes through.
        let plain = Criterion::default();
        assert_eq!(plain.effective_noise_threshold(&cli_tight), 0.05);
    }

    #[test]
    #[should_panic(expected = "noise_threshold")]
    fn rejecting_malformed_group_noise_thresholds() {
        let _ = Criterion::default().noise_threshold(f64::NAN);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_ns(5.0), "5 ns");
        assert_eq!(format_ns(5_000.0), "5.00 µs");
        assert_eq!(format_ns(5_000_000.0), "5.00 ms");
        assert_eq!(format_ns(5_000_000_000.0), "5.00 s");
    }
}
