//! Vendored, API-compatible subset of `criterion`.
//!
//! Supports the benchmark surface the workspace uses: `Criterion::default()
//! .sample_size(n)`, `bench_function`, `Bencher::iter`, [`black_box`], and
//! the `criterion_group!`/`criterion_main!` macros (both the simple and the
//! `name/config/targets` forms). Measurement is a plain wall-clock loop —
//! one warm-up pass, then `sample_size` samples — reporting min/mean/max
//! per iteration. No statistics engine, plots or baselines; swap the real
//! crate back in for those.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver holding measurement configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints a one-line wall-clock summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        // Warm-up pass: populate caches and let lazy statics initialize.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let per_iter: Vec<Duration> = bencher.samples;
        if per_iter.is_empty() {
            println!("{id:<40} no samples recorded");
            return self;
        }
        let min = per_iter.iter().min().unwrap();
        let max = per_iter.iter().max().unwrap();
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        println!(
            "{id:<40} time: [{} {} {}]",
            format_duration(*min),
            format_duration(mean),
            format_duration(*max)
        );
        self
    }
}

/// Per-sample timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording the duration of one call as one sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_chains() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke/a", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1))
        })
        .bench_function("smoke/b", |b| b.iter(|| black_box(2 * 2)));
        // One warm-up call plus three samples.
        assert_eq!(calls, 4);
    }

    criterion_group! {
        name = long_form_group;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }
    criterion_group!(short_form_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn group_macros_produce_callables() {
        long_form_group();
        short_form_group();
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(format_duration(Duration::from_secs(5)), "5.00 s");
    }
}
