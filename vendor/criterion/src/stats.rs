//! Sample statistics: mean with a bootstrap confidence interval, median,
//! MAD, and median/MAD outlier classification.
//!
//! Everything is deterministic: the bootstrap resampler is seeded from the
//! benchmark id, so rerunning a benchmark on the same samples reports the
//! same interval.

/// Number of bootstrap resamples behind the confidence interval.
const BOOTSTRAP_RESAMPLES: usize = 1_000;

/// Consistency constant making the MAD comparable to a standard deviation
/// under normality.
const MAD_SCALE: f64 = 1.4826;

/// Summary statistics of one benchmark's per-iteration samples (all times
/// in nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Lower end of the 95% bootstrap confidence interval of the mean.
    pub ci_lower_ns: f64,
    /// Upper end of the 95% bootstrap confidence interval of the mean.
    pub ci_upper_ns: f64,
    /// Sample median.
    pub median_ns: f64,
    /// Median absolute deviation (unscaled).
    pub mad_ns: f64,
    /// Smallest sample.
    pub min_ns: f64,
    /// Largest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub sample_size: usize,
    /// Number of untimed warmup passes that preceded them.
    pub warmup_passes: usize,
    /// Samples deviating from the median by more than 3 scaled MADs.
    pub mild_outliers: usize,
    /// Samples deviating from the median by more than 5 scaled MADs
    /// (not double-counted as mild).
    pub severe_outliers: usize,
}

impl Summary {
    /// Computes the summary of `samples` (nanoseconds per iteration).
    /// `seed` makes the bootstrap deterministic — callers derive it from
    /// the benchmark id. Panics if `samples` is empty.
    pub fn compute(samples: &[f64], warmup_passes: usize, seed: u64) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = median_of_sorted(&sorted);
        let mut deviations: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
        deviations.sort_by(|a, b| a.partial_cmp(b).expect("deviations are finite"));
        let mad = median_of_sorted(&deviations);

        // Median/MAD outlier classification. A zero MAD (over half the
        // samples identical) would flag every nonzero deviation, so the
        // classification is skipped in that case.
        let scaled_mad = MAD_SCALE * mad;
        let (mut mild, mut severe) = (0usize, 0usize);
        if scaled_mad > 0.0 {
            for &x in samples {
                let deviation = (x - median).abs();
                if deviation > 5.0 * scaled_mad {
                    severe += 1;
                } else if deviation > 3.0 * scaled_mad {
                    mild += 1;
                }
            }
        }

        let (ci_lower, ci_upper) = bootstrap_mean_ci(samples, seed);
        Summary {
            mean_ns: mean,
            ci_lower_ns: ci_lower,
            ci_upper_ns: ci_upper,
            median_ns: median,
            mad_ns: mad,
            min_ns: min,
            max_ns: max,
            sample_size: n,
            warmup_passes,
            mild_outliers: mild,
            severe_outliers: severe,
        }
    }

    /// Relative half-width of the confidence interval (`0.0` for a
    /// degenerate mean) — the measurement's own noise estimate, used to
    /// widen comparison thresholds.
    pub fn relative_ci_half_width(&self) -> f64 {
        if self.mean_ns > 0.0 {
            ((self.ci_upper_ns - self.ci_lower_ns) / (2.0 * self.mean_ns)).max(0.0)
        } else {
            0.0
        }
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Percentile-method bootstrap of the sample mean: resample with
/// replacement [`BOOTSTRAP_RESAMPLES`] times and take the 2.5th/97.5th
/// percentiles of the resampled means.
fn bootstrap_mean_ci(samples: &[f64], seed: u64) -> (f64, f64) {
    let n = samples.len();
    if n == 1 {
        return (samples[0], samples[0]);
    }
    let mut rng = SplitMix64::new(seed);
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    for _ in 0..BOOTSTRAP_RESAMPLES {
        let mut total = 0.0;
        for _ in 0..n {
            total += samples[(rng.next() % n as u64) as usize];
        }
        means.push(total / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("means are finite"));
    let lower = means[(BOOTSTRAP_RESAMPLES as f64 * 0.025) as usize];
    let upper = means[((BOOTSTRAP_RESAMPLES as f64 * 0.975) as usize).min(BOOTSTRAP_RESAMPLES - 1)];
    (lower, upper)
}

/// Minimal deterministic RNG for the bootstrap (the vendored `rand` crate
/// is not a dependency here to keep the bench harness self-contained).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Deterministic 64-bit hash of a benchmark id (FNV-1a), the bootstrap
/// seed.
pub fn id_seed(id: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in id.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples_have_degenerate_statistics() {
        let summary = Summary::compute(&[5.0; 40], 3, 1);
        assert_eq!(summary.mean_ns, 5.0);
        assert_eq!(summary.median_ns, 5.0);
        assert_eq!(summary.mad_ns, 0.0);
        assert_eq!((summary.ci_lower_ns, summary.ci_upper_ns), (5.0, 5.0));
        assert_eq!(summary.mild_outliers + summary.severe_outliers, 0);
        assert_eq!(summary.sample_size, 40);
        assert_eq!(summary.warmup_passes, 3);
        assert_eq!(summary.relative_ci_half_width(), 0.0);
    }

    #[test]
    fn ci_brackets_the_mean_and_stays_inside_the_range() {
        // 100 samples uniformly 90..110: the CI must bracket the mean and
        // stay well inside the sample range.
        let samples: Vec<f64> = (0..100).map(|i| 90.0 + (i % 21) as f64).collect();
        let summary = Summary::compute(&samples, 0, 42);
        assert!(summary.ci_lower_ns <= summary.mean_ns);
        assert!(summary.mean_ns <= summary.ci_upper_ns);
        assert!(summary.ci_lower_ns > summary.min_ns);
        assert!(summary.ci_upper_ns < summary.max_ns);
        assert!(summary.relative_ci_half_width() < 0.05);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let samples: Vec<f64> = (0..50).map(|i| (i * 7 % 13) as f64 + 100.0).collect();
        let a = Summary::compute(&samples, 0, 7);
        let b = Summary::compute(&samples, 0, 7);
        let c = Summary::compute(&samples, 0, 8);
        assert_eq!(a, b);
        assert!(
            (a.ci_lower_ns, a.ci_upper_ns) != (c.ci_lower_ns, c.ci_upper_ns),
            "different seeds should resample differently"
        );
    }

    #[test]
    fn outliers_are_classified_by_distance_from_the_median() {
        // 38 well-behaved samples (median 101, MAD 1), one mild excursion
        // (deviation 5, between 3 and 5 scaled MADs) and one severe spike.
        let mut samples: Vec<f64> = (0..38).map(|i| 100.0 + (i % 3) as f64).collect();
        samples.push(106.0);
        samples.push(200.0);
        let summary = Summary::compute(&samples, 0, 3);
        assert_eq!(summary.median_ns, 101.0);
        assert_eq!(summary.mad_ns, 1.0);
        assert_eq!(summary.severe_outliers, 1, "{summary:?}");
        assert_eq!(summary.mild_outliers, 1, "{summary:?}");
    }

    #[test]
    fn even_sample_counts_average_the_middle_pair() {
        let summary = Summary::compute(&[1.0, 2.0, 3.0, 4.0], 0, 1);
        assert_eq!(summary.median_ns, 2.5);
        assert_eq!(summary.min_ns, 1.0);
        assert_eq!(summary.max_ns, 4.0);
    }

    #[test]
    fn single_sample_is_its_own_interval() {
        let summary = Summary::compute(&[7.5], 1, 9);
        assert_eq!((summary.ci_lower_ns, summary.ci_upper_ns), (7.5, 7.5));
        assert_eq!(summary.median_ns, 7.5);
    }

    #[test]
    fn id_seed_distinguishes_ids() {
        assert_ne!(id_seed("a/b"), id_seed("a/c"));
        assert_eq!(id_seed("scale/x"), id_seed("scale/x"));
    }
}
