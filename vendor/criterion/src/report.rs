//! Baseline persistence, regression comparison, and the process-wide run
//! registry.
//!
//! Baselines are one JSON document per benchmark id, grouped by baseline
//! name. Recorded baselines live under `<target>/bench-baselines/<name>/`;
//! when a name is not found there, the **committed** set under
//! `benches/baselines/<name>/` (relative to the bench working directory,
//! i.e. the crate root) is consulted — that is how CI compares against
//! checked-in reference numbers without a prior recording step.

use crate::cli;
use crate::stats::Summary;
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

impl Serialize for Summary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("mean_ns".into(), Value::Float(self.mean_ns)),
            ("ci_lower_ns".into(), Value::Float(self.ci_lower_ns)),
            ("ci_upper_ns".into(), Value::Float(self.ci_upper_ns)),
            ("median_ns".into(), Value::Float(self.median_ns)),
            ("mad_ns".into(), Value::Float(self.mad_ns)),
            ("min_ns".into(), Value::Float(self.min_ns)),
            ("max_ns".into(), Value::Float(self.max_ns)),
            ("sample_size".into(), self.sample_size.to_value()),
            ("warmup_passes".into(), self.warmup_passes.to_value()),
            ("mild_outliers".into(), self.mild_outliers.to_value()),
            ("severe_outliers".into(), self.severe_outliers.to_value()),
        ])
    }
}

impl Deserialize for Summary {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(Summary {
            mean_ns: f64::from_value(value.field("mean_ns")?)?,
            ci_lower_ns: f64::from_value(value.field("ci_lower_ns")?)?,
            ci_upper_ns: f64::from_value(value.field("ci_upper_ns")?)?,
            median_ns: f64::from_value(value.field("median_ns")?)?,
            mad_ns: f64::from_value(value.field("mad_ns")?)?,
            min_ns: f64::from_value(value.field("min_ns")?)?,
            max_ns: f64::from_value(value.field("max_ns")?)?,
            sample_size: usize::from_value(value.field("sample_size")?)?,
            warmup_passes: usize::from_value(value.field("warmup_passes")?)?,
            mild_outliers: usize::from_value(value.field("mild_outliers")?)?,
            severe_outliers: usize::from_value(value.field("severe_outliers")?)?,
        })
    }
}

/// One persisted baseline measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Format version, bumped on breaking changes.
    pub schema: u32,
    /// The benchmark id the measurement belongs to.
    pub id: String,
    /// The measurement itself.
    pub summary: Summary,
}

/// Current baseline schema version.
pub const BASELINE_SCHEMA: u32 = 1;

impl Serialize for Baseline {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), self.schema.to_value()),
            ("id".into(), self.id.to_value()),
            ("summary".into(), self.summary.to_value()),
        ])
    }
}

impl Deserialize for Baseline {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(Baseline {
            schema: u32::from_value(value.field("schema")?)?,
            id: String::from_value(value.field("id")?)?,
            summary: Summary::from_value(value.field("summary")?)?,
        })
    }
}

/// Verdict of one current-vs-baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Mean grew beyond the effective threshold.
    Regression,
    /// Mean shrank beyond the effective threshold.
    Improvement,
    /// Within noise.
    Unchanged,
}

impl Verdict {
    /// Stable string form used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Regression => "regression",
            Verdict::Improvement => "improvement",
            Verdict::Unchanged => "unchanged",
        }
    }
}

/// Outcome of comparing a fresh measurement against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Name of the baseline compared against.
    pub baseline: String,
    /// The baseline's mean, nanoseconds.
    pub baseline_mean_ns: f64,
    /// `current mean / baseline mean`.
    pub ratio: f64,
    /// The noise-aware threshold actually applied (fraction).
    pub effective_threshold: f64,
    /// The verdict.
    pub verdict: Verdict,
}

impl Serialize for Comparison {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("baseline".into(), self.baseline.to_value()),
            (
                "baseline_mean_ns".into(),
                Value::Float(self.baseline_mean_ns),
            ),
            ("ratio".into(), Value::Float(self.ratio)),
            (
                "effective_threshold".into(),
                Value::Float(self.effective_threshold),
            ),
            ("verdict".into(), self.verdict.as_str().to_value()),
        ])
    }
}

/// Compares a fresh `summary` against `baseline` under the configured
/// `noise_threshold`.
///
/// The threshold is *noise-aware*: the configured allowance is widened by
/// **both** measurements' relative 95% CI half-widths (the two runs carry
/// independent measurement uncertainty on top of any real drift), so noisy
/// benchmarks need a proportionally larger mean shift before they count as
/// regressed. A change is a regression when `ratio > 1 + threshold` and an
/// improvement when `ratio < 1 / (1 + threshold)`.
pub fn compare(
    name: &str,
    summary: &Summary,
    baseline: &Baseline,
    noise_threshold: f64,
) -> Comparison {
    let base = &baseline.summary;
    let effective_threshold =
        noise_threshold + summary.relative_ci_half_width() + base.relative_ci_half_width();
    let ratio = if base.mean_ns > 0.0 {
        summary.mean_ns / base.mean_ns
    } else {
        1.0
    };
    let verdict = if ratio > 1.0 + effective_threshold {
        Verdict::Regression
    } else if ratio < 1.0 / (1.0 + effective_threshold) {
        Verdict::Improvement
    } else {
        Verdict::Unchanged
    };
    Comparison {
        baseline: name.to_owned(),
        baseline_mean_ns: base.mean_ns,
        ratio,
        effective_threshold,
        verdict,
    }
}

/// One benchmark's record in the run registry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark id.
    pub id: String,
    /// Measured statistics.
    pub summary: Summary,
    /// Comparison outcome, when running in `--baseline` mode and the
    /// baseline had this benchmark.
    pub comparison: Option<Comparison>,
}

impl Serialize for BenchReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".into(), self.id.to_value()),
            ("summary".into(), self.summary.to_value()),
            ("comparison".into(), self.comparison.to_value()),
        ])
    }
}

struct RunState {
    reports: Vec<BenchReport>,
    regressions: Vec<String>,
    comparisons_done: usize,
    baselines_missing: usize,
}

static STATE: Mutex<RunState> = Mutex::new(RunState {
    reports: Vec::new(),
    regressions: Vec::new(),
    comparisons_done: 0,
    baselines_missing: 0,
});

pub(crate) fn record_report(report: BenchReport) {
    let mut state = STATE.lock().unwrap();
    if let Some(comparison) = &report.comparison {
        state.comparisons_done += 1;
        if comparison.verdict == Verdict::Regression {
            state.regressions.push(format!(
                "{}: {:.1}% over baseline '{}' (threshold {:.1}%)",
                report.id,
                (comparison.ratio - 1.0) * 100.0,
                comparison.baseline,
                comparison.effective_threshold * 100.0
            ));
        }
    }
    state.reports.push(report);
}

pub(crate) fn record_missing_baseline() {
    STATE.lock().unwrap().baselines_missing += 1;
}

/// Drains and returns every report recorded so far in this process —
/// the bench harness exports these as `BENCH_<name>.json`.
pub fn take_reports() -> Vec<BenchReport> {
    std::mem::take(&mut STATE.lock().unwrap().reports)
}

/// Prints the end-of-run verdict and returns `false` when the process
/// should exit nonzero: some benchmark regressed, or `--baseline` was
/// requested but *no* benchmark had a baseline to compare against (a
/// typo'd baseline name must not pass silently).
pub fn final_summary() -> bool {
    let state = STATE.lock().unwrap();
    let compare_mode = cli::config().compare_baseline.clone();
    if !state.regressions.is_empty() {
        eprintln!("\nperformance regressions detected:");
        for line in &state.regressions {
            eprintln!("  {line}");
        }
        return false;
    }
    if let Some(name) = compare_mode {
        // Zero comparisons in compare mode can never be a pass: either the
        // baseline name is wrong for every benchmark, or a FILTER excluded
        // them all — both would otherwise let a typo'd gate exit 0.
        if state.comparisons_done == 0 {
            if state.baselines_missing > 0 {
                eprintln!(
                    "\nerror: baseline '{name}' matched none of the {} benchmarks \
                     (looked in {} and benches/baselines/{name}/)",
                    state.baselines_missing,
                    baselines_root().join(&name).display(),
                );
            } else {
                eprintln!(
                    "\nerror: --baseline '{name}' was requested but no benchmark ran \
                     a comparison (did the FILTER exclude everything?)"
                );
            }
            return false;
        }
    }
    true
}

/// The directory machine-readable run exports go to:
/// `<target>/bench-reports/`.
pub fn reports_root() -> PathBuf {
    target_dir().join("bench-reports")
}

/// The directory freshly recorded baselines go to:
/// `$CRITERION_BASELINE_DIR`, or `<target>/bench-baselines/`.
pub fn baselines_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CRITERION_BASELINE_DIR") {
        let path = PathBuf::from(dir);
        // Bench binaries run with the bench crate root — not the user's
        // shell — as working directory, so a relative override would land
        // somewhere surprising. Absolutize so the printed save/load paths
        // are honest about where files actually go.
        return if path.is_absolute() {
            path
        } else {
            std::env::current_dir()
                .map(|cwd| cwd.join(&path))
                .unwrap_or(path)
        };
    }
    target_dir().join("bench-baselines")
}

/// Locates the Cargo target directory: `$CARGO_TARGET_DIR`, else the
/// nearest ancestor of the running executable named `target` (bench
/// binaries live in `target/<profile>/deps/`), else `./target`.
fn target_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                return ancestor.to_path_buf();
            }
        }
    }
    PathBuf::from("target")
}

/// File name a benchmark id is stored under (path separators and other
/// non-portable characters become `_`; the exact id is kept inside the
/// document and checked on load).
fn baseline_file_name(id: &str) -> String {
    let sanitized: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{sanitized}.json")
}

/// Writes `summary` as baseline `name` for benchmark `id` under `root`
/// (creating directories), returning the file path.
pub fn save_baseline_in(
    root: &Path,
    name: &str,
    id: &str,
    summary: &Summary,
) -> std::io::Result<PathBuf> {
    let dir = root.join(name);
    std::fs::create_dir_all(&dir)?;
    let baseline = Baseline {
        schema: BASELINE_SCHEMA,
        id: id.to_owned(),
        summary: summary.clone(),
    };
    let path = dir.join(baseline_file_name(id));
    let rendered = serde_json::to_string_pretty(&baseline)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(&path, rendered + "\n")?;
    Ok(path)
}

/// Saves under [`baselines_root`].
pub fn save_baseline(name: &str, id: &str, summary: &Summary) -> std::io::Result<PathBuf> {
    save_baseline_in(&baselines_root(), name, id, summary)
}

/// Loads baseline `name` for benchmark `id` from an explicit list of
/// roots, first hit wins. Unreadable/mismatching documents are skipped
/// with a warning rather than trusted.
pub fn load_baseline_from(roots: &[PathBuf], name: &str, id: &str) -> Option<Baseline> {
    for root in roots {
        let path = root.join(name).join(baseline_file_name(id));
        let Ok(raw) = std::fs::read_to_string(&path) else {
            continue;
        };
        match serde_json::from_str::<Baseline>(&raw) {
            Ok(baseline) if baseline.schema == BASELINE_SCHEMA && baseline.id == id => {
                return Some(baseline);
            }
            Ok(baseline) => {
                eprintln!(
                    "warning: ignoring baseline {} (schema {} / id {:?} mismatch)",
                    path.display(),
                    baseline.schema,
                    baseline.id
                );
            }
            Err(e) => {
                eprintln!("warning: unreadable baseline {}: {e}", path.display());
            }
        }
    }
    None
}

/// Loads baseline `name` for `id` from the recorded root, falling back to
/// the committed `benches/baselines/` set.
pub fn load_baseline(name: &str, id: &str) -> Option<Baseline> {
    load_baseline_from(
        &[baselines_root(), PathBuf::from("benches/baselines")],
        name,
        id,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64, half_width: f64) -> Summary {
        Summary {
            mean_ns: mean,
            ci_lower_ns: mean - half_width,
            ci_upper_ns: mean + half_width,
            median_ns: mean,
            mad_ns: half_width / 2.0,
            min_ns: mean - 2.0 * half_width,
            max_ns: mean + 2.0 * half_width,
            sample_size: 50,
            warmup_passes: 1,
            mild_outliers: 0,
            severe_outliers: 0,
        }
    }

    fn baseline(mean: f64, half_width: f64) -> Baseline {
        Baseline {
            schema: BASELINE_SCHEMA,
            id: "test/id".into(),
            summary: summary(mean, half_width),
        }
    }

    #[test]
    fn tight_measurements_use_the_configured_threshold() {
        let base = baseline(100.0, 0.5);
        // +3% under a 5% threshold: unchanged.
        let same = compare("b", &summary(103.0, 0.5), &base, 0.05);
        assert_eq!(same.verdict, Verdict::Unchanged);
        // +10% under a 5% threshold: regression.
        let worse = compare("b", &summary(110.0, 0.5), &base, 0.05);
        assert_eq!(worse.verdict, Verdict::Regression);
        assert!((worse.ratio - 1.1).abs() < 1e-9);
        // 2x faster: improvement.
        let better = compare("b", &summary(50.0, 0.5), &base, 0.05);
        assert_eq!(better.verdict, Verdict::Improvement);
    }

    #[test]
    fn noisy_measurements_widen_the_threshold() {
        // The baseline's CI half-width is 20% of its mean, so a +10% shift
        // is *not* a regression even under a 5% configured threshold.
        let base = baseline(100.0, 20.0);
        let comparison = compare("b", &summary(110.0, 0.5), &base, 0.05);
        assert_eq!(comparison.verdict, Verdict::Unchanged);
        assert!(comparison.effective_threshold >= 0.2);
        // A 2x slowdown still regresses.
        let doubled = compare("b", &summary(200.0, 0.5), &base, 0.05);
        assert_eq!(doubled.verdict, Verdict::Regression);
    }

    #[test]
    fn baseline_round_trips_through_json_files() {
        let dir =
            std::env::temp_dir().join(format!("criterion-baseline-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = summary(1234.5, 10.0);
        let path = save_baseline_in(&dir, "unit", "scale/LCMR 1k", &s).unwrap();
        assert!(path.ends_with("unit/scale_LCMR_1k.json"));
        let loaded =
            load_baseline_from(std::slice::from_ref(&dir), "unit", "scale/LCMR 1k").unwrap();
        assert_eq!(loaded.summary, s);
        assert_eq!(loaded.id, "scale/LCMR 1k");
        // A different id (even one sanitizing to another file) is absent.
        assert!(load_baseline_from(std::slice::from_ref(&dir), "unit", "scale/other").is_none());
        // A wrong baseline name is absent.
        assert!(
            load_baseline_from(std::slice::from_ref(&dir), "nightly", "scale/LCMR 1k").is_none()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatching_ids_are_not_trusted() {
        let dir = std::env::temp_dir().join(format!(
            "criterion-baseline-mismatch-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // "a b" and "a_b" sanitize to the same file; the id check must keep
        // them apart instead of silently comparing against the wrong one.
        save_baseline_in(&dir, "unit", "a b", &summary(1.0, 0.1)).unwrap();
        assert!(load_baseline_from(std::slice::from_ref(&dir), "unit", "a_b").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
