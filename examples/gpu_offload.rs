//! CPU→GPU offload scenario (the paper's "future work" extension): the same
//! transfer-ordering problem appears when independent kernels are offloaded
//! to an accelerator through a single copy engine and a limited device
//! memory. This example reuses the CCSD workload generator with the PCIe
//! copy-engine transfer model and compares the heuristic categories at a
//! tight device-memory capacity.
//!
//! Run with `cargo run --release --example gpu_offload`.

use transfer_sched::chem::suite::{generate_partial_suite, SuiteConfig};
use transfer_sched::chem::Kernel;
use transfer_sched::ga::TransferModel;
use transfer_sched::heuristics::{best_in_category, HeuristicCategory};
use transfer_sched::prelude::*;

fn main() {
    // Device-offload flavour of the CCSD workload: transfers go through one
    // PCIe 3.0 x16 copy engine instead of the InfiniBand fabric.
    let mut config = SuiteConfig::small();
    config.transfer = TransferModel::pcie_gen3();
    let trace = generate_partial_suite(Kernel::Ccsd, &config, 1)
        .into_iter()
        .next()
        .expect("one trace");

    println!(
        "CCSD offload trace: {} kernels, largest kernel input (device mc) = {}",
        trace.len(),
        trace.min_capacity()
    );

    // Sweep the device memory from "just fits the largest kernel" to twice
    // that, as a GPU with more or less head-room.
    println!(
        "\n{:<10} {:>8} {:>10} {:>10} {:>14}",
        "device mem", "OS", "static", "dynamic", "static+dynamic"
    );
    for factor in [1.0, 1.25, 1.5, 2.0] {
        let instance = trace.to_instance_scaled(factor).expect("feasible capacity");
        let omim = johnson_makespan(&instance);
        let ratios: Vec<f64> = HeuristicCategory::ALL
            .iter()
            .map(|&cat| {
                best_in_category(&instance, cat)
                    .expect("heuristics run")
                    .ratio(omim)
            })
            .collect();
        println!(
            "{:<10} {:>8.3} {:>10.3} {:>10.3} {:>14.3}",
            format!("{factor:.2} x mc"),
            ratios[0],
            ratios[1],
            ratios[2],
            ratios[3]
        );
    }
    println!(
        "\nThe ordering problem and its heuristics are unchanged: only the \
         transfer-cost model (PCIe copy engine) and the memory capacity \
         (device memory) differ, which is exactly the adaptability argument \
         of the paper's Section 5."
    );
}
