//! Quickstart: build an instance, compute the lower bound, run the
//! heuristics and inspect the best schedule.
//!
//! Run with `cargo run --release --example quickstart`.

use transfer_sched::core::gantt;
use transfer_sched::core::metrics::ScheduleMetrics;
use transfer_sched::prelude::*;

fn main() {
    // Four independent tasks that need their input transferred to the local
    // memory (capacity 6) before computing — Table 3 of the paper.
    let instance = InstanceBuilder::new()
        .label("quickstart")
        .capacity(MemSize::from_bytes(6))
        .task_units("A", 3.0, 2.0, 3)
        .task_units("B", 1.0, 3.0, 1)
        .task_units("C", 4.0, 4.0, 4)
        .task_units("D", 2.0, 1.0, 2)
        .build()
        .expect("valid instance");

    // Lower bound: the optimal makespan if memory were unlimited (Johnson's
    // rule on the 2-machine flowshop relaxation).
    let omim = johnson_makespan(&instance);
    println!("OMIM lower bound: {omim}");

    // Run every heuristic of the paper and report the ratio to optimal.
    println!("\nheuristic  makespan  ratio");
    for heuristic in Heuristic::ALL {
        let schedule = run_heuristic(&instance, heuristic).expect("heuristic runs");
        let makespan = schedule.makespan(&instance);
        println!(
            "{:<9}  {:>8}  {:.3}",
            heuristic.name(),
            makespan.to_string(),
            makespan.ratio(omim)
        );
    }

    // Pick the best one and show its schedule.
    let (best, schedule) = best_heuristic(&instance).expect("heuristics run");
    let metrics = ScheduleMetrics::of(&instance, &schedule);
    println!(
        "\nbest heuristic: {best} (makespan {}, {:.0}% of the communication overlapped)",
        metrics.makespan,
        100.0 * metrics.overlap_fraction()
    );
    println!(
        "{}",
        gantt::render(
            &instance,
            &schedule,
            gantt::GanttOptions {
                width: 60,
                with_table: true
            }
        )
    );
}
