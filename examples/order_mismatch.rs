//! Proposition 1 demo (Table 2 / Fig. 3): with a memory constraint, the best
//! schedule may need *different* orders on the communication link and on the
//! processing unit — something no permutation heuristic can produce.
//!
//! Run with `cargo run --release --example order_mismatch`.

use transfer_sched::core::gantt;
use transfer_sched::core::instances::table2;
use transfer_sched::flowshop::exact::{optimal_free_order, optimal_same_order};
use transfer_sched::prelude::*;

fn main() {
    let instance = table2();
    println!(
        "Table 2 instance (capacity {}), OMIM = {}",
        instance.capacity(),
        johnson_makespan(&instance)
    );

    let same = optimal_same_order(&instance);
    println!(
        "\nBest schedule with the SAME order on both resources: makespan {}",
        same.makespan
    );
    println!(
        "{}",
        gantt::render(
            &instance,
            &same.schedule,
            gantt::GanttOptions {
                width: 66,
                with_table: true
            }
        )
    );

    let free = optimal_free_order(&instance);
    println!(
        "Best schedule when the orders MAY DIFFER: makespan {} (communication order {:?}, computation order {:?})",
        free.makespan,
        names(&instance, &free.schedule.comm_order()),
        names(&instance, &free.schedule.comp_order()),
    );
    println!(
        "{}",
        gantt::render(
            &instance,
            &free.schedule,
            gantt::GanttOptions {
                width: 66,
                with_table: true
            }
        )
    );

    assert!(free.makespan < same.makespan);
    println!(
        "=> allowing different orders saves {} time units on this instance (Proposition 1).",
        same.makespan - free.makespan
    );
}

fn names(instance: &Instance, order: &[TaskId]) -> Vec<String> {
    order
        .iter()
        .map(|id| instance.task(*id).name.clone())
        .collect()
}
