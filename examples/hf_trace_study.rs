//! Hartree–Fock trace study: generate a synthetic HF trace (the paper's
//! SiOSi / tile-100 workload), characterize it and sweep the memory
//! capacity from `mc` to `2·mc` for the best variant of each heuristic
//! category — a miniature of Figs. 8 and 10 of the paper.
//!
//! Run with `cargo run --release --example hf_trace_study`.

use transfer_sched::analysis::experiment::best_variant_experiment;
use transfer_sched::analysis::sweep::capacity_factors;
use transfer_sched::chem::suite::{generate_partial_suite, SuiteConfig};
use transfer_sched::chem::{characterize, Kernel};

fn main() {
    // Two ranks of a reduced HF run (the full paper setup has 150 ranks of
    // 300-800 tasks; the structure is identical).
    let traces = generate_partial_suite(Kernel::HartreeFock, &SuiteConfig::small(), 2);

    println!("== workload characterization (Fig. 8) ==");
    for trace in &traces {
        let c = characterize(trace).expect("characterization");
        println!(
            "rank {:>2}: {} tasks, sum comm = {:.2} OMIM, sum comp = {:.2} OMIM, \
             sequential = {:.2} OMIM, mc = {}",
            trace.rank, c.n_tasks, c.sum_comm_ratio, c.sum_comp_ratio, c.sum_ratio, c.min_capacity
        );
    }

    println!("\n== best variant of each category across the capacity sweep (Fig. 10) ==");
    let rows = best_variant_experiment(&traces, &capacity_factors(), None).expect("experiment");
    println!("{:<8} {:<16} {:>12}", "factor", "category", "median ratio");
    for row in rows {
        println!(
            "{:<8.3} {:<16} {:>12.4}",
            row.factor, row.label, row.ratios.median
        );
    }
    println!(
        "\nExpected shape: every ratio is >= 1, tight capacities hurt the static \
         category most, and the static-order-with-dynamic-corrections category \
         approaches 1.0 as the capacity grows."
    );
}
