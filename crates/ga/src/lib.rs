//! # dts-ga
//!
//! A small Global-Arrays-like PGAS substrate. NWChem expresses its tensors
//! as *global arrays*: tiled arrays whose tiles are distributed over the
//! memory of all processes; a process that needs a tile it does not own
//! issues a one-sided `get` over the interconnect. The data-transfer traces
//! of the paper are exactly the sequences of such `get`s (communication
//! side) paired with the kernels consuming them (computation side).
//!
//! The real machine (PNNL Cascade) is not available, so this crate models
//! the parts that matter for the traces:
//!
//! * [`topology`] — nodes, cores per process, process-to-node placement
//!   (10 nodes × 15 worker cores in the paper's setup);
//! * [`mod@array`] — tiled global arrays with a deterministic owner map;
//! * [`transfer`] — the single-route transfer-cost model of Section 5
//!   (every transfer between a process and the GA memory takes the same
//!   route, so cost = latency + bytes/bandwidth);
//! * [`runtime`] — per-process accounting of `get` operations, producing the
//!   `(bytes, transfer time)` pairs the trace generators consume.

#![warn(missing_docs)]

pub mod array;
pub mod runtime;
pub mod topology;
pub mod transfer;

pub use array::GlobalArray;
pub use runtime::{GaRuntime, GetOutcome};
pub use topology::Topology;
pub use transfer::TransferModel;
