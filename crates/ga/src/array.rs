//! Tiled global arrays with deterministic tile ownership.

use dts_tensor::TileShape;
use serde::{Deserialize, Serialize};

/// A tiled, distributed array. Tiles are identified by a flat index into
/// `tile_shapes`; ownership is assigned round-robin over the worker
/// processes, which is how NWChem's TCE distributes its block-sparse tensors
/// by default.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalArray {
    /// Human-readable name (e.g. `"fock"`, `"t2"`, `"v2"`).
    pub name: String,
    /// Shape of each tile.
    tile_shapes: Vec<TileShape>,
    /// Number of worker processes over which tiles are distributed.
    n_processes: usize,
}

impl GlobalArray {
    /// Creates a global array from the shapes of its tiles.
    ///
    /// # Panics
    /// Panics if there are no tiles or no processes.
    pub fn new(name: impl Into<String>, tile_shapes: Vec<TileShape>, n_processes: usize) -> Self {
        assert!(
            !tile_shapes.is_empty(),
            "a global array needs at least one tile"
        );
        assert!(n_processes > 0, "a global array needs at least one process");
        GlobalArray {
            name: name.into(),
            tile_shapes,
            n_processes,
        }
    }

    /// Number of tiles.
    pub fn n_tiles(&self) -> usize {
        self.tile_shapes.len()
    }

    /// Shape of tile `index`.
    pub fn tile_shape(&self, index: usize) -> TileShape {
        self.tile_shapes[index]
    }

    /// Size in bytes of tile `index`.
    pub fn tile_bytes(&self, index: usize) -> u64 {
        self.tile_shapes[index].bytes()
    }

    /// Owner (process rank) of tile `index`: round-robin distribution.
    pub fn owner_of(&self, index: usize) -> usize {
        assert!(index < self.n_tiles(), "tile index {index} out of range");
        index % self.n_processes
    }

    /// Total size of the array in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.tile_shapes.iter().map(|s| s.bytes()).sum()
    }

    /// Bytes owned by a given process rank.
    pub fn bytes_owned_by(&self, rank: usize) -> u64 {
        self.tile_shapes
            .iter()
            .enumerate()
            .filter(|(i, _)| self.owner_of(*i) == rank)
            .map(|(_, s)| s.bytes())
            .sum()
    }

    /// Largest tile in bytes (relevant for the minimum memory capacity of
    /// the traces).
    pub fn max_tile_bytes(&self) -> u64 {
        self.tile_shapes
            .iter()
            .map(|s| s.bytes())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GlobalArray {
        GlobalArray::new(
            "fock",
            vec![
                TileShape::matrix(100, 100),
                TileShape::matrix(100, 50),
                TileShape::matrix(50, 100),
                TileShape::matrix(50, 50),
            ],
            3,
        )
    }

    #[test]
    fn ownership_is_round_robin() {
        let ga = sample();
        assert_eq!(ga.n_tiles(), 4);
        assert_eq!(ga.owner_of(0), 0);
        assert_eq!(ga.owner_of(1), 1);
        assert_eq!(ga.owner_of(2), 2);
        assert_eq!(ga.owner_of(3), 0);
    }

    #[test]
    fn byte_accounting() {
        let ga = sample();
        assert_eq!(ga.tile_bytes(0), 80_000);
        assert_eq!(ga.tile_bytes(3), 20_000);
        assert_eq!(ga.total_bytes(), 80_000 + 40_000 + 40_000 + 20_000);
        assert_eq!(ga.bytes_owned_by(0), 80_000 + 20_000);
        assert_eq!(ga.max_tile_bytes(), 80_000);
    }

    #[test]
    fn load_balance_of_round_robin_is_reasonable() {
        // With homogeneous tiles every process owns (almost) the same amount.
        let shapes = vec![TileShape::matrix(64, 64); 100];
        let ga = GlobalArray::new("dense", shapes, 7);
        let per_rank: Vec<u64> = (0..7).map(|r| ga.bytes_owned_by(r)).collect();
        let min = per_rank.iter().min().unwrap();
        let max = per_rank.iter().max().unwrap();
        assert!(max - min <= TileShape::matrix(64, 64).bytes());
        assert_eq!(per_rank.iter().sum::<u64>(), ga.total_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_of_invalid_tile_panics() {
        sample().owner_of(99);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn empty_array_panics() {
        GlobalArray::new("empty", vec![], 2);
    }
}
