//! Per-process Global-Arrays runtime: one-sided `get` accounting.

use crate::array::GlobalArray;
use crate::topology::Topology;
use crate::transfer::TransferModel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Outcome of a `get` of one tile from a global array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GetOutcome {
    /// Bytes fetched.
    pub bytes: u64,
    /// Transfer time in microseconds (0 when the tile is already local).
    pub transfer_micros: u64,
    /// `true` when the tile is owned by the requesting process (no transfer
    /// needed).
    pub local: bool,
}

/// Aggregate communication statistics of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommStats {
    /// Number of remote `get` operations.
    pub remote_gets: u64,
    /// Number of local (free) accesses.
    pub local_gets: u64,
    /// Total bytes moved over the interconnect.
    pub remote_bytes: u64,
    /// Total transfer time in microseconds.
    pub transfer_micros: u64,
}

/// The Global-Arrays runtime: topology + transfer model + per-process
/// statistics. Statistics are behind a mutex so that trace generation can
/// run one thread per group of processes.
#[derive(Debug)]
pub struct GaRuntime {
    topology: Topology,
    model: TransferModel,
    stats: Vec<Mutex<CommStats>>,
}

impl GaRuntime {
    /// Creates a runtime for a topology and transfer model.
    pub fn new(topology: Topology, model: TransferModel) -> Self {
        let stats = (0..topology.n_processes())
            .map(|_| Mutex::new(CommStats::default()))
            .collect();
        GaRuntime {
            topology,
            model,
            stats,
        }
    }

    /// The runtime's topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The runtime's transfer model.
    pub fn model(&self) -> TransferModel {
        self.model
    }

    /// Process `rank` fetches tile `tile` of `array`. Returns the bytes and
    /// transfer time and updates the per-process statistics.
    pub fn get(&self, rank: usize, array: &GlobalArray, tile: usize) -> GetOutcome {
        assert!(
            rank < self.topology.n_processes(),
            "rank {rank} out of range"
        );
        let owner = array.owner_of(tile);
        let bytes = array.tile_bytes(tile);
        let mut stats = self.stats[rank].lock();
        if owner == rank {
            stats.local_gets += 1;
            return GetOutcome {
                bytes,
                transfer_micros: 0,
                local: true,
            };
        }
        let same_node = self.topology.same_node(rank, owner);
        let micros = self.model.micros(bytes, same_node);
        stats.remote_gets += 1;
        stats.remote_bytes += bytes;
        stats.transfer_micros += micros;
        GetOutcome {
            bytes,
            transfer_micros: micros,
            local: false,
        }
    }

    /// Statistics accumulated by a process so far.
    pub fn stats_of(&self, rank: usize) -> CommStats {
        *self.stats[rank].lock()
    }

    /// Sum of the statistics of every process.
    pub fn total_stats(&self) -> CommStats {
        let mut total = CommStats::default();
        for s in &self.stats {
            let s = s.lock();
            total.remote_gets += s.remote_gets;
            total.local_gets += s.local_gets;
            total.remote_bytes += s.remote_bytes;
            total.transfer_micros += s.transfer_micros;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_tensor::TileShape;

    fn runtime() -> GaRuntime {
        GaRuntime::new(
            Topology {
                nodes: 2,
                workers_per_node: 2,
            },
            TransferModel::default(),
        )
    }

    fn array() -> GlobalArray {
        GlobalArray::new("a", vec![TileShape::matrix(100, 100); 8], 4)
    }

    #[test]
    fn local_gets_are_free() {
        let rt = runtime();
        let ga = array();
        // Tile 1 is owned by rank 1.
        let out = rt.get(1, &ga, 1);
        assert!(out.local);
        assert_eq!(out.transfer_micros, 0);
        assert_eq!(rt.stats_of(1).local_gets, 1);
        assert_eq!(rt.stats_of(1).remote_gets, 0);
    }

    #[test]
    fn remote_gets_cost_and_accumulate() {
        let rt = runtime();
        let ga = array();
        let out = rt.get(0, &ga, 1); // owner 1, same node as 0
        assert!(!out.local);
        assert_eq!(out.bytes, 80_000);
        assert!(out.transfer_micros > 0);
        // Single-route model: same cost regardless of the node.
        let out2 = rt.get(0, &ga, 2); // owner 2, other node
        assert_eq!(out.transfer_micros, out2.transfer_micros);
        let stats = rt.stats_of(0);
        assert_eq!(stats.remote_gets, 2);
        assert_eq!(stats.remote_bytes, 160_000);
        assert_eq!(
            stats.transfer_micros,
            out.transfer_micros + out2.transfer_micros
        );
    }

    #[test]
    fn total_stats_aggregate_over_processes() {
        let rt = runtime();
        let ga = array();
        rt.get(0, &ga, 1);
        rt.get(1, &ga, 2);
        rt.get(2, &ga, 2); // local for rank 2
        let total = rt.total_stats();
        assert_eq!(total.remote_gets, 2);
        assert_eq!(total.local_gets, 1);
    }

    #[test]
    fn runtime_is_shareable_across_threads() {
        let rt = std::sync::Arc::new(runtime());
        let ga = std::sync::Arc::new(array());
        let mut handles = Vec::new();
        for rank in 0..4 {
            let rt = rt.clone();
            let ga = ga.clone();
            handles.push(std::thread::spawn(move || {
                for tile in 0..ga.n_tiles() {
                    rt.get(rank, &ga, tile);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = rt.total_stats();
        assert_eq!(total.remote_gets + total.local_gets, 4 * 8);
        assert_eq!(total.local_gets, 8); // each rank owns 2 of the 8 tiles
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_rank_panics() {
        runtime().get(9, &array(), 0);
    }
}
