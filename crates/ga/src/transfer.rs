//! Transfer-cost model.
//!
//! The paper uses a deliberately simple model: every transfer between a
//! process's local memory and the Global-Arrays memory takes the same route,
//! so its duration only depends on the message size. The model is
//! `latency + bytes / bandwidth`, with an optional cheaper intra-node path
//! (disabled by default to match the paper exactly) and a preset for the
//! CPU↔GPU copy-engine scenario the paper mentions as future work.

use serde::{Deserialize, Serialize};

/// Linear (latency + bandwidth) transfer-cost model with a single route per
/// source–destination pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Link bandwidth in bytes/s for inter-node transfers.
    pub bandwidth: f64,
    /// Bandwidth for transfers whose endpoints are on the same node. Equal
    /// to `bandwidth` by default (single-route model of the paper).
    pub intra_node_bandwidth: f64,
}

impl Default for TransferModel {
    /// Approximation of the Cascade FDR InfiniBand fabric as seen by one
    /// process: 2 µs latency, 1.5 GB/s effective per-process bandwidth.
    fn default() -> Self {
        TransferModel {
            latency: 2.0e-6,
            bandwidth: 1.5e9,
            intra_node_bandwidth: 1.5e9,
        }
    }
}

impl TransferModel {
    /// Preset for the CPU↔GPU offload scenario (one PCIe 3.0 x16 copy
    /// engine): 10 µs launch latency, 12 GB/s.
    pub fn pcie_gen3() -> Self {
        TransferModel {
            latency: 10.0e-6,
            bandwidth: 12.0e9,
            intra_node_bandwidth: 12.0e9,
        }
    }

    /// Transfer time in seconds for a message of `bytes` bytes between two
    /// endpoints. `same_node` selects the intra-node bandwidth.
    pub fn seconds(&self, bytes: u64, same_node: bool) -> f64 {
        let bw = if same_node {
            self.intra_node_bandwidth
        } else {
            self.bandwidth
        };
        self.latency + bytes as f64 / bw
    }

    /// Transfer time in integer microseconds (trace resolution), at least 1.
    pub fn micros(&self, bytes: u64, same_node: bool) -> u64 {
        (self.seconds(bytes, same_node) * 1e6).round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_single_route() {
        let m = TransferModel::default();
        assert_eq!(m.seconds(1 << 20, true), m.seconds(1 << 20, false));
    }

    #[test]
    fn cost_is_affine_in_message_size() {
        let m = TransferModel::default();
        let t1 = m.seconds(1_500_000, false);
        let t2 = m.seconds(3_000_000, false);
        // Doubling the payload roughly doubles the bandwidth term.
        assert!((t2 - t1 - 1e-3).abs() < 1e-9);
        // 176 KiB (the largest HF task of the paper) ≈ 122 µs.
        let hf = m.micros(176 * 1024, false);
        assert!((100..150).contains(&hf), "{hf}");
    }

    #[test]
    fn micros_is_at_least_one() {
        let m = TransferModel::default();
        assert!(m.micros(0, false) >= 1);
    }

    #[test]
    fn pcie_preset_is_faster_per_byte_but_higher_latency() {
        let ib = TransferModel::default();
        let pcie = TransferModel::pcie_gen3();
        assert!(pcie.latency > ib.latency);
        assert!(pcie.seconds(100 << 20, false) < ib.seconds(100 << 20, false));
    }
}
