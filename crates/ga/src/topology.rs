//! Cluster topology: nodes and process placement.

use serde::{Deserialize, Serialize};

/// A homogeneous cluster: `nodes` nodes, each running `workers_per_node`
/// worker processes (Global Arrays dedicates one core per node to progress,
/// so a 16-core Cascade node exposes 15 workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of nodes.
    pub nodes: usize,
    /// Worker processes per node.
    pub workers_per_node: usize,
}

impl Topology {
    /// The configuration used by the paper: 10 Cascade nodes, 16 cores each,
    /// one core per node dedicated to the Global Arrays progress engine,
    /// 150 worker processes in total.
    pub fn cascade_10_nodes() -> Self {
        Topology {
            nodes: 10,
            workers_per_node: 15,
        }
    }

    /// Total number of worker processes.
    pub fn n_processes(&self) -> usize {
        self.nodes * self.workers_per_node
    }

    /// Node hosting a given process rank (block placement: ranks
    /// `0..workers_per_node` on node 0, and so on).
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.n_processes(), "rank {rank} out of range");
        rank / self.workers_per_node
    }

    /// `true` iff two ranks live on the same node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::cascade_10_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_topology_matches_paper() {
        let t = Topology::cascade_10_nodes();
        assert_eq!(t.n_processes(), 150);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(14), 0);
        assert_eq!(t.node_of(15), 1);
        assert_eq!(t.node_of(149), 9);
        assert!(t.same_node(0, 14));
        assert!(!t.same_node(14, 15));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        Topology::cascade_10_nodes().node_of(150);
    }
}
