//! The generator families of the workload corpus.
//!
//! The paper evaluates its heuristics only on HF/CCSD integral-kernel
//! traces, which pins every scheduling claim to one communication /
//! computation / memory shape. The families here bracket the space from
//! both ends, following the related work named in `PAPERS.md`:
//!
//! * [`WorkloadFamily::MdLike`] — short-range molecular-dynamics kernels
//!   (MD-Bench): thousands of near-uniform tiny tasks with a narrow
//!   communication/computation spread and low memory pressure.
//! * [`WorkloadFamily::DenseLa`] — dense-linear-algebra panels (the Cray
//!   XE performance-model regime): few tasks, Zipf-skewed computation
//!   times, memory footprints near the machine capacity.
//! * [`WorkloadFamily::TieHeavy`], [`WorkloadFamily::MemoryCliff`],
//!   [`WorkloadFamily::TransferBound`] — the adversarial domains promoted
//!   from [`dts_core::testgen`]: the property-test generators that stress
//!   id tie-breaking, memory-blocked decisions and link contention now
//!   also emit full [`Trace`]s so the scenario suite and the CLI can run
//!   them like any other workload.
//!
//! Every family is seeded and parameterized: the same
//! [`GeneratorConfig`] and rank always produce a byte-identical trace
//! (the generator-invariant property tests pin this), and each family
//! declares shape invariants (spread bounds, skew ratios, duplicate-comm
//! fractions) that the tests enforce.

use dts_chem::trace::TaskKind;
use dts_chem::{Trace, TraceTask};
use dts_core::prelude::*;
use dts_core::testgen;
use microcheck::Gen;
use rand::prelude::*;
use std::fmt;

/// Hard ceiling on the number of tasks a single generated trace may hold,
/// so a typo'd CLI argument cannot ask for a terabyte of task records.
pub const MAX_TASKS: usize = 10_000_000;

/// Default Zipf exponent of the dense-LA family (`comp_i ∝ (i+1)^-s`).
pub const DEFAULT_DENSE_LA_SKEW: f64 = 1.2;

/// A synthetic workload family of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFamily {
    /// MD-Bench-like neighbor-list kernels: many tiny, near-uniform tasks.
    MdLike,
    /// Dense-linear-algebra panels: few tasks, Zipf-skewed computation,
    /// memory footprints near capacity.
    DenseLa,
    /// Tie-heavy adversarial domain (promoted from
    /// [`testgen::tie_heavy_task_gen`]): tiny value ranges force equal
    /// communication times, ratios and footprints everywhere.
    TieHeavy,
    /// Memory-cliff adversarial domain (promoted from
    /// [`testgen::memory_cliff_task_gen`]): almost no two tasks coexist in
    /// memory.
    MemoryCliff,
    /// Transfer-bound adversarial domain (promoted from
    /// [`testgen::transfer_bound_task_gen`]): communication dominates, the
    /// link is the bottleneck.
    TransferBound,
}

impl WorkloadFamily {
    /// Every synthetic family, in corpus order.
    pub const ALL: [WorkloadFamily; 5] = [
        WorkloadFamily::MdLike,
        WorkloadFamily::DenseLa,
        WorkloadFamily::TieHeavy,
        WorkloadFamily::MemoryCliff,
        WorkloadFamily::TransferBound,
    ];

    /// CLI name of the family (`dts generate <name> ...`).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadFamily::MdLike => "md",
            WorkloadFamily::DenseLa => "dense-la",
            WorkloadFamily::TieHeavy => "tie-heavy",
            WorkloadFamily::MemoryCliff => "memory-cliff",
            WorkloadFamily::TransferBound => "transfer-bound",
        }
    }

    /// The `kernel` label stamped into generated traces (the synthetic
    /// counterpart of the chemistry generators' `"HF"` / `"CCSD"`).
    pub fn kernel_label(self) -> &'static str {
        match self {
            WorkloadFamily::MdLike => "MD",
            WorkloadFamily::DenseLa => "DENSE-LA",
            WorkloadFamily::TieHeavy => "TIE-HEAVY",
            WorkloadFamily::MemoryCliff => "MEMORY-CLIFF",
            WorkloadFamily::TransferBound => "TRANSFER-BOUND",
        }
    }

    /// One-line description used by the CLI help text.
    pub fn description(self) -> &'static str {
        match self {
            WorkloadFamily::MdLike => {
                "many tiny near-uniform tasks, narrow comm/comp spread, low memory pressure"
            }
            WorkloadFamily::DenseLa => {
                "few tasks, Zipf-skewed computation, memory footprints near capacity"
            }
            WorkloadFamily::TieHeavy => {
                "adversarial: tiny value ranges force ties everywhere (from testgen)"
            }
            WorkloadFamily::MemoryCliff => {
                "adversarial: almost no two tasks coexist in memory (from testgen)"
            }
            WorkloadFamily::TransferBound => {
                "adversarial: communication dominates, the link is the bottleneck (from testgen)"
            }
        }
    }

    /// Parses a family from its CLI name (case-insensitive).
    pub fn from_name(name: &str) -> Option<WorkloadFamily> {
        let lower = name.to_ascii_lowercase();
        WorkloadFamily::ALL
            .iter()
            .copied()
            .find(|f| f.name() == lower)
    }

    /// Default task count of the family: thousands for the MD-like shape,
    /// a few dozen for dense LA, a few hundred for the adversarial
    /// domains.
    pub fn default_tasks(self) -> usize {
        match self {
            WorkloadFamily::MdLike => 2000,
            WorkloadFamily::DenseLa => 32,
            WorkloadFamily::TieHeavy => 400,
            WorkloadFamily::MemoryCliff => 256,
            WorkloadFamily::TransferBound => 400,
        }
    }

    /// `true` iff the family accepts the Zipf `--skew` parameter.
    pub fn supports_skew(self) -> bool {
        matches!(self, WorkloadFamily::DenseLa)
    }
}

impl fmt::Display for WorkloadFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified, seeded generator invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// The family to draw from.
    pub family: WorkloadFamily,
    /// Number of tasks in the trace.
    pub n_tasks: usize,
    /// Base seed; the per-rank seed is derived from it, so one config
    /// yields a whole suite of distinct but reproducible traces.
    pub seed: u64,
    /// Zipf exponent of the dense-LA family. Must be `None` for every
    /// other family ([`GeneratorConfig::validate`] enforces this).
    pub skew: Option<f64>,
    /// Modeled link bandwidth in bytes per second. When set, every task's
    /// communication time is rewritten to its memory footprint divided by
    /// this bandwidth, with a deterministic ±[`BANDWIDTH_JITTER_PCT`] %
    /// measurement jitter — the size-proportional shape `dts calibrate`
    /// recovers. `None` (the default) keeps each family's native
    /// communication times, byte-identical to earlier builds.
    pub bandwidth: Option<u64>,
}

impl GeneratorConfig {
    /// The default configuration of a family.
    pub fn new(family: WorkloadFamily) -> Self {
        GeneratorConfig {
            family,
            n_tasks: family.default_tasks(),
            seed: 0,
            skew: None,
            bandwidth: None,
        }
    }

    /// Checks the parameter set against the family: a positive, bounded
    /// task count everywhere, and `skew` only on families that declare
    /// support for it (finite and positive when present).
    pub fn validate(&self) -> Result<()> {
        let invalid = |msg: String| CoreError::InvalidTrace(msg);
        if self.n_tasks == 0 {
            return Err(invalid(format!(
                "family '{}' needs at least one task",
                self.family
            )));
        }
        if self.n_tasks > MAX_TASKS {
            return Err(invalid(format!(
                "{} tasks requested, but generated traces are capped at {MAX_TASKS}",
                self.n_tasks
            )));
        }
        if self.bandwidth == Some(0) {
            return Err(invalid(
                "bandwidth must be a positive number of bytes per second".into(),
            ));
        }
        match self.skew {
            Some(_) if !self.family.supports_skew() => Err(invalid(format!(
                "family '{}' takes no skew parameter (only 'dense-la' does)",
                self.family
            ))),
            Some(s) if !s.is_finite() || s <= 0.0 => Err(invalid(format!(
                "skew {s} must be a finite positive number"
            ))),
            _ => Ok(()),
        }
    }
}

/// Mixes the base seed with the rank so every rank of a suite gets an
/// independent, reproducible stream (splitmix-style odd multiplier).
fn rank_seed(seed: u64, rank: usize) -> u64 {
    seed.wrapping_add((rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Generates one trace of the configured family for a rank.
///
/// Determinism contract: the same `(config, rank)` pair always produces a
/// byte-identical trace (same task order, names, values), across runs and
/// platforms — the golden corpus suite depends on it.
pub fn generate_trace(config: &GeneratorConfig, rank: usize) -> Result<Trace> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(rank_seed(config.seed, rank));
    let mut tasks = match config.family {
        WorkloadFamily::MdLike => md_tasks(config.n_tasks, &mut rng),
        WorkloadFamily::DenseLa => dense_la_tasks(
            config.n_tasks,
            config.skew.unwrap_or(DEFAULT_DENSE_LA_SKEW),
            &mut rng,
        ),
        WorkloadFamily::TieHeavy => promoted_tasks(
            testgen::tie_heavy_task_gen(),
            "tie",
            config.n_tasks,
            &mut rng,
        ),
        WorkloadFamily::MemoryCliff => promoted_tasks(
            testgen::memory_cliff_task_gen(),
            "cliff",
            config.n_tasks,
            &mut rng,
        ),
        WorkloadFamily::TransferBound => promoted_tasks(
            testgen::transfer_bound_task_gen(),
            "xfer",
            config.n_tasks,
            &mut rng,
        ),
    };
    if let Some(bandwidth) = config.bandwidth {
        // The extra rng draws happen only on this opt-in path, so default
        // generation stays byte-identical to earlier builds.
        for task in &mut tasks {
            let jitter = rng.gen_range(100 - BANDWIDTH_JITTER_PCT..=100 + BANDWIDTH_JITTER_PCT);
            let micros = u128::from(task.mem_bytes) * 1_000_000 * u128::from(jitter)
                / (u128::from(bandwidth) * 100);
            task.comm_micros = micros.min(u128::from(u64::MAX)) as u64;
        }
    }
    Ok(Trace {
        kernel: config.family.kernel_label().to_string(),
        rank,
        tasks,
        model: None,
        cost_model: None,
    })
}

/// Half-width of the deterministic measurement jitter applied to
/// bandwidth-derived communication times, in percent.
pub const BANDWIDTH_JITTER_PCT: u64 = 2;

/// MD-like bounds, exposed so the shape-invariant tests and the generator
/// share one source of truth: `(comm_lo, comm_hi, comp_lo, comp_hi,
/// mem_lo, mem_hi)` in µs and bytes.
pub const MD_BOUNDS: (u64, u64, u64, u64, u64, u64) = (90, 110, 40, 60, 4096, 5120);

fn md_tasks(n: usize, rng: &mut StdRng) -> Vec<TraceTask> {
    let (comm_lo, comm_hi, comp_lo, comp_hi, mem_lo, mem_hi) = MD_BOUNDS;
    (0..n)
        .map(|i| TraceTask {
            name: format!("md({i})"),
            kind: TaskKind::Contraction,
            comm_micros: rng.gen_range(comm_lo..=comm_hi),
            comp_micros: rng.gen_range(comp_lo..=comp_hi),
            mem_bytes: rng.gen_range(mem_lo..=mem_hi),
        })
        .collect()
}

/// Dense-LA constants: the largest panel computes for [`DENSE_LA_COMP_BASE`]
/// µs (scaled down the Zipf tail, floored at [`DENSE_LA_COMP_FLOOR`]), and
/// every panel's input occupies 75–100 % of [`DENSE_LA_MEM_MAX`] bytes,
/// transferred at [`DENSE_LA_BYTES_PER_MICRO`] bytes/µs.
pub const DENSE_LA_COMP_BASE: u64 = 4_000_000;
/// Smallest computation time of a dense-LA panel, µs.
pub const DENSE_LA_COMP_FLOOR: u64 = 20_000;
/// Largest dense-LA panel footprint, bytes (2 GiB).
pub const DENSE_LA_MEM_MAX: u64 = 2 << 30;
/// Modeled link bandwidth of the dense-LA family, bytes per µs.
pub const DENSE_LA_BYTES_PER_MICRO: u64 = 1024;

fn dense_la_tasks(n: usize, skew: f64, rng: &mut StdRng) -> Vec<TraceTask> {
    // Zipf-skewed computation times: panel i (by weight rank) computes for
    // base * (i+1)^-skew µs. The weights come from the integer fixed-point
    // machinery below, not `f64::powf` — `pow` is not correctly rounded on
    // every libm, and a one-ulp difference in a weight moves a computation
    // time by a microsecond and the golden corpus metrics with it.
    let skew_q32 = skew_to_q32(skew);
    let mut comps: Vec<u64> = (0..n)
        .map(|i| {
            zipf_weight_scaled(DENSE_LA_COMP_BASE, i as u64 + 1, skew_q32) + DENSE_LA_COMP_FLOOR
        })
        .collect();
    // The submission order must not leak the weight rank (real panel
    // queues are not sorted by cost), so shuffle deterministically.
    comps.shuffle(rng);
    comps
        .into_iter()
        .enumerate()
        .map(|(i, comp_micros)| {
            let mem_bytes = rng.gen_range(DENSE_LA_MEM_MAX * 3 / 4..=DENSE_LA_MEM_MAX);
            TraceTask {
                name: format!("panel({i})"),
                kind: TaskKind::Contraction,
                comm_micros: mem_bytes / DENSE_LA_BYTES_PER_MICRO,
                comp_micros,
                mem_bytes,
            }
        })
        .collect()
}

/// Q32 fixed-point one (`2^32`): the scale of the integer Zipf weight
/// machinery below.
const Q32: u128 = 1 << 32;

/// `2^(2^-j)` for `j = 1..=32`, rounded to Q32 fixed point — the binary
/// fraction factors behind [`zipf_weight_scaled`]'s `exp2`. Hardcoded so
/// the Zipf weights are pure integer arithmetic: identical on every
/// platform, independent of the host libm.
const EXP2_FACTORS_Q32: [u64; 32] = [
    0x0000_0001_6a09_e668,
    0x0000_0001_306f_e0a3,
    0x0000_0001_172b_83c8,
    0x0000_0001_0b55_86d0,
    0x0000_0001_059b_0d31,
    0x0000_0001_02c9_a3e7,
    0x0000_0001_0163_daa0,
    0x0000_0001_00b1_afa6,
    0x0000_0001_0058_c86e,
    0x0000_0001_002c_605e,
    0x0000_0001_0016_2f39,
    0x0000_0001_000b_175f,
    0x0000_0001_0005_8ba0,
    0x0000_0001_0002_c5cc,
    0x0000_0001_0001_62e5,
    0x0000_0001_0000_b172,
    0x0000_0001_0000_58b9,
    0x0000_0001_0000_2c5d,
    0x0000_0001_0000_162e,
    0x0000_0001_0000_0b17,
    0x0000_0001_0000_058c,
    0x0000_0001_0000_02c6,
    0x0000_0001_0000_0163,
    0x0000_0001_0000_00b1,
    0x0000_0001_0000_0059,
    0x0000_0001_0000_002c,
    0x0000_0001_0000_0016,
    0x0000_0001_0000_000b,
    0x0000_0001_0000_0006,
    0x0000_0001_0000_0003,
    0x0000_0001_0000_0001,
    0x0000_0001_0000_0001,
];

/// Converts a validated skew (finite, positive) to Q32 fixed point.
/// Scaling by a power of two and rounding are exact IEEE operations, so
/// this is deterministic even though the input is an `f64`; skews beyond
/// the representable range saturate (the weights just floor out earlier).
fn skew_to_q32(skew: f64) -> u64 {
    (skew * Q32 as f64).round() as u64
}

/// `log2(x)` in Q32 fixed point for `x >= 1`: leading zeros give the
/// integer part, 32 mantissa-squaring steps the fraction. Pure integer.
fn log2_q32(x: u64) -> u128 {
    debug_assert!(x >= 1);
    let int_part = u128::from(63 - x.leading_zeros());
    // Mantissa in [1, 2) as Q32.
    let mut m = (u128::from(x) << 32) >> int_part;
    let mut frac: u128 = 0;
    for _ in 0..32 {
        m = (m * m) >> 32;
        frac <<= 1;
        if m >= 2 * Q32 {
            frac |= 1;
            m >>= 1;
        }
    }
    (int_part << 32) | frac
}

/// `round(base * rank^-skew)` in pure integer arithmetic: the Zipf weight
/// of `rank >= 1` scaled by `base`, with the skew in Q32 fixed point.
/// Computes `e = skew * log2(rank)`, splits it into integer and fraction,
/// rebuilds `2^frac` from [`EXP2_FACTORS_Q32`] and divides — every step
/// integer, so the result is bit-identical across platforms.
fn zipf_weight_scaled(base: u64, rank: u64, skew_q32: u64) -> u64 {
    let e = (u128::from(skew_q32) * log2_q32(rank)) >> 32;
    let int = e >> 32;
    if int >= 64 {
        // 2^-64 of any u64 base rounds to zero.
        return 0;
    }
    let frac = e & (Q32 - 1);
    let mut t = Q32;
    for (j, &factor) in EXP2_FACTORS_Q32.iter().enumerate() {
        if frac & (1 << (31 - j)) != 0 {
            t = (t * u128::from(factor)) >> 32;
        }
    }
    // base * 2^-e = base * 2^32 / (2^int * t), rounded half up.
    let d = t << int;
    let num = (u128::from(base) << 32) + d / 2;
    (num / d) as u64
}

/// Ticks per abstract [`testgen`] unit when a property-test domain is
/// promoted to a trace: [`Time::units_int`] uses 1000 ticks per unit and
/// traces store microseconds (1 tick = 1 µs), so a promoted trace builds
/// the exact instance the property tests would.
pub const PROMOTED_MICROS_PER_UNIT: u64 = Time::TICKS_PER_UNIT;

fn promoted_tasks(
    gen: testgen::TaskGen,
    prefix: &str,
    n: usize,
    rng: &mut StdRng,
) -> Vec<TraceTask> {
    (0..n)
        .map(|i| {
            let spec = gen.generate(rng);
            TraceTask {
                name: format!("{prefix}({i})"),
                kind: TaskKind::Contraction,
                comm_micros: spec.comm * PROMOTED_MICROS_PER_UNIT,
                comp_micros: spec.comp * PROMOTED_MICROS_PER_UNIT,
                mem_bytes: spec.mem,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weight_table_is_pinned_and_libm_free() {
        // The head of the dense-LA weight table at the default skew,
        // pinned value by value: these numbers are what the golden corpus
        // metrics are built on, and the integer machinery guarantees them
        // on every platform — a libm regression (or a future "simplify
        // back to powf") shows up here before it shows up as a golden
        // mismatch on someone else's machine.
        let sq = skew_to_q32(DEFAULT_DENSE_LA_SKEW);
        assert_eq!(sq, 5_153_960_755);
        let expected: [u64; 16] = [
            4_000_000, 1_741_101, 1_070_322, 757_858, 579_824, 465_885, 387_206, 329_877, 286_397,
            252_383, 225_107, 202_788, 184_216, 168_541, 155_150, 143_587,
        ];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(
                zipf_weight_scaled(DENSE_LA_COMP_BASE, i as u64 + 1, sq),
                want,
                "rank {}",
                i + 1
            );
        }
        assert_eq!(zipf_weight_scaled(DENSE_LA_COMP_BASE, 100, sq), 15_924);
        assert_eq!(zipf_weight_scaled(DENSE_LA_COMP_BASE, 1_000, sq), 1_005);
    }

    #[test]
    fn zipf_weights_are_monotone_and_saturate_safely() {
        // Weights never increase down the rank tail, the head weight is
        // the full base, and extreme skews floor out at zero instead of
        // overflowing the fixed-point pipeline.
        for skew in [0.3, 1.0, 1.2, 2.5] {
            let sq = skew_to_q32(skew);
            assert_eq!(
                zipf_weight_scaled(DENSE_LA_COMP_BASE, 1, sq),
                DENSE_LA_COMP_BASE
            );
            let mut prev = u64::MAX;
            for rank in 1..=4096 {
                let w = zipf_weight_scaled(DENSE_LA_COMP_BASE, rank, sq);
                assert!(w <= prev, "skew {skew} rank {rank}: {w} > {prev}");
                prev = w;
            }
        }
        assert_eq!(zipf_weight_scaled(DENSE_LA_COMP_BASE, 2, u64::MAX), 0);
        assert_eq!(zipf_weight_scaled(u64::MAX, 1, skew_to_q32(1.2)), u64::MAX);
    }

    #[test]
    fn names_round_trip_and_describe() {
        for family in WorkloadFamily::ALL {
            assert_eq!(WorkloadFamily::from_name(family.name()), Some(family));
            assert_eq!(
                WorkloadFamily::from_name(&family.name().to_uppercase()),
                Some(family)
            );
            assert!(!family.description().is_empty());
            assert!(!family.kernel_label().is_empty());
        }
        assert_eq!(WorkloadFamily::from_name("hf"), None);
        assert_eq!(WorkloadFamily::from_name("nope"), None);
    }

    #[test]
    fn config_validation_rejects_bad_parameter_sets() {
        let mut config = GeneratorConfig::new(WorkloadFamily::MdLike);
        assert!(config.validate().is_ok());
        config.n_tasks = 0;
        assert!(config.validate().is_err());
        config.n_tasks = MAX_TASKS + 1;
        assert!(config.validate().is_err());
        config.n_tasks = 10;
        config.skew = Some(1.5);
        // Skew on a non-dense-LA family is a parameter error.
        assert!(matches!(config.validate(), Err(CoreError::InvalidTrace(_))));
        config.family = WorkloadFamily::DenseLa;
        assert!(config.validate().is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            config.skew = Some(bad);
            assert!(config.validate().is_err(), "skew {bad} accepted");
        }
    }

    #[test]
    fn every_family_generates_its_configured_task_count() {
        for family in WorkloadFamily::ALL {
            let mut config = GeneratorConfig::new(family);
            config.n_tasks = 50;
            config.seed = 7;
            let trace = generate_trace(&config, 0).unwrap();
            assert_eq!(trace.len(), 50);
            assert_eq!(trace.kernel, family.kernel_label());
            assert_eq!(trace.rank, 0);
            assert!(trace.model.is_none());
            // The trace converts into a feasible instance at factor 1.
            let instance = trace.to_instance_scaled(1.0).unwrap();
            assert_eq!(instance.len(), 50);
        }
    }

    #[test]
    fn bandwidth_derives_comm_from_memory_with_bounded_jitter() {
        let mut config = GeneratorConfig::new(WorkloadFamily::TransferBound);
        config.n_tasks = 200;
        config.seed = 13;
        config.bandwidth = Some(1000); // 1000 B/s → mem(B) × 1000 µs
        let trace = generate_trace(&config, 0).unwrap();
        for task in &trace.tasks {
            // lint: allow(L002) test expectation; mem is at most 16 bytes here
            let base = task.mem_bytes * 1_000_000 / 1000;
            let lo = base * (100 - BANDWIDTH_JITTER_PCT) / 100;
            let hi = base * (100 + BANDWIDTH_JITTER_PCT) / 100;
            assert!(
                (lo..=hi).contains(&task.comm_micros),
                "{}: comm {} outside [{lo}, {hi}]",
                task.name,
                task.comm_micros
            );
        }
        // Deterministic, and distinct from the native-comm trace.
        assert_eq!(trace, generate_trace(&config, 0).unwrap());
        let mut native = config;
        native.bandwidth = None;
        assert_ne!(trace, generate_trace(&native, 0).unwrap());
        // Zero bandwidth is a parameter error.
        config.bandwidth = Some(0);
        assert!(matches!(
            generate_trace(&config, 0),
            Err(CoreError::InvalidTrace(_))
        ));
    }

    #[test]
    fn ranks_differ_but_are_reproducible() {
        let config = GeneratorConfig::new(WorkloadFamily::TransferBound);
        let rank0 = generate_trace(&config, 0).unwrap();
        let rank1 = generate_trace(&config, 1).unwrap();
        assert_ne!(rank0.tasks, rank1.tasks, "ranks share a stream");
        assert_eq!(rank0, generate_trace(&config, 0).unwrap());
    }
}
