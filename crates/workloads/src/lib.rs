//! # dts_workloads — the workload corpus beyond HF/CCSD
//!
//! The paper's evaluation rests entirely on HF and CCSD integral-kernel
//! traces, so every claim about the heuristics is implicitly a claim
//! about one workload shape. This crate widens the evidence base with
//! three layers:
//!
//! * [`families`] — seeded, parameterized generators for MD-like traces
//!   (thousands of near-uniform small tasks), dense-LA-like traces (few
//!   tasks, Zipf-skewed computation, memory near capacity) and the
//!   adversarial domains promoted from `dts_core::testgen` (tie-heavy,
//!   memory-cliff, transfer-bound). Same config + rank → byte-identical
//!   trace, always.
//! * [`mod@format`] — the versioned on-disk trace format (`"format":
//!   "dts-trace", "version": 1`) with a strict importer that rejects
//!   every malformed class (unknown versions, float/negative numerics,
//!   duplicate task names, overflowing totals, unknown keys) with a
//!   typed [`dts_core::CoreError::InvalidTrace`] — never a panic.
//! * [`corpus`] — the golden-metric scenario suite: every heuristic ×
//!   every execution model over one fixed scenario per family, compared
//!   against a committed golden file with a two-way ratchet
//!   (`dts corpus --update-golden` is the only sanctioned change path).
//!
//! The `dts` CLI exposes all three: `dts generate <family>`, `dts trace
//! import|export` and `dts corpus`.

pub mod corpus;
pub mod families;
pub mod format;

pub use corpus::{compare, run_corpus, scenarios, CorpusMetrics, CorpusReport, MetricRecord};
pub use families::{generate_trace, GeneratorConfig, WorkloadFamily};
pub use format::{export_trace, import_trace};
