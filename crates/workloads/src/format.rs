//! The versioned on-disk trace format and its strict importer.
//!
//! `dts generate` historically wrote bare [`Trace`] JSON with no version
//! marker, so a file's meaning could silently drift as the schema grew
//! (the optional `model` key already did exactly that). The *versioned*
//! format adds an explicit envelope:
//!
//! ```json
//! {
//!   "format": "dts-trace",
//!   "version": 1,
//!   "kernel": "MD",
//!   "rank": 0,
//!   "model": "streams:4",
//!   "tasks": [
//!     { "name": "md(0)", "kind": "Contraction",
//!       "comm_micros": 104, "comp_micros": 52, "mem_bytes": 4301 }
//!   ]
//! }
//! ```
//!
//! * `format` must be the literal `"dts-trace"` and `version` the integer
//!   `1`; anything else — including a future version this build does not
//!   know — is rejected, never half-read.
//! * `model` is optional and uses the CLI spec syntax of
//!   [`ExecutionModel::parse`] (`explicit`, `duplex`, `streams:<k>`,
//!   `implicit[:<efficiency>]`).
//! * `cost_model` is optional and embeds a full `dts-cost-model` file (or
//!   the literal string `"analytic"`, which normalizes to absence); the
//!   embedded model goes through the cost-model format's own strict
//!   validation, surfacing as [`CoreError::InvalidCostModel`].
//! * Every numeric field must be a non-negative JSON integer: floats
//!   (including `1e30`-style notation), negative values and non-numeric
//!   types are each rejected with a message naming the offending path.
//! * Task names are the task identity, so they must be non-empty and
//!   unique; the totals of `comm_micros + comp_micros` and of `mem_bytes`
//!   must fit `u64`, because the simulators' tick/byte arithmetic does.
//! * Unknown keys are rejected at every level, so a typo'd field fails
//!   loudly instead of being ignored.
//!
//! Import and export share one semantic validator: every file
//! [`export_trace`] writes is accepted by [`import_trace`], and the
//! round-trip is byte-identical (the CLI round-trip tests pin this).
//! Malformed data always surfaces as [`CoreError::InvalidTrace`] (or
//! [`CoreError::Serialization`] for broken JSON syntax / I/O) — never as
//! a panic.

use crate::families::MAX_TASKS;
use dts_chem::trace::TaskKind;
use dts_chem::{Trace, TraceTask};
use dts_core::perfmodel;
use dts_core::prelude::*;
use serde::Value;
use std::collections::HashSet;
use std::path::Path;

/// The literal `format` marker of versioned trace files.
pub const FORMAT_NAME: &str = "dts-trace";
/// The only format version this build reads and writes.
pub const FORMAT_VERSION: u64 = 1;

fn invalid(msg: impl Into<String>) -> CoreError {
    CoreError::InvalidTrace(msg.into())
}

/// Semantic checks shared by import and export: whatever passes here can
/// be simulated, and whatever [`export_trace`] emits re-imports.
fn validate_semantics(trace: &Trace) -> Result<()> {
    if trace.kernel.is_empty() {
        return Err(invalid("kernel must be a non-empty string"));
    }
    if trace.tasks.len() > MAX_TASKS {
        return Err(invalid(format!(
            "{} tasks, but traces are capped at {MAX_TASKS}",
            trace.tasks.len()
        )));
    }
    let mut seen = HashSet::with_capacity(trace.tasks.len());
    let mut total_mem: u64 = 0;
    for (i, task) in trace.tasks.iter().enumerate() {
        if task.name.is_empty() {
            return Err(invalid(format!("tasks[{i}].name must be non-empty")));
        }
        if !seen.insert(task.name.as_str()) {
            return Err(invalid(format!(
                "duplicate task name `{}` (tasks[{i}]); task names are the task identity",
                task.name
            )));
        }
        total_mem = total_mem.checked_add(task.mem_bytes).ok_or_else(|| {
            invalid(format!(
                "total mem_bytes overflows u64 at tasks[{i}] (`{}`)",
                task.name
            ))
        })?;
    }
    trace.check_time_totals()?;
    if let Some(model) = trace.model {
        model.validate()?;
    }
    if let Some(cost_model) = &trace.cost_model {
        cost_model.validate()?;
        if cost_model.is_analytic() {
            return Err(CoreError::InvalidCostModel(
                "an explicit analytic spec must be normalized to absence before export".into(),
            ));
        }
    }
    Ok(())
}

/// Serializes a trace in the versioned format (pretty JSON).
///
/// # Errors
///
/// [`CoreError::InvalidTrace`] when the trace itself violates the format
/// contract (empty kernel, duplicate task names, overflowing totals), so
/// an unexportable trace is caught before it reaches disk.
pub fn export_trace(trace: &Trace) -> Result<String> {
    validate_semantics(trace)?;
    let mut fields = vec![
        ("format".to_string(), Value::Str(FORMAT_NAME.to_string())),
        ("version".to_string(), Value::UInt(FORMAT_VERSION)),
        ("kernel".to_string(), Value::Str(trace.kernel.clone())),
        ("rank".to_string(), Value::UInt(trace.rank as u64)),
    ];
    if let Some(model) = trace.model {
        fields.push(("model".to_string(), Value::Str(model.to_string())));
    }
    if let Some(cost_model) = &trace.cost_model {
        fields.push((
            "cost_model".to_string(),
            perfmodel::model_value(cost_model)?,
        ));
    }
    let tasks = trace
        .tasks
        .iter()
        .map(|t| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(t.name.clone())),
                (
                    "kind".to_string(),
                    Value::Str(kind_name(t.kind).to_string()),
                ),
                ("comm_micros".to_string(), Value::UInt(t.comm_micros)),
                ("comp_micros".to_string(), Value::UInt(t.comp_micros)),
                ("mem_bytes".to_string(), Value::UInt(t.mem_bytes)),
            ])
        })
        .collect();
    fields.push(("tasks".to_string(), Value::Array(tasks)));
    serde_json::to_string_pretty(&Value::Object(fields))
        .map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Parses and strictly validates a versioned trace file.
///
/// # Errors
///
/// [`CoreError::Serialization`] for broken JSON syntax,
/// [`CoreError::InvalidTrace`] for every semantic violation (see the
/// module docs for the complete list), and
/// [`CoreError::InvalidExecutionModel`] for a malformed `model` spec.
pub fn import_trace(json: &str) -> Result<Trace> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| CoreError::Serialization(e.to_string()))?;
    let fields = expect_object(&value, "trace file")?;
    check_keys(
        fields,
        &[
            "format",
            "version",
            "kernel",
            "rank",
            "model",
            "cost_model",
            "tasks",
        ],
        "trace file",
    )?;

    match require(fields, "format")? {
        Value::Str(s) if s == FORMAT_NAME => {}
        Value::Str(s) => {
            return Err(invalid(format!(
                "format is `{s}`, expected `{FORMAT_NAME}` (is this a versioned trace file?)"
            )))
        }
        other => {
            return Err(invalid(format!(
                "format must be a string, got {}",
                other.kind()
            )))
        }
    }
    let version = uint_field(fields, "version", "version")?;
    if version != FORMAT_VERSION {
        return Err(invalid(format!(
            "unsupported format version {version}; this build reads version {FORMAT_VERSION} only"
        )));
    }

    let kernel = match require(fields, "kernel")? {
        Value::Str(s) if !s.is_empty() => s.clone(),
        Value::Str(_) => return Err(invalid("kernel must be a non-empty string")),
        other => {
            return Err(invalid(format!(
                "kernel must be a string, got {}",
                other.kind()
            )))
        }
    };
    let rank = uint_field(fields, "rank", "rank")?;
    let rank = usize::try_from(rank)
        .map_err(|_| invalid(format!("rank {rank} does not fit this platform's usize")))?;

    let model = match lookup(fields, "model") {
        None => None,
        Some(Value::Str(spec)) => {
            let model = ExecutionModel::parse(spec)?;
            model.validate()?;
            Some(model)
        }
        Some(other) => {
            return Err(invalid(format!(
                "model must be a spec string like \"streams:4\", got {}",
                other.kind()
            )))
        }
    };

    let cost_model = match lookup(fields, "cost_model") {
        None => None,
        Some(Value::Str(s)) if s == "analytic" => None,
        Some(value) => {
            let spec = perfmodel::model_from_value(value)?;
            spec.validate()?;
            Some(spec)
        }
    };

    let tasks = match require(fields, "tasks")? {
        Value::Array(items) => items,
        other => {
            return Err(invalid(format!(
                "tasks must be an array, got {}",
                other.kind()
            )))
        }
    };
    if tasks.len() > MAX_TASKS {
        return Err(invalid(format!(
            "{} tasks, but traces are capped at {MAX_TASKS}",
            tasks.len()
        )));
    }
    let tasks = tasks
        .iter()
        .enumerate()
        .map(|(i, item)| import_task(item, i))
        .collect::<Result<Vec<_>>>()?;

    let trace = Trace {
        kernel,
        rank,
        tasks,
        model,
        cost_model,
    };
    validate_semantics(&trace)?;
    Ok(trace)
}

fn import_task(value: &Value, i: usize) -> Result<TraceTask> {
    let at = format!("tasks[{i}]");
    let fields = expect_object(value, &at)?;
    check_keys(
        fields,
        &["name", "kind", "comm_micros", "comp_micros", "mem_bytes"],
        &at,
    )?;
    let name = match require_at(fields, "name", &at)? {
        Value::Str(s) if !s.is_empty() => s.clone(),
        Value::Str(_) => return Err(invalid(format!("{at}.name must be non-empty"))),
        other => {
            return Err(invalid(format!(
                "{at}.name must be a string, got {}",
                other.kind()
            )))
        }
    };
    let kind = match require_at(fields, "kind", &at)? {
        Value::Str(s) => kind_from_name(s).ok_or_else(|| {
            invalid(format!(
                "{at}.kind is `{s}`; expected one of {}",
                KIND_NAMES.join(", ")
            ))
        })?,
        other => {
            return Err(invalid(format!(
                "{at}.kind must be a string, got {}",
                other.kind()
            )))
        }
    };
    Ok(TraceTask {
        name,
        kind,
        comm_micros: uint_field(fields, "comm_micros", &at)?,
        comp_micros: uint_field(fields, "comp_micros", &at)?,
        mem_bytes: uint_field(fields, "mem_bytes", &at)?,
    })
}

/// The `kind` strings of the format, matching the derived [`TaskKind`]
/// serialization so legacy and versioned files agree on spelling.
pub const KIND_NAMES: [&str; 3] = ["Contraction", "Transpose", "FusedTransposeContraction"];

fn kind_name(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::Contraction => KIND_NAMES[0],
        TaskKind::Transpose => KIND_NAMES[1],
        TaskKind::FusedTransposeContraction => KIND_NAMES[2],
    }
}

fn kind_from_name(name: &str) -> Option<TaskKind> {
    match name {
        "Contraction" => Some(TaskKind::Contraction),
        "Transpose" => Some(TaskKind::Transpose),
        "FusedTransposeContraction" => Some(TaskKind::FusedTransposeContraction),
        _ => None,
    }
}

fn expect_object<'v>(value: &'v Value, at: &str) -> Result<&'v [(String, Value)]> {
    match value {
        Value::Object(fields) => Ok(fields),
        other => Err(invalid(format!(
            "{at} must be an object, got {}",
            other.kind()
        ))),
    }
}

fn lookup<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require<'v>(fields: &'v [(String, Value)], key: &str) -> Result<&'v Value> {
    require_at(fields, key, "trace file")
}

fn require_at<'v>(fields: &'v [(String, Value)], key: &str, at: &str) -> Result<&'v Value> {
    lookup(fields, key).ok_or_else(|| invalid(format!("{at} is missing required key `{key}`")))
}

fn check_keys(fields: &[(String, Value)], allowed: &[&str], at: &str) -> Result<()> {
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(invalid(format!(
                "{at} has unknown key `{key}`; allowed keys are {}",
                allowed.join(", ")
            )));
        }
    }
    let mut seen = HashSet::with_capacity(fields.len());
    for (key, _) in fields {
        if !seen.insert(key.as_str()) {
            return Err(invalid(format!("{at} repeats key `{key}`")));
        }
    }
    Ok(())
}

/// Reads a required non-negative integer, classifying each wrong shape:
/// floats (the JSON parser yields [`Value::Float`] for `1.5`, `NaN`-less
/// `1e30` etc.), negative integers, and non-numbers all get their own
/// message naming the path.
fn uint_field(fields: &[(String, Value)], key: &str, at: &str) -> Result<u64> {
    let path = if at == key {
        key.to_string()
    } else {
        format!("{at}.{key}")
    };
    match require_at(fields, key, at)? {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) => Err(invalid(format!("{path} is negative ({n})"))),
        Value::Float(x) => Err(invalid(format!(
            "{path} must be a non-negative integer, got non-integer number {x}"
        ))),
        other => Err(invalid(format!(
            "{path} must be a non-negative integer, got {}",
            other.kind()
        ))),
    }
}

/// Writes a trace to `path` in the versioned format.
pub fn export_file(trace: &Trace, path: impl AsRef<Path>) -> Result<()> {
    let json = export_trace(trace)?;
    std::fs::write(path, json).map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Reads and strictly validates a versioned trace file.
pub fn import_file(path: impl AsRef<Path>) -> Result<Trace> {
    let json =
        std::fs::read_to_string(path).map_err(|e| CoreError::Serialization(e.to_string()))?;
    import_trace(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{generate_trace, GeneratorConfig, WorkloadFamily};

    fn sample() -> Trace {
        let mut config = GeneratorConfig::new(WorkloadFamily::MdLike);
        config.n_tasks = 4;
        config.seed = 11;
        generate_trace(&config, 2).unwrap()
    }

    #[test]
    fn export_import_round_trips_byte_identically() {
        let mut trace = sample();
        for model in [None, Some(ExecutionModel::Streams { k: 4 })] {
            trace.model = model;
            let json = export_trace(&trace).unwrap();
            let back = import_trace(&json).unwrap();
            assert_eq!(back, trace);
            assert_eq!(
                export_trace(&back).unwrap(),
                json,
                "re-export changed bytes"
            );
        }
    }

    #[test]
    fn embedded_cost_models_round_trip_and_validate() {
        use dts_core::perfmodel::{CostModelSpec, LinearFit, RegressionModel, PS_PER_MICRO};
        use dts_core::{ComputeBackend, LinkClass};

        let mut trace = sample();
        trace.cost_model = Some(CostModelSpec::Regression(
            RegressionModel::new(
                vec![(
                    LinkClass::HostToDevice,
                    LinearFit {
                        alpha_us: 3,
                        beta_ps_per_byte: PS_PER_MICRO,
                        samples: 4,
                    },
                )],
                vec![(
                    ComputeBackend::Cpu,
                    LinearFit {
                        alpha_us: 9,
                        beta_ps_per_byte: 0,
                        samples: 4,
                    },
                )],
            )
            .unwrap(),
        ));
        let json = export_trace(&trace).unwrap();
        let back = import_trace(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(
            export_trace(&back).unwrap(),
            json,
            "re-export changed bytes"
        );

        // The literal string "analytic" normalizes to absence.
        let mut plain_trace = sample();
        plain_trace.model = None;
        let plain_json = export_trace(&plain_trace).unwrap().replacen(
            "\"tasks\"",
            "\"cost_model\": \"analytic\",\n  \"tasks\"",
            1,
        );
        let plain = import_trace(&plain_json).unwrap();
        assert_eq!(plain.cost_model, None);

        // A malformed embedded model is a typed InvalidCostModel. The outer
        // version stays 1; only the embedded model's version is corrupted
        // (the embedded object is the second `"version"` occurrence).
        let idx = json.rfind("\"version\": 1").unwrap();
        let mut broken = json.clone();
        broken.replace_range(idx.."\"version\": 1".len() + idx, "\"version\": 7");
        assert!(matches!(
            import_trace(&broken),
            Err(CoreError::InvalidCostModel(_))
        ));
    }

    #[test]
    fn syntax_errors_are_serialization_semantic_errors_invalid_trace() {
        assert!(matches!(
            import_trace("{ not json"),
            Err(CoreError::Serialization(_))
        ));
        assert!(matches!(
            import_trace("[1, 2]"),
            Err(CoreError::InvalidTrace(_))
        ));
    }

    fn reject(json: &str, needle: &str) {
        match import_trace(json) {
            Err(CoreError::InvalidTrace(msg)) => assert!(
                msg.contains(needle),
                "message `{msg}` does not mention `{needle}`"
            ),
            other => panic!("expected InvalidTrace mentioning `{needle}`, got {other:?}"),
        }
    }

    fn valid_with_tasks(tasks_json: &str) -> String {
        format!(
            r#"{{"format": "dts-trace", "version": 1, "kernel": "MD", "rank": 0, "tasks": {tasks_json}}}"#
        )
    }

    fn task(name: &str, comm: &str, comp: &str, mem: &str) -> String {
        format!(
            r#"{{"name": "{name}", "kind": "Contraction", "comm_micros": {comm}, "comp_micros": {comp}, "mem_bytes": {mem}}}"#
        )
    }

    #[test]
    fn every_malformed_class_is_rejected_with_a_typed_error() {
        // Envelope violations.
        reject(
            r#"{"version": 1, "kernel": "MD", "rank": 0, "tasks": []}"#,
            "format",
        );
        reject(
            &valid_with_tasks("[]").replace("dts-trace", "dts-schedule"),
            "dts-trace",
        );
        reject(
            &valid_with_tasks("[]").replace("\"version\": 1", "\"version\": 2"),
            "unsupported format version 2",
        );
        reject(
            &valid_with_tasks("[]").replace("\"version\": 1", "\"version\": 1.0"),
            "non-integer",
        );
        reject(
            &valid_with_tasks("[]").replace("\"rank\": 0", "\"rank\": -1"),
            "negative",
        );
        reject(
            &valid_with_tasks("[]").replace("\"kernel\": \"MD\"", "\"kernel\": \"\""),
            "kernel",
        );
        reject(
            &valid_with_tasks("[]").replace("\"rank\": 0", "\"rank\": 0, \"extra\": 1"),
            "unknown key `extra`",
        );
        // Task-field violations.
        reject(
            &valid_with_tasks(&format!("[{}]", task("t", "1.5", "1", "1"))),
            "comm_micros",
        );
        reject(
            &valid_with_tasks(&format!("[{}]", task("t", "1", "-3", "1"))),
            "negative",
        );
        reject(
            &valid_with_tasks(&format!("[{}]", task("t", "1", "1", "1e30"))),
            "non-integer",
        );
        reject(
            &valid_with_tasks(&format!("[{}]", task("", "1", "1", "1"))),
            "name",
        );
        reject(
            &valid_with_tasks(&format!(
                "[{}, {}]",
                task("dup", "1", "1", "1"),
                task("dup", "2", "2", "2")
            )),
            "duplicate task name `dup`",
        );
        reject(
            &valid_with_tasks(&format!(
                "[{}]",
                task("t", "1", "1", "1").replace("Contraction", "Convolution")
            )),
            "Convolution",
        );
        // Overflowing totals.
        let half = format!("{}", u64::MAX / 2 + 1);
        reject(
            &valid_with_tasks(&format!("[{}]", task("t", &half, &half, "1"))),
            "overflows",
        );
        reject(
            &valid_with_tasks(&format!(
                "[{}, {}]",
                task("a", "1", "1", &half),
                task("b", "1", "1", &half)
            )),
            "mem_bytes overflows",
        );
        // Malformed model spec surfaces through ExecutionModel::parse.
        let with_model =
            valid_with_tasks("[]").replace("\"rank\": 0", "\"rank\": 0, \"model\": \"streams:0\"");
        assert!(matches!(
            import_trace(&with_model),
            Err(CoreError::InvalidExecutionModel(_))
        ));
    }

    #[test]
    fn export_refuses_semantically_broken_traces() {
        let mut trace = sample();
        let first = trace.tasks[0].name.clone();
        trace.tasks[1].name = first;
        assert!(matches!(
            export_trace(&trace),
            Err(CoreError::InvalidTrace(_))
        ));
        let mut trace = sample();
        trace.kernel.clear();
        assert!(matches!(
            export_trace(&trace),
            Err(CoreError::InvalidTrace(_))
        ));
    }

    #[test]
    fn file_round_trip_and_missing_files() {
        let dir = std::env::temp_dir().join("dts-workloads-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.dts.json");
        let trace = sample();
        export_file(&trace, &path).unwrap();
        assert_eq!(import_file(&path).unwrap(), trace);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            import_file(dir.join("missing.json")),
            Err(CoreError::Serialization(_))
        ));
    }
}
