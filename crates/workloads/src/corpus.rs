//! The scenario corpus and its golden-metric suite.
//!
//! One fixed, seeded scenario per [`WorkloadFamily`] is run through
//! *every* heuristic under *every* execution model, and four metrics of
//! each schedule are compared against a committed golden file
//! (`crates/workloads/golden/corpus.json`):
//!
//! * `makespan_us` — completion time of the last computation,
//! * `cpu_idle_us` — induced CPU idle time (the paper's cost of a bad
//!   transfer order),
//! * `peak_mem_bytes` — peak of the memory profile,
//! * `reordered_tasks` — how many positions of the transfer order differ
//!   from plain submission order (0 for OS by construction), a cheap
//!   fingerprint of the *decisions* a heuristic made.
//!
//! The golden file is a **two-way ratchet**, like the lint baseline: a
//! metric that drifts fails the suite, an entry that disappears fails the
//! suite, and a new scenario/heuristic/model combination that has no
//! golden entry also fails the suite. The only sanctioned way to change
//! it is `dts corpus --update-golden` (or `UPDATE_CORPUS_GOLDEN=1` for
//! the test harness), which rewrites the file from the current build —
//! and puts the diff in front of a reviewer.

use crate::families::{generate_trace, GeneratorConfig, WorkloadFamily};
use dts_core::memory::MemoryProfile;
use dts_core::prelude::*;
use dts_heuristics::{run_heuristic_with, Heuristic};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Format version of the golden file.
pub const GOLDEN_VERSION: u64 = 1;

/// The execution models every corpus scenario is run under: the paper's
/// explicit half-duplex link, the full-duplex refinement, a 4-stream
/// channel, and fully-efficient implicit overlap.
pub const CORPUS_MODELS: [ExecutionModel; 4] = [
    ExecutionModel::Explicit,
    ExecutionModel::Duplex,
    ExecutionModel::Streams { k: 4 },
    ExecutionModel::IMPLICIT_FULL,
];

/// One fixed corpus scenario: a seeded generator invocation plus the
/// capacity factor its instances are built with.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Generator configuration (family, size, seed, skew).
    pub config: GeneratorConfig,
    /// Capacity factor over the minimum capacity `mc`, as in the paper's
    /// Figs. 9–13 sweeps.
    pub capacity_factor: f64,
}

impl Scenario {
    /// Key prefix of the scenario in the golden file (`<family>`).
    pub fn name(&self) -> &'static str {
        self.config.family.name()
    }

    /// Builds the scenario's instance (rank 0 of the seeded suite).
    pub fn instance(&self) -> Result<Instance> {
        generate_trace(&self.config, 0)?.to_instance_scaled(self.capacity_factor)
    }
}

/// The fixed scenario list: one per family, sized to exercise the shape
/// the family exists for. Memory pressure runs from essentially none
/// (MD at 24·mc) to a hard cliff (factor 1.0 = capacity exactly the
/// largest task).
pub fn scenarios() -> Vec<Scenario> {
    let scenario = |family: WorkloadFamily, n_tasks, seed, skew, capacity_factor| Scenario {
        config: GeneratorConfig {
            family,
            n_tasks,
            seed,
            skew,
            bandwidth: None,
        },
        capacity_factor,
    };
    vec![
        scenario(WorkloadFamily::MdLike, 1500, 42, None, 24.0),
        scenario(WorkloadFamily::DenseLa, 32, 42, Some(1.2), 1.25),
        scenario(WorkloadFamily::TieHeavy, 400, 42, None, 2.0),
        scenario(WorkloadFamily::MemoryCliff, 256, 42, None, 1.0),
        scenario(WorkloadFamily::TransferBound, 400, 42, None, 1.5),
    ]
}

/// The golden metrics of one (scenario, heuristic, model) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricRecord {
    /// Completion time of the last computation, µs.
    pub makespan_us: u64,
    /// Induced CPU idle time, µs.
    pub cpu_idle_us: u64,
    /// Peak of the memory profile, bytes.
    pub peak_mem_bytes: u64,
    /// Positions where the transfer order differs from submission order.
    pub reordered_tasks: u64,
}

impl MetricRecord {
    /// Measures a schedule.
    pub fn of(instance: &Instance, schedule: &Schedule) -> MetricRecord {
        let metrics = ScheduleMetrics::of(instance, schedule);
        let peak = MemoryProfile::of_schedule(instance, schedule).peak();
        let mut order: Vec<_> = schedule
            .entries()
            .iter()
            .map(|e| (e.comm_start, e.task))
            .collect();
        order.sort();
        let reordered = order
            .iter()
            .enumerate()
            .filter(|(i, (_, task))| task.0 != *i)
            .count() as u64;
        MetricRecord {
            makespan_us: metrics.makespan.ticks(),
            cpu_idle_us: metrics.comp_idle.ticks(),
            peak_mem_bytes: peak.bytes(),
            reordered_tasks: reordered,
        }
    }
}

/// The full corpus result: `"family/heuristic/model"` → metrics, ordered
/// (BTreeMap) so the rendered golden file is deterministic.
pub type CorpusMetrics = BTreeMap<String, MetricRecord>;

/// Runs every scenario through every heuristic under every model.
pub fn run_corpus() -> Result<CorpusMetrics> {
    run_corpus_with(None)
}

/// [`run_corpus`] with an optional cost model materialized into every
/// scenario instance first. `None` (and an explicit analytic spec) is the
/// golden configuration; a fitted model yields a what-if view of the same
/// suite under re-predicted durations, which the CLI prints without
/// touching the golden ratchet.
pub fn run_corpus_with(cost_model: Option<&CostModelSpec>) -> Result<CorpusMetrics> {
    let mut out = BTreeMap::new();
    for scenario in scenarios() {
        let instance = match cost_model {
            Some(spec) => scenario.instance()?.with_cost_model(spec)?,
            None => scenario.instance()?,
        };
        for heuristic in Heuristic::ALL {
            for model in CORPUS_MODELS {
                let schedule = run_heuristic_with(&instance, heuristic, model)?;
                let key = format!("{}/{}/{}", scenario.name(), heuristic, model);
                out.insert(key, MetricRecord::of(&instance, &schedule));
            }
        }
    }
    Ok(out)
}

/// Renders corpus metrics as the golden-file JSON (stable key order,
/// one line per entry so diffs are reviewable).
pub fn render_golden(metrics: &CorpusMetrics) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {GOLDEN_VERSION},");
    out.push_str("  \"entries\": {\n");
    let last = metrics.len().saturating_sub(1);
    for (i, (key, record)) in metrics.iter().enumerate() {
        let _ = write!(
            out,
            "    \"{key}\": {{ \"makespan_us\": {}, \"cpu_idle_us\": {}, \"peak_mem_bytes\": {}, \"reordered_tasks\": {} }}",
            record.makespan_us, record.cpu_idle_us, record.peak_mem_bytes, record.reordered_tasks
        );
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn invalid(msg: impl Into<String>) -> CoreError {
    CoreError::InvalidTrace(msg.into())
}

fn uint(value: &Value, path: &str) -> Result<u64> {
    match value {
        Value::UInt(n) => Ok(*n),
        other => Err(invalid(format!(
            "golden {path} must be a non-negative integer, got {}",
            other.kind()
        ))),
    }
}

/// Parses a golden file back into corpus metrics (strict: unknown
/// versions and malformed entries are rejected, mirroring the trace
/// importer's discipline).
pub fn parse_golden(json: &str) -> Result<CorpusMetrics> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| CoreError::Serialization(e.to_string()))?;
    let version = uint(
        value.field("version").map_err(|e| invalid(e.to_string()))?,
        "version",
    )?;
    if version != GOLDEN_VERSION {
        return Err(invalid(format!(
            "unsupported golden version {version}; this build reads version {GOLDEN_VERSION} only"
        )));
    }
    let entries = match value.field("entries").map_err(|e| invalid(e.to_string()))? {
        Value::Object(fields) => fields,
        other => {
            return Err(invalid(format!(
                "golden entries must be an object, got {}",
                other.kind()
            )))
        }
    };
    let mut out = BTreeMap::new();
    for (key, entry) in entries {
        let record = MetricRecord {
            makespan_us: uint(
                entry
                    .field("makespan_us")
                    .map_err(|e| invalid(e.to_string()))?,
                key,
            )?,
            cpu_idle_us: uint(
                entry
                    .field("cpu_idle_us")
                    .map_err(|e| invalid(e.to_string()))?,
                key,
            )?,
            peak_mem_bytes: uint(
                entry
                    .field("peak_mem_bytes")
                    .map_err(|e| invalid(e.to_string()))?,
                key,
            )?,
            reordered_tasks: uint(
                entry
                    .field("reordered_tasks")
                    .map_err(|e| invalid(e.to_string()))?,
                key,
            )?,
        };
        if out.insert(key.clone(), record).is_some() {
            return Err(invalid(format!("golden file repeats entry `{key}`")));
        }
    }
    Ok(out)
}

/// The outcome of comparing a fresh corpus run against the golden file.
#[derive(Debug, Default)]
pub struct CorpusReport {
    /// Entries whose metrics changed: `(key, golden, current)`.
    pub drifted: Vec<(String, MetricRecord, MetricRecord)>,
    /// Entries the golden file has but the current build did not produce
    /// (a scenario/heuristic/model silently disappeared).
    pub vanished: Vec<String>,
    /// Entries the current build produced with no golden counterpart (new
    /// coverage that has not been sanctioned yet).
    pub unsanctioned: Vec<String>,
}

impl CorpusReport {
    /// `true` iff the run matches the golden file exactly.
    pub fn is_clean(&self) -> bool {
        self.drifted.is_empty() && self.vanished.is_empty() && self.unsanctioned.is_empty()
    }

    /// Human-readable failure report; empty string when clean. Always
    /// names `--update-golden` as the sanctioned fix, in both ratchet
    /// directions.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return String::new();
        }
        let mut out = String::new();
        for (key, golden, current) in &self.drifted {
            let _ = writeln!(
                out,
                "metric drift at {key}: golden {golden:?}, current {current:?}"
            );
        }
        for key in &self.vanished {
            let _ = writeln!(
                out,
                "golden entry {key} vanished from the corpus run (coverage shrank)"
            );
        }
        for key in &self.unsanctioned {
            let _ = writeln!(
                out,
                "corpus entry {key} has no golden counterpart (coverage grew)"
            );
        }
        out.push_str(
            "if every change above is intended, re-bless the file with \
             `dts corpus --update-golden` and commit the diff\n",
        );
        out
    }
}

/// Compares a corpus run against golden metrics (two-way ratchet).
pub fn compare(current: &CorpusMetrics, golden: &CorpusMetrics) -> CorpusReport {
    let mut report = CorpusReport::default();
    for (key, record) in current {
        match golden.get(key) {
            None => report.unsanctioned.push(key.clone()),
            Some(g) if g != record => report.drifted.push((key.clone(), *g, *record)),
            Some(_) => {}
        }
    }
    for key in golden.keys() {
        if !current.contains_key(key) {
            report.vanished.push(key.clone());
        }
    }
    report
}

/// The committed golden file of this workspace checkout.
pub fn default_golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/corpus.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> CorpusMetrics {
        let mut metrics = BTreeMap::new();
        metrics.insert(
            "md/OS/explicit".to_string(),
            MetricRecord {
                makespan_us: 100,
                cpu_idle_us: 10,
                peak_mem_bytes: 4096,
                reordered_tasks: 0,
            },
        );
        metrics.insert(
            "md/GG/duplex".to_string(),
            MetricRecord {
                makespan_us: 90,
                cpu_idle_us: 5,
                peak_mem_bytes: 8192,
                reordered_tasks: 7,
            },
        );
        metrics
    }

    #[test]
    fn golden_render_parse_round_trips() {
        let metrics = sample_metrics();
        let rendered = render_golden(&metrics);
        assert_eq!(parse_golden(&rendered).unwrap(), metrics);
        // Rendering is deterministic.
        assert_eq!(render_golden(&metrics), rendered);
    }

    #[test]
    fn golden_parser_rejects_malformed_files() {
        assert!(matches!(
            parse_golden("nope"),
            Err(CoreError::Serialization(_))
        ));
        assert!(matches!(
            parse_golden("{\"version\": 99, \"entries\": {}}"),
            Err(CoreError::InvalidTrace(_))
        ));
        assert!(matches!(
            parse_golden("{\"version\": 1, \"entries\": {\"k\": {\"makespan_us\": -1, \"cpu_idle_us\": 0, \"peak_mem_bytes\": 0, \"reordered_tasks\": 0}}}"),
            Err(CoreError::InvalidTrace(_))
        ));
    }

    #[test]
    fn compare_ratchets_both_ways() {
        let golden = sample_metrics();
        let mut current = sample_metrics();
        assert!(compare(&current, &golden).is_clean());

        // Drift.
        current.get_mut("md/OS/explicit").unwrap().makespan_us += 1;
        let report = compare(&current, &golden);
        assert_eq!(report.drifted.len(), 1);
        assert!(report.render().contains("--update-golden"));

        // Vanished coverage fails...
        let mut shrunk = sample_metrics();
        shrunk.remove("md/GG/duplex");
        let report = compare(&shrunk, &golden);
        assert_eq!(report.vanished, vec!["md/GG/duplex".to_string()]);
        assert!(!report.is_clean());

        // ...and so does unsanctioned growth.
        let report = compare(&golden, &shrunk);
        assert_eq!(report.unsanctioned, vec!["md/GG/duplex".to_string()]);
        assert!(!report.is_clean());
    }

    #[test]
    fn scenario_list_covers_every_family_exactly_once() {
        let list = scenarios();
        assert_eq!(list.len(), WorkloadFamily::ALL.len());
        for (scenario, family) in list.iter().zip(WorkloadFamily::ALL) {
            assert_eq!(scenario.config.family, family);
            assert!(scenario.config.validate().is_ok());
            assert!(scenario.capacity_factor >= 1.0);
        }
    }

    #[test]
    fn reordered_tasks_is_zero_for_submission_order() {
        let instance = scenarios()[2].instance().unwrap();
        let schedule =
            run_heuristic_with(&instance, Heuristic::OS, ExecutionModel::Explicit).unwrap();
        assert_eq!(MetricRecord::of(&instance, &schedule).reordered_tasks, 0);
    }
}
