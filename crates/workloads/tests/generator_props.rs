//! Generator-invariant properties of the workload families.
//!
//! Three claims hold for *every* family at *every* seed and size:
//!
//! 1. **Feasible** — the generated trace converts into an instance at
//!    capacity factor 1.0 (no task exceeds the minimum capacity, no
//!    total overflows the clock).
//! 2. **Deterministic** — the same `(config, rank)` produces a
//!    byte-identical trace, so golden corpus metrics are reproducible.
//! 3. **Declared shape** — each family actually has the shape its
//!    documentation claims: the MD spread bounds, the dense-LA skew
//!    ratio, the tie-heavy duplicate-communication fraction, the
//!    transfer-bound communication dominance.

use dts_workloads::families::{
    generate_trace, GeneratorConfig, WorkloadFamily, DEFAULT_DENSE_LA_SKEW, DENSE_LA_MEM_MAX,
    MD_BOUNDS,
};
use microcheck::{gens, prop_assert, prop_assert_eq, property};

/// A drawn `(family index, n_tasks, seed, rank)` quadruple.
fn config_gen() -> (
    gens::IntRange<usize>,
    gens::IntRange<usize>,
    gens::IntRange<u64>,
    gens::IntRange<usize>,
) {
    (
        gens::usize_in(0..=WorkloadFamily::ALL.len() - 1),
        gens::usize_in(1..=200),
        gens::u64_in(0..=u64::MAX),
        gens::usize_in(0..=8),
    )
}

fn config_of(family_idx: usize, n_tasks: usize, seed: u64) -> GeneratorConfig {
    let mut config = GeneratorConfig::new(WorkloadFamily::ALL[family_idx]);
    config.n_tasks = n_tasks;
    config.seed = seed;
    config
}

property! {
    /// Every generated trace is memory-feasible at factor 1.0 (capacity =
    /// the largest task) and simulable (no overflowing totals).
    fn generated_traces_are_feasible((family_idx, n_tasks, seed, rank) in config_gen()) {
        let config = config_of(family_idx, n_tasks, seed);
        let trace = generate_trace(&config, rank).map_err(|e| e.to_string())?;
        prop_assert_eq!(trace.len(), n_tasks);
        let instance = trace.to_instance_scaled(1.0).map_err(|e| {
            format!("family {} infeasible at factor 1.0: {e}", config.family)
        })?;
        prop_assert_eq!(instance.len(), n_tasks);
    }

    /// Same config + rank → byte-identical trace (generation is a pure
    /// function of the seed).
    fn generation_is_seeded_deterministic((family_idx, n_tasks, seed, rank) in config_gen()) {
        let config = config_of(family_idx, n_tasks, seed);
        let a = generate_trace(&config, rank).map_err(|e| e.to_string())?;
        let b = generate_trace(&config, rank).map_err(|e| e.to_string())?;
        prop_assert_eq!(&a, &b);
        let json_a = a.to_json().map_err(|e| e.to_string())?;
        let json_b = b.to_json().map_err(|e| e.to_string())?;
        prop_assert_eq!(json_a, json_b, "serialized traces differ");
    }

    /// The MD-like family keeps its declared narrow spread: every field
    /// inside its documented bounds, max/min comm <= 1.25 and max/min
    /// comp <= 1.5.
    fn md_like_traces_have_a_narrow_spread((n_tasks, seed, rank) in (
        gens::usize_in(2..=500),
        gens::u64_in(0..=u64::MAX),
        gens::usize_in(0..=8),
    )) {
        let mut config = GeneratorConfig::new(WorkloadFamily::MdLike);
        config.n_tasks = n_tasks;
        config.seed = seed;
        let trace = generate_trace(&config, rank).map_err(|e| e.to_string())?;
        let (comm_lo, comm_hi, comp_lo, comp_hi, mem_lo, mem_hi) = MD_BOUNDS;
        for task in &trace.tasks {
            prop_assert!(
                (comm_lo..=comm_hi).contains(&task.comm_micros)
                    && (comp_lo..=comp_hi).contains(&task.comp_micros)
                    && (mem_lo..=mem_hi).contains(&task.mem_bytes),
                "task {task:?} outside the MD bounds"
            );
        }
        let comm_max = trace.tasks.iter().map(|t| t.comm_micros).max().unwrap_or(0);
        let comm_min = trace.tasks.iter().map(|t| t.comm_micros).min().unwrap_or(1);
        let comp_max = trace.tasks.iter().map(|t| t.comp_micros).max().unwrap_or(0);
        let comp_min = trace.tasks.iter().map(|t| t.comp_micros).min().unwrap_or(1);
        prop_assert!(
            comm_max as f64 / comm_min as f64 <= 1.25,
            "comm spread {comm_min}..{comm_max} wider than 1.25x"
        );
        prop_assert!(
            comp_max as f64 / comp_min as f64 <= 1.5,
            "comp spread {comp_min}..{comp_max} wider than 1.5x"
        );
    }

    /// The dense-LA family keeps its declared skew: with the default
    /// exponent and at least 16 panels, the largest computation is at
    /// least 8x the smallest, while every memory footprint stays within
    /// 75-100 % of the declared maximum (near-capacity pressure).
    fn dense_la_traces_are_skewed_and_memory_heavy((n_tasks, seed, rank) in (
        gens::usize_in(16..=128),
        gens::u64_in(0..=u64::MAX),
        gens::usize_in(0..=8),
    )) {
        let mut config = GeneratorConfig::new(WorkloadFamily::DenseLa);
        config.n_tasks = n_tasks;
        config.seed = seed;
        config.skew = Some(DEFAULT_DENSE_LA_SKEW);
        let trace = generate_trace(&config, rank).map_err(|e| e.to_string())?;
        let comp_max = trace.tasks.iter().map(|t| t.comp_micros).max().unwrap_or(0);
        let comp_min = trace.tasks.iter().map(|t| t.comp_micros).min().unwrap_or(1);
        prop_assert!(
            comp_max as f64 / comp_min as f64 >= 8.0,
            "skew ratio {comp_max}/{comp_min} below 8x over {n_tasks} panels"
        );
        for task in &trace.tasks {
            prop_assert!(
                task.mem_bytes >= DENSE_LA_MEM_MAX * 3 / 4 && task.mem_bytes <= DENSE_LA_MEM_MAX,
                "panel footprint {} outside 75-100 % of {DENSE_LA_MEM_MAX}",
                task.mem_bytes
            );
        }
    }

    /// The tie-heavy family forces ties: at 50+ tasks, at least 90 % of
    /// tasks share their communication time with some other task.
    fn tie_heavy_traces_are_tie_heavy((n_tasks, seed, rank) in (
        gens::usize_in(50..=500),
        gens::u64_in(0..=u64::MAX),
        gens::usize_in(0..=8),
    )) {
        let mut config = GeneratorConfig::new(WorkloadFamily::TieHeavy);
        config.n_tasks = n_tasks;
        config.seed = seed;
        let trace = generate_trace(&config, rank).map_err(|e| e.to_string())?;
        let mut counts = std::collections::HashMap::new();
        for task in &trace.tasks {
            *counts.entry(task.comm_micros).or_insert(0usize) += 1;
        }
        let tied: usize = counts.values().filter(|&&c| c >= 2).sum();
        prop_assert!(
            tied as f64 / n_tasks as f64 >= 0.9,
            "only {tied}/{n_tasks} tasks share a communication time"
        );
    }

    /// The transfer-bound family is transfer-bound: total communication
    /// time dominates total computation time.
    fn transfer_bound_traces_are_transfer_bound((n_tasks, seed, rank) in (
        gens::usize_in(50..=500),
        gens::u64_in(0..=u64::MAX),
        gens::usize_in(0..=8),
    )) {
        let mut config = GeneratorConfig::new(WorkloadFamily::TransferBound);
        config.n_tasks = n_tasks;
        config.seed = seed;
        let trace = generate_trace(&config, rank).map_err(|e| e.to_string())?;
        let comm: u64 = trace.tasks.iter().map(|t| t.comm_micros).sum();
        let comp: u64 = trace.tasks.iter().map(|t| t.comp_micros).sum();
        prop_assert!(
            comm >= 2 * comp,
            "total comm {comm} does not dominate total comp {comp}"
        );
    }
}
