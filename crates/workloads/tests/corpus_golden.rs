//! The golden-metric scenario suite.
//!
//! Runs every heuristic under every execution model over the full
//! scenario corpus and compares the four metrics of each schedule
//! against the committed golden file. The file is a two-way ratchet:
//! drift fails, vanished coverage fails, unsanctioned new coverage
//! fails. `UPDATE_CORPUS_GOLDEN=1 cargo test -p dts_workloads` (or
//! `dts corpus --update-golden`) is the only sanctioned way to change
//! it — the rewritten file then shows up in the diff for review.

use dts_heuristics::Heuristic;
use dts_workloads::corpus::{
    self, compare, parse_golden, render_golden, run_corpus, scenarios, CORPUS_MODELS,
};
use dts_workloads::families::generate_trace;

fn committed_golden() -> corpus::CorpusMetrics {
    let path = corpus::default_golden_path();
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {}: {e}", path.display()));
    parse_golden(&json).expect("committed golden file parses")
}

#[test]
fn corpus_matches_committed_golden() {
    let current = run_corpus().expect("corpus runs");
    if std::env::var("UPDATE_CORPUS_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(corpus::default_golden_path(), render_golden(&current))
            .expect("golden file is writable");
        return;
    }
    let report = compare(&current, &committed_golden());
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn golden_covers_every_heuristic_model_family_cell() {
    let golden = committed_golden();
    let families = scenarios();
    assert!(families.len() >= 5, "corpus shrank below five families");
    let mut expected = 0;
    for scenario in &families {
        for heuristic in Heuristic::ALL {
            for model in CORPUS_MODELS {
                let key = format!("{}/{}/{}", scenario.name(), heuristic, model);
                assert!(
                    golden.contains_key(&key),
                    "golden file is missing cell {key}"
                );
                expected += 1;
            }
        }
    }
    assert_eq!(
        golden.len(),
        expected,
        "golden file carries entries no scenario produces"
    );
}

#[test]
fn golden_round_trips_through_render_and_parse() {
    let golden = committed_golden();
    assert_eq!(
        parse_golden(&render_golden(&golden)).expect("re-parse"),
        golden
    );
}

#[test]
fn tampered_metrics_fail_the_suite() {
    let golden = committed_golden();
    let current = run_corpus().expect("corpus runs");

    // Value tamper: any single-metric edit is drift.
    let mut tampered = golden.clone();
    let key = tampered.keys().next().expect("golden is non-empty").clone();
    tampered.get_mut(&key).expect("key exists").makespan_us += 1;
    let report = compare(&current, &tampered);
    assert_eq!(report.drifted.len(), 1, "{}", report.render());
    assert!(report.render().contains("--update-golden"));

    // Coverage tamper in both ratchet directions.
    let mut shrunk = golden.clone();
    shrunk.remove(&key);
    assert!(!compare(&current, &shrunk).unsanctioned.is_empty());
    let mut grown = golden.clone();
    grown.insert("zz-new/OS/explicit".into(), golden[&key]);
    assert!(!compare(&current, &grown).vanished.is_empty());
}

#[test]
fn tampered_generator_parameters_change_the_metrics() {
    // The golden file also pins the *generators*: silently changing a
    // scenario's seed (or size) must not reproduce the committed metrics.
    let golden = committed_golden();
    for mut scenario in scenarios() {
        scenario.config.seed += 1;
        let instance = generate_trace(&scenario.config, 0)
            .expect("tampered config still generates")
            .to_instance_scaled(scenario.capacity_factor)
            .expect("tampered trace still feasible");
        let drifted = Heuristic::ALL.iter().any(|&heuristic| {
            CORPUS_MODELS.iter().any(|&model| {
                let schedule = dts_heuristics::run_heuristic_with(&instance, heuristic, model)
                    .expect("heuristic runs");
                let record = corpus::MetricRecord::of(&instance, &schedule);
                let key = format!("{}/{}/{}", scenario.name(), heuristic, model);
                golden.get(&key) != Some(&record)
            })
        });
        assert!(
            drifted,
            "reseeding scenario {} left every golden metric unchanged",
            scenario.name()
        );
    }
}
