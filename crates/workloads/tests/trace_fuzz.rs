//! Fuzz-hardening of the trace loader: every corruption of a valid trace
//! file must surface as a *typed* `CoreError` — never a panic, never a
//! silently wrong trace.
//!
//! The corrupted classes the issue names each get a seeded property:
//! truncation at every byte offset, float (NaN-class) time fields,
//! negative memory, duplicate task ids and `u64`-overflowing sums. One
//! deliberately *broken* claim is checked via [`microcheck::check`]'s
//! panic-free entry point to pin the shrinker's minimal malformed
//! witness, so shrinking quality itself is under test.

use dts_core::CoreError;
use dts_workloads::families::{generate_trace, GeneratorConfig, WorkloadFamily};
use dts_workloads::format::{export_trace, import_trace};
use microcheck::{gens, prop_assert, property, Config};

/// A fixed valid exported file the corruption properties start from.
fn valid_json() -> String {
    let mut config = GeneratorConfig::new(WorkloadFamily::MdLike);
    config.n_tasks = 6;
    config.seed = 99;
    let trace = generate_trace(&config, 0).expect("seeded generation is infallible");
    export_trace(&trace).expect("generated traces export")
}

/// `true` iff the importer failed with a typed error (the only acceptable
/// outcomes for malformed input).
fn rejected_cleanly(json: &str) -> bool {
    matches!(
        import_trace(json),
        Err(CoreError::Serialization(_))
            | Err(CoreError::InvalidTrace(_))
            | Err(CoreError::InvalidExecutionModel(_))
    )
}

fn task_json(name: &str, comm: &str, comp: &str, mem: &str) -> String {
    format!(
        r#"{{"name": "{name}", "kind": "Contraction", "comm_micros": {comm}, "comp_micros": {comp}, "mem_bytes": {mem}}}"#
    )
}

fn file_json(tasks: &[String]) -> String {
    format!(
        r#"{{"format": "dts-trace", "version": 1, "kernel": "FUZZ", "rank": 0, "tasks": [{}]}}"#,
        tasks.join(", ")
    )
}

property! {
    /// Truncating a valid file at any byte offset yields a clean
    /// Serialization or InvalidTrace error — the parser never panics on
    /// and never accepts a prefix.
    fn truncated_files_are_rejected_cleanly(cut in gens::usize_in(0..=2047)) {
        let json = valid_json();
        if cut >= json.len() {
            // Beyond the end there is nothing to corrupt.
            return Ok(());
        }
        let truncated = &json[..cut];
        prop_assert!(
            rejected_cleanly(truncated),
            "truncation at byte {cut} was not rejected cleanly"
        );
    }

    /// Float time fields — including exponent forms that evaluate to
    /// IEEE infinity — are rejected as InvalidTrace, not cast or panicked
    /// on.
    fn float_times_are_rejected((mantissa, exp, field) in (
        gens::u64_in(0..=1000),
        gens::u64_in(1..=999),
        gens::usize_in(0..=1),
    )) {
        let float = format!("{mantissa}.5e{exp}");
        let (comm, comp) = if field == 0 { (float.as_str(), "1") } else { ("1", float.as_str()) };
        let json = file_json(&[task_json("t", comm, comp, "1")]);
        match import_trace(&json) {
            Err(CoreError::InvalidTrace(msg)) => prop_assert!(
                msg.contains("comm_micros") || msg.contains("comp_micros"),
                "message `{msg}` does not name the float field"
            ),
            other => prop_assert!(false, "float time accepted or mis-typed: {other:?}"),
        }
    }

    /// Negative memory (and negative times) are rejected with a message
    /// naming the negative value.
    fn negative_fields_are_rejected((value, field) in (
        gens::u64_in(1..=1_000_000),
        gens::usize_in(0..=2),
    )) {
        let negative = format!("-{value}");
        let (comm, comp, mem) = match field {
            0 => (negative.as_str(), "1", "1"),
            1 => ("1", negative.as_str(), "1"),
            _ => ("1", "1", negative.as_str()),
        };
        let json = file_json(&[task_json("t", comm, comp, mem)]);
        match import_trace(&json) {
            Err(CoreError::InvalidTrace(msg)) => prop_assert!(
                msg.contains("negative"),
                "message `{msg}` does not say the field is negative"
            ),
            other => prop_assert!(false, "negative field accepted or mis-typed: {other:?}"),
        }
    }

    /// Duplicate task ids anywhere in the task list are rejected, naming
    /// the duplicated id.
    fn duplicate_task_ids_are_rejected((n, dup_a, dup_b) in (
        gens::usize_in(2..=40),
        gens::usize_in(0..=39),
        gens::usize_in(0..=39),
    )) {
        let (dup_a, dup_b) = (dup_a % n, dup_b % n);
        if dup_a == dup_b {
            return Ok(());
        }
        let tasks: Vec<String> = (0..n)
            .map(|i| {
                // Give positions dup_a and dup_b the same id.
                let id = if i == dup_b { dup_a } else { i };
                task_json(&format!("task-{id}"), "1", "2", "3")
            })
            .collect();
        let json = file_json(&tasks);
        match import_trace(&json) {
            Err(CoreError::InvalidTrace(msg)) => prop_assert!(
                msg.contains("duplicate") && msg.contains(&format!("task-{dup_a}")),
                "message `{msg}` does not name duplicate `task-{dup_a}`"
            ),
            other => prop_assert!(false, "duplicate ids accepted or mis-typed: {other:?}"),
        }
    }

    /// Task lists whose summed times overflow u64 are rejected at import
    /// — and the same trace built in memory is rejected by
    /// `Trace::to_instance_scaled`, so the overflow can not reach the
    /// simulators through either door.
    fn overflowing_sums_are_rejected(n in gens::usize_in(2..=8)) {
        // Each task alone is representable; together they overflow.
        let per_task = u64::MAX / (n as u64 - 1);
        let tasks: Vec<String> = (0..n)
            .map(|i| task_json(&format!("big-{i}"), &format!("{}", per_task / 2), &format!("{}", per_task - per_task / 2), "1"))
            .collect();
        let json = file_json(&tasks);
        prop_assert!(
            matches!(import_trace(&json), Err(CoreError::InvalidTrace(_))),
            "overflowing import not rejected"
        );
        // The in-memory door: same values straight into a Trace.
        let trace = dts_chem::Trace {
            kernel: "FUZZ".into(),
            rank: 0,
            tasks: (0..n)
                .map(|i| dts_chem::TraceTask {
                    name: format!("big-{i}"),
                    kind: dts_chem::trace::TaskKind::Contraction,
                    comm_micros: per_task / 2,
                    comp_micros: per_task - per_task / 2,
                    mem_bytes: 1,
                })
                .collect(),
            model: None,
            cost_model: None,
        };
        prop_assert!(
            matches!(trace.to_instance_scaled(1.0), Err(CoreError::InvalidTrace(_))),
            "overflowing to_instance_scaled not rejected"
        );
    }
}

/// The broken-claim shrinker test: deliberately claim that a file whose
/// tasks all share one name imports fine. The claim holds for 0 or 1
/// tasks and breaks at 2, so the shrinker must walk any drawn failure
/// down to the minimal malformed witness: exactly two identically-named
/// tasks.
#[test]
fn broken_duplicate_claim_shrinks_to_two_tasks() {
    let gen = gens::usize_in(0..=64);
    let failure = microcheck::check(&Config::default(), &gen, |&n| {
        let tasks: Vec<String> = (0..n).map(|_| task_json("same", "1", "1", "1")).collect();
        let json = file_json(&tasks);
        microcheck::prop_assert!(import_trace(&json).is_ok(), "rejected a {n}-task file");
        Ok(())
    })
    .expect_err("files with duplicate ids must not all import");
    assert_eq!(
        failure.minimal, 2,
        "minimal malformed witness is two identically-named tasks"
    );
    assert!(failure.original >= 2);
}
