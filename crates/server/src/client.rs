//! A minimal blocking client for the daemon protocol.
//!
//! Used by the `dts request` subcommand, the load generator in
//! `dts_bench`, and the end-to-end tests. One [`Client`] owns one
//! connection and runs strictly request/response — the daemon replies to
//! frames in order, so no correlation ids are needed.

use crate::protocol::{read_frame, request_to_value, write_frame, FrameRead, SolveRequest};
use dts_core::error::{CoreError, Result as CoreResult};
use serde::Value;
use std::net::{TcpStream, ToSocketAddrs};

/// Response frames larger than this are treated as a protocol violation
/// by the client (the daemon never sends frames near this size).
const CLIENT_MAX_FRAME_BYTES: usize = 64 << 20;

/// A blocking connection to a scheduling daemon.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
}

fn transport(e: std::io::Error) -> CoreError {
    CoreError::Internal(format!("transport: {e}"))
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`CoreError::Internal`] on connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> CoreResult<Client> {
        let writer = TcpStream::connect(addr).map_err(transport)?;
        // Frames are small request/response units; leaving Nagle on adds
        // a delayed-ACK stall to every exchange.
        writer.set_nodelay(true).map_err(transport)?;
        let reader = writer.try_clone().map_err(transport)?;
        Ok(Client { reader, writer })
    }

    /// Sends one raw payload and returns the raw response payload.
    ///
    /// This is the byte-exact layer: tests use it to send malformed
    /// payloads and to compare response bytes across cache hits.
    ///
    /// # Errors
    ///
    /// [`CoreError::Internal`] on transport failure or a response that is
    /// not UTF-8; [`CoreError::Serialization`] never (raw bytes pass
    /// through).
    pub fn send_text(&mut self, payload: &str) -> CoreResult<String> {
        write_frame(&mut self.writer, payload.as_bytes()).map_err(transport)?;
        self.read_response()
    }

    /// Reads one response payload without sending anything (used after
    /// writing a frame by hand on the underlying stream).
    ///
    /// # Errors
    ///
    /// [`CoreError::Internal`] on transport failure, early EOF or an
    /// oversized/non-UTF-8 response.
    pub fn read_response(&mut self) -> CoreResult<String> {
        match read_frame(&mut self.reader, CLIENT_MAX_FRAME_BYTES).map_err(transport)? {
            FrameRead::Payload(payload) => String::from_utf8(payload)
                .map_err(|e| CoreError::Internal(format!("response is not UTF-8: {e}"))),
            FrameRead::Eof => Err(CoreError::Internal(
                "daemon closed the connection before replying".to_string(),
            )),
            FrameRead::Oversized(len) => Err(CoreError::Internal(format!(
                "daemon sent an oversized {len}-byte response"
            ))),
        }
    }

    /// Sends a JSON value and parses the JSON response.
    ///
    /// # Errors
    ///
    /// Transport failures as [`CoreError::Internal`]; an unparsable
    /// response as [`CoreError::Serialization`].
    pub fn send_value(&mut self, value: &Value) -> CoreResult<Value> {
        let payload =
            serde_json::to_string(value).map_err(|e| CoreError::Serialization(e.to_string()))?;
        let response = self.send_text(&payload)?;
        serde_json::from_str(&response).map_err(|e| CoreError::Serialization(e.to_string()))
    }

    /// Sends a typed request and parses the JSON response.
    ///
    /// # Errors
    ///
    /// Same as [`Client::send_value`].
    pub fn send_request(&mut self, request: &SolveRequest) -> CoreResult<Value> {
        self.send_value(&request_to_value(request))
    }
}
