//! Scheduling-as-a-service for the transfer-ordering stack.
//!
//! The per-invocation CLI (`dts run`, `dts corpus`) re-parses, re-builds
//! and re-solves every instance from scratch; a runtime that consults the
//! scheduler on every kernel launch cannot afford that. This crate turns
//! the solver into a long-running daemon:
//!
//! * [`protocol`] — the wire format: length-framed JSON, one typed
//!   [`protocol::ErrorCode`] per failure class, and the content digest
//!   that keys the instance cache;
//! * [`server`] — the daemon: per-connection frame loops, admission
//!   control (payload ceiling, task ceiling, bounded queue with load
//!   shedding), batched solving on the `dts_core` thread pool, and a
//!   solve-once instance cache returning byte-identical schedules for
//!   repeated requests;
//! * [`client`] — the blocking client used by `dts request`, the bench
//!   load generator and the end-to-end tests.
//!
//! Everything is std TCP + the vendored serde: no async runtime, no new
//! dependencies.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{parse_request, ErrorCode, ErrorReply, SolveRequest, TraceSource};
pub use server::{Server, ServerConfig, ServerHandle};
