//! Wire protocol of the scheduling daemon.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! The framing layer enforces a payload ceiling so a hostile or buggy
//! client cannot make the daemon buffer an unbounded body; an oversized
//! frame is *drained* from the socket (bounded, chunked reads into a
//! throwaway buffer) and answered with a typed error, leaving the
//! connection usable for the next frame.
//!
//! A request selects the instance either **inline** (a full trace object
//! under `"trace"`) or **by corpus family** (a generator spec under
//! `"family"`), plus the heuristic to run and optional execution-model,
//! cost-model and capacity-factor overrides:
//!
//! ```json
//! {"family": {"family": "dense-la", "n_tasks": 64, "seed": 7, "rank": 0},
//!  "heuristic": "DOCPS", "model": "streams:2", "factor": 1.5}
//! ```
//!
//! The optional `"cost_model"` field carries either a full inline
//! dts-cost-model object or the literal string `"analytic"`; it overrides
//! whatever cost model the trace embeds (with `"analytic"` forcing the
//! trace's native durations) and is part of the cache key.
//!
//! Responses are either `{"status":"ok", "cached":…, "digest":…,
//! "result":…}` or `{"status":"error", "code":…, "message":…}`. Every
//! failure the daemon can detect maps to a stable machine-readable
//! [`ErrorCode`]; connections are never dropped in lieu of an error
//! reply.

use dts_chem::Trace;
use dts_core::error::CoreError;
use dts_core::hash::{Digest128, StableHasher};
use dts_core::perfmodel::CostModelSpec;
use dts_core::ExecutionModel;
use dts_heuristics::Heuristic;
use dts_workloads::{GeneratorConfig, WorkloadFamily};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame header size: a `u32` payload length in network byte order.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Stable machine-readable failure classes of the wire protocol.
///
/// The string form (see [`ErrorCode::as_str`]) is part of the protocol:
/// clients dispatch on it, so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload was not a JSON object of the request shape.
    BadFrame,
    /// The frame length exceeded the server's payload ceiling.
    OversizedFrame,
    /// The request parsed as JSON but violated the schema (missing or
    /// conflicting fields, unknown family, non-finite factor, …).
    BadRequest,
    /// The `heuristic` name is not one of [`Heuristic::ALL`].
    UnknownHeuristic,
    /// The `model` string did not parse as an execution model.
    InvalidModel,
    /// The trace (inline or generated) was rejected by the core layer.
    InvalidTrace,
    /// The request names more tasks than the admission ceiling allows.
    TaskCeiling,
    /// The pending-request queue is full; retry later (load shed).
    QueueFull,
    /// The instance cannot be scheduled (e.g. a task exceeds capacity).
    Infeasible,
    /// Any other server-side failure.
    Internal,
    /// The `cost_model` spec was rejected by the dts-cost-model importer.
    InvalidCostModel,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownHeuristic => "unknown-heuristic",
            ErrorCode::InvalidModel => "invalid-model",
            ErrorCode::InvalidTrace => "invalid-trace",
            ErrorCode::TaskCeiling => "task-ceiling",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::Infeasible => "infeasible",
            ErrorCode::Internal => "internal",
            ErrorCode::InvalidCostModel => "invalid-cost-model",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed error reply: code plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Human-readable detail (not part of the stable protocol).
    pub message: String,
}

impl ErrorReply {
    /// Builds a reply from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ErrorReply {
            code,
            message: message.into(),
        }
    }

    /// Classifies a core-layer error into a wire code.
    pub fn from_core(err: &CoreError) -> Self {
        let code = match err {
            CoreError::EmptyInstance | CoreError::InvalidTrace(_) => ErrorCode::InvalidTrace,
            CoreError::InvalidCapacityFactor(_) => ErrorCode::BadRequest,
            CoreError::InvalidExecutionModel(_) => ErrorCode::InvalidModel,
            CoreError::InvalidCostModel(_) => ErrorCode::InvalidCostModel,
            CoreError::TaskExceedsCapacity { .. } | CoreError::Infeasible(_) => {
                ErrorCode::Infeasible
            }
            _ => ErrorCode::Internal,
        };
        ErrorReply::new(code, err.to_string())
    }

    /// Renders the reply as a response JSON payload.
    pub fn to_json(&self) -> String {
        let value = Value::Object(vec![
            ("status".to_string(), Value::Str("error".to_string())),
            (
                "code".to_string(),
                Value::Str(self.code.as_str().to_string()),
            ),
            ("message".to_string(), Value::Str(self.message.clone())),
        ]);
        render(&value)
    }
}

/// Renders an ok response around an already-rendered `result` payload.
///
/// The `result` string is spliced in verbatim, so a cache hit serves the
/// *exact bytes* of the cold solve — byte identity is structural, not a
/// property re-derived per request.
pub fn ok_response_json(result_json: &str, cached: bool, digest: Digest128) -> String {
    format!("{{\"status\":\"ok\",\"cached\":{cached},\"digest\":\"{digest}\",\"result\":{result_json}}}")
}

fn render(value: &Value) -> String {
    // The vendored renderer only fails on non-finite floats; protocol
    // values are strings, bools and integers, so this cannot trigger.
    serde_json::to_string(value).unwrap_or_else(|_| {
        "{\"status\":\"error\",\"code\":\"internal\",\"message\":\"render failure\"}".to_string()
    })
}

/// Where the instance of a request comes from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// A full trace shipped in the request body.
    Inline(Trace),
    /// A deterministic corpus generator spec (family, size, seed, rank).
    Family {
        /// Generator configuration.
        config: GeneratorConfig,
        /// Process rank fed to the generator.
        rank: usize,
    },
}

/// A parsed, schema-valid scheduling request.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Instance source: inline trace or generator spec.
    pub source: TraceSource,
    /// Heuristic to run.
    pub heuristic: Heuristic,
    /// Execution-model override; `None` follows the trace/instance default.
    pub model: Option<ExecutionModel>,
    /// Cost-model override; `None` follows whatever the trace embeds,
    /// `Some(Analytic)` forces the trace's native durations.
    pub cost_model: Option<CostModelSpec>,
    /// Memory-capacity factor (multiplies the minimum feasible capacity).
    pub factor: f64,
}

impl SolveRequest {
    /// Number of tasks the request names, for admission control. This is
    /// known *before* any generation or solving happens, so the ceiling
    /// check is O(1).
    pub fn task_count(&self) -> usize {
        match &self.source {
            TraceSource::Inline(trace) => trace.len(),
            TraceSource::Family { config, .. } => config.n_tasks,
        }
    }

    /// Content digest of the request: the cache key.
    ///
    /// Two requests get the same digest iff they name the same instance
    /// bytes, factor, heuristic and model — the exact inputs the solve
    /// depends on. Family specs hash their parameters rather than the
    /// generated trace, so a cache hit skips generation too.
    pub fn digest(&self) -> Digest128 {
        let mut h = StableHasher::new();
        match &self.source {
            TraceSource::Inline(trace) => {
                h.write_str("trace");
                h.write_str(&render(&trace.to_value()));
            }
            TraceSource::Family { config, rank } => {
                h.write_str("family");
                h.write_str(config.family.name());
                h.write_u64(config.n_tasks as u64);
                h.write_u64(config.seed);
                match config.skew {
                    Some(s) => {
                        h.write_str("skew");
                        h.write_u64(s.to_bits());
                    }
                    None => h.write_str("no-skew"),
                }
                h.write_u64(*rank as u64);
            }
        }
        h.write_u64(self.factor.to_bits());
        h.write_str(self.heuristic.name());
        match self.model {
            Some(m) => h.write_str(&m.to_string()),
            None => h.write_str("-"),
        }
        match &self.cost_model {
            // Hash the canonical JSON rendering: two specs collide iff
            // they would materialize identical durations from the same
            // trace, which is exactly when sharing a cache entry is sound.
            Some(spec) => h.write_str(&render(&spec.to_value())),
            None => h.write_str("-"),
        }
        h.finish()
    }
}

/// Parses a request payload (already JSON-decoded) into a [`SolveRequest`].
///
/// # Errors
///
/// A typed [`ErrorReply`] for every schema violation: the caller sends it
/// on the wire instead of solving.
pub fn parse_request(value: &Value) -> Result<SolveRequest, ErrorReply> {
    let bad = |msg: String| ErrorReply::new(ErrorCode::BadRequest, msg);

    let heuristic_name: String = match value.field("heuristic") {
        Ok(v) => Deserialize::from_value(v)
            .map_err(|e| bad(format!("field 'heuristic' must be a string: {e}")))?,
        Err(_) => return Err(bad("missing required field 'heuristic'".to_string())),
    };
    let heuristic = Heuristic::from_name(&heuristic_name).ok_or_else(|| {
        ErrorReply::new(
            ErrorCode::UnknownHeuristic,
            format!("unknown heuristic '{heuristic_name}'"),
        )
    })?;

    let model = match value.field("model") {
        Ok(v) => {
            let spec: String = Deserialize::from_value(v)
                .map_err(|e| bad(format!("field 'model' must be a string: {e}")))?;
            Some(ExecutionModel::parse(&spec).map_err(|e| {
                ErrorReply::new(ErrorCode::InvalidModel, format!("invalid model: {e}"))
            })?)
        }
        Err(_) => None,
    };

    let cost_model = match value.field("cost_model") {
        Ok(v) => {
            let spec = CostModelSpec::from_value(v).map_err(|e| {
                ErrorReply::new(
                    ErrorCode::InvalidCostModel,
                    format!("invalid cost model: {e}"),
                )
            })?;
            spec.validate()
                .map_err(|e| ErrorReply::new(ErrorCode::InvalidCostModel, e.to_string()))?;
            Some(spec)
        }
        Err(_) => None,
    };

    let factor = match value.field("factor") {
        Ok(v) => {
            f64::from_value(v).map_err(|e| bad(format!("field 'factor' must be a number: {e}")))?
        }
        Err(_) => 1.0,
    };
    if !factor.is_finite() || factor < 0.0 {
        return Err(bad(format!(
            "capacity factor must be finite and non-negative, got {factor}"
        )));
    }

    let inline = value.field("trace").ok();
    let family = value.field("family").ok();
    let source = match (inline, family) {
        (Some(_), Some(_)) => {
            return Err(bad(
                "request must name exactly one of 'trace' or 'family', not both".to_string(),
            ))
        }
        (None, None) => {
            return Err(bad(
                "request must name exactly one of 'trace' or 'family'".to_string()
            ))
        }
        (Some(trace_value), None) => {
            let trace = Trace::from_value(trace_value).map_err(|e| {
                ErrorReply::new(ErrorCode::InvalidTrace, format!("invalid trace: {e}"))
            })?;
            TraceSource::Inline(trace)
        }
        (None, Some(spec)) => {
            let family_name: String = match spec.field("family") {
                Ok(v) => Deserialize::from_value(v)
                    .map_err(|e| bad(format!("family 'family' must be a string: {e}")))?,
                Err(_) => return Err(bad("family spec is missing field 'family'".to_string())),
            };
            let family = WorkloadFamily::from_name(&family_name)
                .ok_or_else(|| bad(format!("unknown workload family '{family_name}'")))?;
            let mut config = GeneratorConfig::new(family);
            if let Ok(v) = spec.field("n_tasks") {
                config.n_tasks = Deserialize::from_value(v)
                    .map_err(|e| bad(format!("family 'n_tasks' must be an integer: {e}")))?;
            }
            if let Ok(v) = spec.field("seed") {
                config.seed = Deserialize::from_value(v)
                    .map_err(|e| bad(format!("family 'seed' must be an integer: {e}")))?;
            }
            if let Ok(v) = spec.field("skew") {
                let skew = f64::from_value(v)
                    .map_err(|e| bad(format!("family 'skew' must be a number: {e}")))?;
                config.skew = Some(skew);
            }
            let rank: usize = match spec.field("rank") {
                Ok(v) => Deserialize::from_value(v)
                    .map_err(|e| bad(format!("family 'rank' must be an integer: {e}")))?,
                Err(_) => 0,
            };
            config
                .validate()
                .map_err(|e| bad(format!("invalid family spec: {e}")))?;
            TraceSource::Family { config, rank }
        }
    };

    Ok(SolveRequest {
        source,
        heuristic,
        model,
        cost_model,
        factor,
    })
}

/// Outcome of reading one frame.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload.
    Payload(Vec<u8>),
    /// The peer closed the connection cleanly before a new header.
    Eof,
    /// The announced length exceeded the ceiling; the body was drained
    /// and the connection is positioned at the next frame.
    Oversized(u64),
}

/// Reads one length-prefixed frame, enforcing `max_payload` bytes.
///
/// An announced length over the ceiling is consumed (in bounded chunks,
/// so memory stays O(chunk)) and reported as [`FrameRead::Oversized`] —
/// the caller can answer with a typed error and keep the connection.
///
/// # Errors
///
/// Propagates transport errors, including a connection cut mid-frame
/// (`UnexpectedEof`).
pub fn read_frame(reader: &mut impl Read, max_payload: usize) -> io::Result<FrameRead> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match reader.read(&mut header)? {
        0 => return Ok(FrameRead::Eof),
        n => reader.read_exact(&mut header[n..])?,
    }
    let len = u64::from(u32::from_be_bytes(header));
    if len > max_payload as u64 {
        let mut sink = io::sink();
        io::copy(&mut reader.take(len), &mut sink)?;
        return Ok(FrameRead::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(FrameRead::Payload(payload))
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates transport errors; payloads over `u32::MAX` bytes are
/// rejected as [`io::ErrorKind::InvalidInput`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    // One coalesced write per frame: splitting the 4-byte header and the
    // payload into separate segments makes Nagle hold the payload until
    // the peer's delayed ACK (~40 ms per frame on loopback).
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Serializes a request back to its canonical JSON (used by the client
/// and the load generator; the server only parses).
pub fn request_to_value(req: &SolveRequest) -> Value {
    let mut fields = Vec::new();
    match &req.source {
        TraceSource::Inline(trace) => fields.push(("trace".to_string(), trace.to_value())),
        TraceSource::Family { config, rank } => {
            let mut spec = vec![
                (
                    "family".to_string(),
                    Value::Str(config.family.name().to_string()),
                ),
                ("n_tasks".to_string(), Value::UInt(config.n_tasks as u64)),
                ("seed".to_string(), Value::UInt(config.seed)),
            ];
            if let Some(skew) = config.skew {
                spec.push(("skew".to_string(), Value::Float(skew)));
            }
            spec.push(("rank".to_string(), Value::UInt(*rank as u64)));
            fields.push(("family".to_string(), Value::Object(spec)));
        }
    }
    fields.push((
        "heuristic".to_string(),
        Value::Str(req.heuristic.name().to_string()),
    ));
    if let Some(model) = req.model {
        fields.push(("model".to_string(), Value::Str(model.to_string())));
    }
    if let Some(cost_model) = &req.cost_model {
        fields.push(("cost_model".to_string(), cost_model.to_value()));
    }
    fields.push(("factor".to_string(), Value::Float(req.factor)));
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::perfmodel::{ComputeBackend, LinearFit, LinkClass, RegressionModel};

    fn sample_cost_model() -> CostModelSpec {
        let fit = |alpha_us| LinearFit {
            alpha_us,
            beta_ps_per_byte: 2_000_000,
            samples: 4,
        };
        CostModelSpec::Regression(
            RegressionModel::new(
                vec![(LinkClass::HostToDevice, fit(10))],
                vec![(ComputeBackend::Cpu, fit(5))],
            )
            .unwrap(),
        )
    }

    fn family_request_value() -> Value {
        let spec = Value::Object(vec![
            ("family".to_string(), Value::Str("md".to_string())),
            ("n_tasks".to_string(), Value::UInt(8)),
            ("seed".to_string(), Value::UInt(3)),
        ]);
        Value::Object(vec![
            ("family".to_string(), spec),
            ("heuristic".to_string(), Value::Str("OS".to_string())),
        ])
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"a\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        match read_frame(&mut cursor, 1 << 20).unwrap() {
            FrameRead::Payload(p) => assert_eq!(p, b"{\"a\":1}"),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut cursor, 1 << 20).unwrap() {
            FrameRead::Payload(p) => assert!(p.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversized_frames_are_drained_not_buffered() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0x5a; 256]).unwrap();
        write_frame(&mut buf, b"next").unwrap();
        let mut cursor = io::Cursor::new(buf);
        match read_frame(&mut cursor, 16).unwrap() {
            FrameRead::Oversized(len) => assert_eq!(len, 256),
            other => panic!("unexpected {other:?}"),
        }
        // The stream is positioned at the next frame.
        match read_frame(&mut cursor, 16).unwrap() {
            FrameRead::Payload(p) => assert_eq!(p, b"next"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_a_transport_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor, 1 << 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn parse_accepts_family_requests_and_defaults() {
        let req = parse_request(&family_request_value()).unwrap();
        assert_eq!(req.heuristic.name(), "OS");
        assert_eq!(req.task_count(), 8);
        assert!(req.model.is_none());
        assert_eq!(req.factor, 1.0);
    }

    #[test]
    fn parse_rejects_schema_violations_with_typed_codes() {
        let cases: Vec<(Value, ErrorCode)> = vec![
            (Value::Object(vec![]), ErrorCode::BadRequest),
            (
                Value::Object(vec![(
                    "heuristic".to_string(),
                    Value::Str("NOPE".to_string()),
                )]),
                ErrorCode::UnknownHeuristic,
            ),
            (
                {
                    let mut v = family_request_value();
                    if let Value::Object(fields) = &mut v {
                        fields.push(("model".to_string(), Value::Str("warp-drive".to_string())));
                    }
                    v
                },
                ErrorCode::InvalidModel,
            ),
            (
                {
                    let mut v = family_request_value();
                    if let Value::Object(fields) = &mut v {
                        fields.push(("factor".to_string(), Value::Float(-1.0)));
                    }
                    v
                },
                ErrorCode::BadRequest,
            ),
            (
                Value::Object(vec![
                    ("heuristic".to_string(), Value::Str("OS".to_string())),
                    ("trace".to_string(), Value::Null),
                ]),
                ErrorCode::InvalidTrace,
            ),
        ];
        for (value, expected) in cases {
            let err = parse_request(&value).unwrap_err();
            assert_eq!(err.code, expected, "for {value:?}: {}", err.message);
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive_to_every_input() {
        let base = parse_request(&family_request_value()).unwrap();
        let d0 = base.digest();
        assert_eq!(d0, base.digest(), "digest is deterministic");

        let mut other = base.clone();
        other.factor = 2.0;
        assert_ne!(d0, other.digest(), "factor changes the key");

        let mut other = base.clone();
        other.heuristic = Heuristic::from_name("GG").unwrap();
        assert_ne!(d0, other.digest(), "heuristic changes the key");

        let mut other = base.clone();
        other.model = Some(ExecutionModel::Duplex);
        assert_ne!(d0, other.digest(), "model changes the key");

        let mut other = base.clone();
        other.cost_model = Some(sample_cost_model());
        assert_ne!(d0, other.digest(), "cost model changes the key");

        let mut analytic = base.clone();
        analytic.cost_model = Some(CostModelSpec::Analytic);
        assert_ne!(
            other.digest(),
            analytic.digest(),
            "an analytic override keys differently from a fitted one"
        );

        let mut other = base.clone();
        if let TraceSource::Family { config, .. } = &mut other.source {
            config.seed += 1;
        }
        assert_ne!(d0, other.digest(), "seed changes the key");
    }

    #[test]
    fn request_value_round_trips_through_parse() {
        let mut req = parse_request(&family_request_value()).unwrap();
        let round = parse_request(&request_to_value(&req)).unwrap();
        assert_eq!(req.digest(), round.digest());

        // With both override kinds set, including the analytic keyword.
        req.model = Some(ExecutionModel::Duplex);
        req.cost_model = Some(sample_cost_model());
        let round = parse_request(&request_to_value(&req)).unwrap();
        assert_eq!(req.digest(), round.digest());

        req.cost_model = Some(CostModelSpec::Analytic);
        let round = parse_request(&request_to_value(&req)).unwrap();
        assert_eq!(req.digest(), round.digest());
        assert_eq!(round.cost_model, Some(CostModelSpec::Analytic));
    }

    #[test]
    fn parse_rejects_bad_cost_models_with_a_typed_code() {
        let mut v = family_request_value();
        if let Value::Object(fields) = &mut v {
            fields.push((
                "cost_model".to_string(),
                Value::Str("warp-drive".to_string()),
            ));
        }
        let err = parse_request(&v).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidCostModel);
        assert!(err.message.contains("warp-drive"), "{}", err.message);
    }

    #[test]
    fn error_replies_render_typed_json() {
        let reply = ErrorReply::new(ErrorCode::QueueFull, "busy");
        let json = reply.to_json();
        let value: Value = serde_json::from_str(&json).unwrap();
        let status: String = Deserialize::from_value(value.field("status").unwrap()).unwrap();
        let code: String = Deserialize::from_value(value.field("code").unwrap()).unwrap();
        assert_eq!((status.as_str(), code.as_str()), ("error", "queue-full"));
    }
}
