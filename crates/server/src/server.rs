//! The scheduling daemon: accept loop, admission control, batched solving.
//!
//! # Threading model
//!
//! * One **acceptor** thread owns the listening socket and spawns a
//!   connection thread per client.
//! * Each **connection** thread runs the frame loop: read a frame, parse
//!   and admit the request, enqueue a job, block on the job's reply
//!   channel, write the response frame. Protocol failures become typed
//!   error frames on the same connection — a client connection is never
//!   dropped in lieu of an error reply.
//! * One **scheduler** thread drains the job queue in batches of at most
//!   [`ServerConfig::batch_max`] and runs each batch through
//!   [`dts_core::pool::run_indexed_pool`], so concurrent requests share
//!   the solver thread pool instead of oversubscribing the machine with
//!   one solver thread per connection.
//!
//! # Admission control
//!
//! Three bounds keep memory use proportional to configuration, not to
//! offered load:
//!
//! * frames above [`ServerConfig::max_frame_bytes`] are drained and
//!   refused (`oversized-frame`) without buffering the payload;
//! * requests naming more than [`ServerConfig::max_tasks`] tasks are
//!   refused (`task-ceiling`) before any generation or solving;
//! * when [`ServerConfig::queue_depth`] jobs are already pending the
//!   request is shed immediately (`queue-full`) instead of queueing —
//!   the client can retry, and latency of admitted requests stays
//!   bounded.
//!
//! # Instance cache
//!
//! Admitted requests are answered through a [`SolveCache`] keyed by the
//! request content digest ([`SolveRequest::digest`]). The cached value is
//! the *rendered* result JSON, so a repeat request returns the exact
//! bytes of the original solve, and concurrent identical requests solve
//! exactly once (the cache's cell lock serializes them; see
//! `dts_core::cache`).

use crate::protocol::{
    ok_response_json, parse_request, read_frame, write_frame, ErrorCode, ErrorReply, FrameRead,
    SolveRequest, TraceSource,
};
use dts_core::cache::{CacheStats, SolveCache};
use dts_core::error::{CoreError, Result as CoreResult};
use dts_core::hash::Digest128;
use dts_core::metrics::ScheduleMetrics;
use dts_core::pool::run_indexed_pool;
use dts_heuristics::run_heuristic_with;
use dts_workloads::generate_trace;
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Tunables of a [`Server`]. `Default` is sized for tests and small
/// deployments; the CLI exposes the load-bearing knobs as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the bound address is
    /// available from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Solver threads per batch; 0 means the machine's available
    /// parallelism.
    pub threads: usize,
    /// Pending-job ceiling; requests beyond it are shed (`queue-full`).
    pub queue_depth: usize,
    /// Per-request task-count ceiling (`task-ceiling` beyond it).
    pub max_tasks: usize,
    /// Frame payload ceiling in bytes (`oversized-frame` beyond it).
    pub max_frame_bytes: usize,
    /// Entry bound of the solved-instance cache (LRU eviction).
    pub cache_entries: usize,
    /// Largest batch the scheduler hands to the solver pool at once.
    pub batch_max: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_depth: 256,
            max_tasks: 65_536,
            max_frame_bytes: 4 << 20,
            cache_entries: 512,
            batch_max: 64,
        }
    }
}

/// One admitted request waiting for the scheduler.
struct Job {
    request: SolveRequest,
    digest: Digest128,
    reply: mpsc::Sender<String>,
}

struct Shared {
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    cache: SolveCache<Digest128, Arc<str>>,
}

/// Recovers the guard from a poisoned std mutex: a solver panic must not
/// wedge the daemon, and every protected structure here is valid after
/// any partial update (queues of owned jobs, plain counters).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The daemon entry point. See the module docs for the threading model.
pub struct Server;

impl Server {
    /// Binds the listener and starts the acceptor and scheduler threads.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let cache = SolveCache::new(config.cache_entries);
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache,
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&shared))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            scheduler: Some(scheduler),
        })
    }
}

/// A running daemon. Dropping the handle shuts the daemon down (pending
/// jobs are drained first; connection threads exit on their next read).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters of the solved-instance cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Stops the acceptor and scheduler and waits for them to exit.
    /// Already-admitted jobs are answered before the scheduler stops.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.work_ready.notify_all();
        // Unblock the acceptor: `incoming()` has no timeout, so poke it
        // with a throwaway connection that it drops on the shutdown check.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(stream) = stream {
            // Same rationale as the client side: request/response frames
            // are small, and Nagle turns each reply into a delayed-ACK
            // stall.
            let _ = stream.set_nodelay(true);
            let shared = Arc::clone(shared);
            std::thread::spawn(move || connection_loop(&shared, stream));
        }
    }
}

fn connection_loop(shared: &Shared, stream: TcpStream) {
    let mut reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let response = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(FrameRead::Payload(payload)) => handle_payload(shared, &payload),
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Oversized(len)) => ErrorReply::new(
                ErrorCode::OversizedFrame,
                format!(
                    "frame of {len} bytes exceeds the {}-byte ceiling",
                    shared.config.max_frame_bytes
                ),
            )
            .to_json(),
            // Transport failure mid-frame: the socket is gone or out of
            // sync; there is no well-formed peer left to answer.
            Err(_) => return,
        };
        if write_frame(&mut writer, response.as_bytes()).is_err() {
            return;
        }
    }
}

/// Parses, admits and executes one request payload, always producing a
/// response payload (typed errors included).
fn handle_payload(shared: &Shared, payload: &[u8]) -> String {
    let text = match std::str::from_utf8(payload) {
        Ok(text) => text,
        Err(e) => {
            return ErrorReply::new(ErrorCode::BadFrame, format!("payload is not UTF-8: {e}"))
                .to_json()
        }
    };
    let value = match serde_json::from_str(text) {
        Ok(value) => value,
        Err(e) => {
            return ErrorReply::new(
                ErrorCode::BadFrame,
                format!("payload is not valid JSON: {e}"),
            )
            .to_json()
        }
    };
    let request = match parse_request(&value) {
        Ok(request) => request,
        Err(reply) => return reply.to_json(),
    };
    if request.task_count() > shared.config.max_tasks {
        return ErrorReply::new(
            ErrorCode::TaskCeiling,
            format!(
                "request names {} tasks, per-request ceiling is {}",
                request.task_count(),
                shared.config.max_tasks
            ),
        )
        .to_json();
    }
    let digest = request.digest();
    let (reply, response) = mpsc::channel();
    {
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.config.queue_depth {
            return ErrorReply::new(
                ErrorCode::QueueFull,
                format!(
                    "{} requests pending, queue depth is {}; retry later",
                    queue.len(),
                    shared.config.queue_depth
                ),
            )
            .to_json();
        }
        queue.push_back(Job {
            request,
            digest,
            reply,
        });
        shared.work_ready.notify_one();
    }
    match response.recv() {
        Ok(response) => response,
        Err(_) => ErrorReply::new(ErrorCode::Internal, "scheduler dropped the request").to_json(),
    }
}

fn scheduler_loop(shared: &Arc<Shared>) {
    let threads = if shared.config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        shared.config.threads
    };
    loop {
        let batch: Vec<Job> = {
            let mut queue = lock(&shared.queue);
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let take = queue.len().min(shared.config.batch_max.max(1));
            queue.drain(..take).collect()
        };
        // Each pool job resolves to a response string — solve failures are
        // typed error payloads, never pool errors — so the `Err` arm only
        // fires if a solver panicked; those clients get `internal`.
        let results = run_indexed_pool(batch.len(), threads, |i| Ok(respond(shared, &batch[i])));
        match results {
            Ok(responses) => {
                for (job, response) in batch.iter().zip(responses) {
                    let _ = job.reply.send(response);
                }
            }
            Err(err) => {
                let reply =
                    ErrorReply::new(ErrorCode::Internal, format!("solver pool failed: {err}"))
                        .to_json();
                for job in &batch {
                    let _ = job.reply.send(reply.clone());
                }
            }
        }
    }
}

/// Answers one job through the cache; the returned string is a complete
/// response payload.
fn respond(shared: &Shared, job: &Job) -> String {
    let solved = shared.cache.get_or_solve(job.digest, || {
        solve_request(&job.request).map(|json| Arc::from(json.as_str()))
    });
    match solved {
        Ok((payload, cached)) => ok_response_json(&payload, cached, job.digest),
        Err(err) => ErrorReply::from_core(&err).to_json(),
    }
}

/// Resolves the trace, builds the instance, runs the heuristic and
/// renders the result object. The rendered string is what the cache
/// stores, so repeats are byte-identical by construction.
fn solve_request(request: &SolveRequest) -> CoreResult<String> {
    let mut trace = match &request.source {
        TraceSource::Inline(trace) => trace.clone(),
        TraceSource::Family { config, rank } => generate_trace(config, *rank)?,
    };
    if let Some(spec) = &request.cost_model {
        // Cost-model override: a fitted spec replaces whatever the trace
        // embeds, and an explicit `analytic` clears it — both before the
        // trace materializes durations into an instance.
        trace.cost_model = (!spec.is_analytic()).then(|| spec.clone());
    }
    let instance = trace.to_instance_scaled(request.factor)?;
    let model = match request.model {
        Some(model) => model,
        None => instance.model(),
    };
    let schedule = run_heuristic_with(&instance, request.heuristic, model)?;
    let metrics = ScheduleMetrics::of(&instance, &schedule);
    let result = Value::Object(vec![
        (
            "heuristic".to_string(),
            Value::Str(request.heuristic.name().to_string()),
        ),
        ("model".to_string(), Value::Str(model.to_string())),
        ("n_tasks".to_string(), Value::UInt(schedule.len() as u64)),
        (
            "makespan_us".to_string(),
            Value::UInt(metrics.makespan.ticks()),
        ),
        (
            "comm_idle_us".to_string(),
            Value::UInt(metrics.comm_idle.ticks()),
        ),
        (
            "comp_idle_us".to_string(),
            Value::UInt(metrics.comp_idle.ticks()),
        ),
        ("schedule".to_string(), schedule.to_value()),
    ]);
    serde_json::to_string(&result).map_err(|e| CoreError::Serialization(e.to_string()))
}
