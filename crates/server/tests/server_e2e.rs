//! End-to-end tests of the daemon over real TCP sockets.
//!
//! Every test binds port 0, talks to the daemon through [`Client`], and
//! asserts the ISSUE contract: all failures are typed errors over the
//! wire (never a dropped connection, never a panic), repeated requests
//! are answered byte-identically from the cache, and the daemon sustains
//! 64 concurrent in-flight requests.

use dts_chem::{Trace, TraceTask};
use dts_server::{Client, Server, ServerConfig, ServerHandle, SolveRequest, TraceSource};
use dts_workloads::{GeneratorConfig, WorkloadFamily};
use serde::{Deserialize, Value};

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(config).expect("bind server")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.local_addr()).expect("connect client")
}

fn family_request(seed: u64) -> SolveRequest {
    let mut config = GeneratorConfig::new(WorkloadFamily::from_name("md").unwrap());
    config.n_tasks = 12;
    config.seed = seed;
    dts_server::parse_request(&dts_server::protocol::request_to_value(&SolveRequest {
        source: TraceSource::Family { config, rank: 0 },
        heuristic: dts_heuristics::Heuristic::from_name("DOCPS").unwrap(),
        model: None,
        cost_model: None,
        factor: 1.5,
    }))
    .expect("valid request")
}

fn status_of(response: &Value) -> String {
    String::from_value(response.field("status").expect("status field")).expect("status string")
}

fn code_of(response: &Value) -> String {
    String::from_value(response.field("code").expect("code field")).expect("code string")
}

fn assert_error(response: &Value, code: &str) {
    assert_eq!(status_of(response), "error", "expected error: {response:?}");
    assert_eq!(code_of(response), code, "wrong code: {response:?}");
    let message =
        String::from_value(response.field("message").expect("message field")).expect("message");
    assert!(!message.is_empty(), "error replies carry a message");
}

fn sample_trace(n: usize) -> Trace {
    Trace {
        kernel: "HF".to_string(),
        rank: 0,
        tasks: (0..n)
            .map(|i| TraceTask {
                name: format!("t{i}"),
                kind: dts_chem::trace::TaskKind::Contraction,
                comm_micros: 50 + (i as u64 * 13) % 90,
                comp_micros: 40 + (i as u64 * 7) % 60,
                mem_bytes: 1_000 + (i as u64 * 311) % 5_000,
            })
            .collect(),
        model: None,
        cost_model: None,
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);

    // Not JSON at all.
    let raw = client.send_text("this is not json {").unwrap();
    let response = serde_json::from_str(&raw).unwrap();
    assert_error(&response, "bad-frame");

    // Valid JSON, wrong schema.
    let raw = client.send_text("[1,2,3]").unwrap();
    let response = serde_json::from_str(&raw).unwrap();
    assert_error(&response, "bad-request");

    // The connection is still usable for a real request.
    let response = client.send_request(&family_request(1)).unwrap();
    assert_eq!(status_of(&response), "ok");
    handle.shutdown();
}

#[test]
fn oversized_payloads_are_shed_without_dropping_the_connection() {
    let handle = start(ServerConfig {
        max_frame_bytes: 256,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);

    let huge = "x".repeat(100_000);
    let raw = client.send_text(&huge).unwrap();
    let response = serde_json::from_str(&raw).unwrap();
    assert_error(&response, "oversized-frame");

    // The oversized body was drained: the same connection still works.
    let response = client.send_request(&family_request(2)).unwrap();
    assert_eq!(status_of(&response), "ok");
    handle.shutdown();
}

#[test]
fn solve_failures_map_to_typed_codes() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);

    let cases: Vec<(String, &str)> = vec![
        (
            r#"{"family":{"family":"md","n_tasks":4,"seed":1},"heuristic":"NOPE"}"#.to_string(),
            "unknown-heuristic",
        ),
        (
            r#"{"family":{"family":"md","n_tasks":4,"seed":1},"heuristic":"OS","model":"warp"}"#
                .to_string(),
            "invalid-model",
        ),
        (
            r#"{"family":{"family":"no-such-family","n_tasks":4,"seed":1},"heuristic":"OS"}"#
                .to_string(),
            "bad-request",
        ),
        (
            r#"{"family":{"family":"md","n_tasks":4,"seed":1},"heuristic":"OS","factor":-2.0}"#
                .to_string(),
            "bad-request",
        ),
        (
            r#"{"family":{"family":"md","n_tasks":0,"seed":1},"heuristic":"OS"}"#.to_string(),
            "bad-request",
        ),
        (
            // Both sources at once.
            r#"{"trace":{"kernel":"HF","rank":0,"tasks":[]},"family":{"family":"md"},"heuristic":"OS"}"#
                .to_string(),
            "bad-request",
        ),
        (
            // Empty inline trace: rejected by the core layer.
            r#"{"trace":{"kernel":"HF","rank":0,"tasks":[]},"heuristic":"OS"}"#.to_string(),
            "invalid-trace",
        ),
    ];
    for (payload, code) in cases {
        let raw = client.send_text(&payload).unwrap();
        let response = serde_json::from_str(&raw).unwrap();
        assert_error(&response, code);
    }

    // Scaling the capacity below the largest task is detected as
    // infeasible at instance-build time.
    let mut infeasible = family_request(3);
    infeasible.factor = 0.25;
    let response = client.send_request(&infeasible).unwrap();
    assert_error(&response, "infeasible");
    handle.shutdown();
}

#[test]
fn task_ceiling_is_enforced_before_solving() {
    let handle = start(ServerConfig {
        max_tasks: 8,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);

    // A family request over the ceiling (the trace is never generated).
    let raw = client
        .send_text(r#"{"family":{"family":"md","n_tasks":9,"seed":1},"heuristic":"OS"}"#)
        .unwrap();
    let response = serde_json::from_str(&raw).unwrap();
    assert_error(&response, "task-ceiling");

    // An inline trace over the ceiling.
    let request = SolveRequest {
        source: TraceSource::Inline(sample_trace(9)),
        heuristic: dts_heuristics::Heuristic::from_name("OS").unwrap(),
        model: None,
        cost_model: None,
        factor: 2.0,
    };
    let response = client.send_request(&request).unwrap();
    assert_error(&response, "task-ceiling");

    // At the ceiling is fine.
    let request = SolveRequest {
        source: TraceSource::Inline(sample_trace(8)),
        heuristic: dts_heuristics::Heuristic::from_name("OS").unwrap(),
        model: None,
        cost_model: None,
        factor: 2.0,
    };
    let response = client.send_request(&request).unwrap();
    assert_eq!(status_of(&response), "ok");
    handle.shutdown();
}

#[test]
fn zero_depth_queue_sheds_every_request_with_queue_full() {
    let handle = start(ServerConfig {
        queue_depth: 0,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let response = client.send_request(&family_request(4)).unwrap();
    assert_error(&response, "queue-full");
    handle.shutdown();
}

#[test]
fn cache_hits_return_byte_identical_responses_without_resolving() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);

    let request = family_request(5);
    let payload = serde_json::to_string(&dts_server::protocol::request_to_value(&request)).unwrap();

    let cold = client.send_text(&payload).unwrap();
    let hot = client.send_text(&payload).unwrap();
    assert!(cold.contains("\"cached\":false"), "first solve is cold");
    assert!(hot.contains("\"cached\":true"), "second is a cache hit");
    assert_eq!(
        hot.replace("\"cached\":true", "\"cached\":false"),
        cold,
        "hit responses are byte-identical to the cold solve"
    );

    let stats = handle.cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 1), "exactly one solve");

    // The solved result is structurally sane.
    let response: Value = serde_json::from_str(&cold).unwrap();
    let result = response.field("result").unwrap();
    let n_tasks: u64 = Deserialize::from_value(result.field("n_tasks").unwrap()).unwrap();
    let makespan: u64 = Deserialize::from_value(result.field("makespan_us").unwrap()).unwrap();
    assert_eq!(n_tasks, 12);
    assert!(makespan > 0);
    handle.shutdown();
}

#[test]
fn inline_and_family_requests_of_the_same_instance_have_distinct_digests() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);

    let inline = SolveRequest {
        source: TraceSource::Inline(sample_trace(6)),
        heuristic: dts_heuristics::Heuristic::from_name("GG").unwrap(),
        model: None,
        cost_model: None,
        factor: 2.0,
    };
    let mut other_factor = inline.clone();
    other_factor.factor = 3.0;

    let a = client.send_request(&inline).unwrap();
    let b = client.send_request(&other_factor).unwrap();
    assert_eq!(status_of(&a), "ok");
    assert_eq!(status_of(&b), "ok");
    let da: String = Deserialize::from_value(a.field("digest").unwrap()).unwrap();
    let db: String = Deserialize::from_value(b.field("digest").unwrap()).unwrap();
    assert_ne!(da, db, "factor is part of the cache key");
    handle.shutdown();
}

#[test]
fn sixty_four_concurrent_in_flight_requests_are_sustained() {
    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();

    let shared_payload =
        serde_json::to_string(&dts_server::protocol::request_to_value(&family_request(7))).unwrap();

    let mut joins = Vec::new();
    for i in 0..64u64 {
        let shared_payload = shared_payload.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            // One request shared by every thread...
            let shared = client.send_text(&shared_payload).expect("shared request");
            // ...and one distinct per thread.
            let distinct = client
                .send_request(&family_request(1_000 + i))
                .expect("distinct request");
            (shared, distinct)
        }));
    }
    let outcomes: Vec<(String, Value)> = joins
        .into_iter()
        .map(|j| j.join().expect("worker thread"))
        .collect();

    let mut cold = 0;
    for (shared_raw, distinct) in &outcomes {
        let shared = serde_json::from_str(shared_raw).unwrap();
        assert_eq!(status_of(&shared), "ok", "shared request: {shared_raw}");
        assert_eq!(status_of(distinct), "ok", "distinct request");
        if shared_raw.contains("\"cached\":false") {
            cold += 1;
        }
    }
    assert_eq!(cold, 1, "the shared instance solved exactly once");

    // Every hit served the cold solve's bytes.
    let reference = &outcomes[0].0.replace("\"cached\":true", "\"cached\":false");
    for (shared_raw, _) in &outcomes {
        assert_eq!(
            &shared_raw.replace("\"cached\":true", "\"cached\":false"),
            reference
        );
    }

    let stats = handle.cache_stats();
    assert_eq!(
        (stats.misses, stats.hits),
        (65, 63),
        "64 distinct solves + 1 shared solve; 63 waiters hit"
    );
    handle.shutdown();
}

#[test]
fn shutdown_answers_admitted_requests_before_stopping() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);
    let response = client.send_request(&family_request(8)).unwrap();
    assert_eq!(status_of(&response), "ok");
    handle.shutdown();
    // A second shutdown via drop is a no-op (the handle is gone), and the
    // port is released: binding it again succeeds.
}
