//! Shared entry point of every benchmark binary.
//!
//! All fifteen bench targets go through [`run`] (via the
//! [`harness_main!`](crate::harness_main) macro) instead of criterion's
//! bare `criterion_main!`. On top of the statistics engine this adds:
//!
//! * one place that parses the CLI (so `--smoke`, `--baseline`,
//!   `--save-baseline` and typo'd flags behave identically across all
//!   benchmarks),
//! * a machine-readable `BENCH_<name>.json` export under
//!   `<target>/bench-reports/` after every run — the artifact CI uploads,
//! * the nonzero exit code when a `--baseline` comparison regresses.
//!
//! The smoke profile is wired through [`crate::bench_ranks`] and the
//! individual bench files' size tables, so `cargo bench -- --smoke`
//! finishes in CI time while exercising the same code paths.

use criterion::report::reports_root;
use criterion::BenchReport;
use serde::{Serialize, Value};
use std::path::{Path, PathBuf};

/// Runs a benchmark binary end to end: parse the CLI once, execute the
/// criterion groups, export the machine-readable report, and exit nonzero
/// if the run regressed against the requested baseline.
pub fn run(name: &str, groups: &[fn()]) {
    criterion::init_from_env();
    if criterion::smoke_mode() {
        println!("[{name}] smoke profile: reduced workloads, capped samples");
    }
    for group in groups {
        group();
    }
    let reports = criterion::take_reports();
    match export_report_in(&reports_root(), name, &reports) {
        Ok(path) => println!("[{name}] wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_{name}.json: {e}"),
    }
    if !criterion::final_summary() {
        std::process::exit(1);
    }
}

/// Renders the run document and writes it to `dir/BENCH_<name>.json`,
/// creating the directory. Split from [`run`] so tests can target a
/// scratch directory.
pub fn export_report_in(
    dir: &Path,
    name: &str,
    reports: &[BenchReport],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let document = Value::Object(vec![
        ("harness".into(), name.to_value()),
        ("smoke".into(), criterion::smoke_mode().to_value()),
        (
            "benchmarks".into(),
            Value::Array(reports.iter().map(Serialize::to_value).collect()),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&document)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, rendered + "\n")?;
    Ok(path)
}

/// Declares the `main` function of a bench target: runs the listed
/// criterion groups through the shared [`run`] harness under the given
/// harness name (conventionally the bench file's name).
///
/// ```ignore
/// criterion_group!(benches, bench);
/// dts_bench::harness_main!("fig3_order_mismatch", benches);
/// ```
#[macro_export]
macro_rules! harness_main {
    ($name:literal, $($group:path),+ $(,)?) => {
        fn main() {
            $crate::harness::run($name, &[$($group as fn()),+]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use criterion::{black_box, Criterion};

    #[test]
    fn export_writes_a_parseable_document() {
        let mut criterion = Criterion::default().sample_size(5);
        criterion.bench_function("harness/export_probe", |b| b.iter(|| black_box(3 * 3)));
        let reports = criterion::take_reports();
        let probe: Vec<BenchReport> = reports
            .into_iter()
            .filter(|r| r.id == "harness/export_probe")
            .collect();
        assert_eq!(probe.len(), 1, "exactly the probe report");

        let dir = std::env::temp_dir().join(format!("dts-bench-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = export_report_in(&dir, "unit_test", &probe).unwrap();
        assert!(path.ends_with("BENCH_unit_test.json"));
        let raw = std::fs::read_to_string(&path).unwrap();
        let value: Value = serde_json::from_str(&raw).unwrap();
        let benchmarks = match value.field("benchmarks").unwrap() {
            Value::Array(items) => items.clone(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(benchmarks.len(), 1);
        let summary = benchmarks[0].field("summary").unwrap();
        let mean = match summary.field("mean_ns").unwrap() {
            Value::Float(x) => *x,
            other => panic!("expected float mean, got {other:?}"),
        };
        assert!(mean >= 0.0);
        assert_eq!(
            summary.field("sample_size").unwrap(),
            &Value::UInt(5),
            "export carries the sample count"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
