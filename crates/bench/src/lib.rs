//! # dts-bench
//!
//! Experiment harness shared by the Criterion benchmarks. Each benchmark
//! target regenerates one table or figure of the paper: it computes the data
//! series with the functions of this library, prints them in the same layout
//! the paper reports (so that `cargo bench` output can be compared side by
//! side with the publication), and then measures a representative kernel
//! with Criterion.
//!
//! The default data sizes are scaled down (a handful of trace ranks instead
//! of 150) so that `cargo bench --workspace` finishes in minutes; set the
//! environment variable `DTS_BENCH_RANKS` to a larger value (up to 150) to
//! run the experiments at paper scale.

#![warn(missing_docs)]

pub mod harness;

use dts_analysis::experiment::{best_variant_experiment, heuristic_experiment};
use dts_analysis::report::experiment_to_markdown;
use dts_analysis::sweep::{capacity_factors, SweepConfig};
use dts_analysis::ExperimentRow;
use dts_chem::suite::{generate_partial_suite, SuiteConfig};
use dts_chem::{characterize, Kernel, Trace};
use dts_core::prelude::*;
use dts_heuristics::batch::BatchConfig;

/// Number of trace ranks used by the suite-level experiments. Controlled by
/// the `DTS_BENCH_RANKS` environment variable (default 4, the paper uses
/// 150; the `--smoke` profile drops to 1 unless the variable overrides it).
pub fn bench_ranks() -> usize {
    let default = if criterion::smoke_mode() { 1 } else { 4 };
    std::env::var("DTS_BENCH_RANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .clamp(1, 150)
}

/// Suite configuration used by the benchmarks: paper-scale topology but
/// reduced tile counts so a single rank stays a few hundred tasks.
pub fn bench_suite_config() -> SuiteConfig {
    let mut config = SuiteConfig::small();
    // Use a larger HF problem than the unit tests so each rank executes a
    // few hundred tasks, like the paper's traces.
    config.hf.n_shell_tiles = 90;
    config.ccsd.n_occ_tiles = 8;
    config.ccsd.n_virt_tiles = 14;
    config
}

/// Generates the benchmark trace suite for a kernel.
pub fn bench_traces(kernel: Kernel) -> Vec<Trace> {
    let ranks = bench_ranks();
    let mut config = bench_suite_config();
    if ranks > config.topology.n_processes() {
        // Paper-scale runs (DTS_BENCH_RANKS > 6) use the full Cascade
        // topology so that up to 150 distinct ranks exist.
        config.topology = dts_ga::Topology::cascade_10_nodes();
    }
    generate_partial_suite(kernel, &config, ranks)
}

/// The subset of capacity factors used by the quick benchmark runs (the full
/// paper sweep has nine points; three are enough to show the trend and keep
/// `cargo bench` fast).
pub fn quick_factors() -> Vec<f64> {
    vec![1.0, 1.5, 2.0]
}

/// Runs the Fig. 9 / Fig. 11 experiment (all heuristics across the capacity
/// sweep) for a kernel and prints the aggregated rows.
pub fn run_all_heuristics_experiment(kernel: Kernel, full_sweep: bool) -> Vec<ExperimentRow> {
    let traces = bench_traces(kernel);
    let config = SweepConfig {
        heuristics: dts_heuristics::Heuristic::ALL.to_vec(),
        factors: if full_sweep {
            capacity_factors()
        } else {
            quick_factors()
        },
    };
    let rows = heuristic_experiment(&traces, &config, 4).expect("experiment succeeds");
    println!(
        "{}",
        experiment_to_markdown(
            &format!(
                "{} — ratio to optimal of every heuristic ({} traces)",
                kernel.name(),
                traces.len()
            ),
            &rows
        )
    );
    rows
}

/// Runs the Fig. 10 / Fig. 12 / Fig. 13 experiment (best variant per
/// category) for a kernel, optionally in batches of 100 tasks, and prints
/// the aggregated rows.
pub fn run_best_variant_experiment(kernel: Kernel, batched: bool) -> Vec<ExperimentRow> {
    let traces = bench_traces(kernel);
    let batch = batched.then_some(BatchConfig { batch_size: 100 });
    let rows =
        best_variant_experiment(&traces, &quick_factors(), batch).expect("experiment succeeds");
    println!(
        "{}",
        experiment_to_markdown(
            &format!(
                "{} — best variant per category{} ({} traces)",
                kernel.name(),
                if batched { " (batches of 100)" } else { "" },
                traces.len()
            ),
            &rows
        )
    );
    rows
}

/// Prints the Fig. 8 workload characterization of a kernel's traces and
/// returns the per-trace characterizations.
pub fn run_characterization(kernel: Kernel) -> Vec<dts_chem::WorkloadCharacterization> {
    let traces = bench_traces(kernel);
    println!(
        "{} workload characteristics (ratios to OMIM):",
        kernel.name()
    );
    println!("| rank | tasks | sum comm | sum comp | max | sum | mc |");
    println!("|---|---|---|---|---|---|---|");
    let mut out = Vec::new();
    for trace in &traces {
        let c = characterize(trace).expect("characterization succeeds");
        println!(
            "| {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {} |",
            trace.rank,
            c.n_tasks,
            c.sum_comm_ratio,
            c.sum_comp_ratio,
            c.max_ratio,
            c.sum_ratio,
            c.min_capacity
        );
        out.push(c);
    }
    out
}

/// A small instance reused by the micro-benchmarks (Table 3 of the paper).
pub fn micro_instance() -> Instance {
    dts_core::instances::table3()
}

/// Builds an `n_tasks`-task instance by tiling a kernel's first bench trace
/// (the real per-task time/memory distribution of the chemistry workload)
/// until the target size is reached, at a capacity of `factor · mc`. Used
/// by the scale tiers of the overlap-strategy benchmarks, where synthetic
/// uniform instances would hide the duplex/stream contention patterns of
/// the real traces.
pub fn tiled_trace_instance(kernel: Kernel, n_tasks: usize, factor: f64) -> Result<Instance> {
    let base = bench_traces(kernel)
        .into_iter()
        .find(|t| !t.is_empty())
        .ok_or_else(|| CoreError::Internal("bench suite produced no non-empty trace".into()))?;
    let tasks = base
        .tasks
        .iter()
        .cycle()
        .take(n_tasks)
        .cloned()
        .collect::<Vec<_>>();
    let tiled = Trace {
        kernel: base.kernel.clone(),
        rank: base.rank,
        tasks,
        model: None,
        cost_model: None,
    };
    tiled.to_instance_scaled(factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ranks_is_bounded() {
        let n = bench_ranks();
        assert!((1..=150).contains(&n));
    }

    #[test]
    fn quick_experiments_produce_rows() {
        let rows = run_best_variant_experiment(Kernel::HartreeFock, false);
        assert!(!rows.is_empty());
        let characterizations = run_characterization(Kernel::HartreeFock);
        assert_eq!(
            characterizations.len(),
            bench_traces(Kernel::HartreeFock).len()
        );
    }
}
