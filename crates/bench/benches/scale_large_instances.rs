//! Scale scenario: the dynamic and corrected heuristics, the iterative
//! `lp.k` heuristic and batched scheduling on 1k–50k-task random
//! instances, plus a 100k/500k/1M-task MAMR/OOMAMR tier stressing the
//! candidate index's ratio machinery.
//!
//! The paper's evaluation (Figs. 9–13) stays below a few thousand tasks per
//! trace, but the engine must also hold up on production-sized batches. The
//! dynamic/corrected decision loops resolve each decision with O(log n)
//! threshold queries against a memory-indexed candidate structure
//! (`dts_core::index::CandidateIndex`) instead of scanning every remaining
//! task, and batched runs solve their batches on parallel workers; this
//! bench pins both wins (see the Performance section of the README for
//! recorded numbers). The large tier exists because the ratio query is the
//! index's hardest case: these instances are tie-heavy (tiny discrete
//! comm/comp/mem domains) with tight memory, exactly the workload that
//! degenerates naive max-ratio searches. Set `DTS_BENCH_SCALE_MAX` (tasks,
//! default 1000000) to cap the largest instance attempted.
//!
//! Scale benches are inherently noisier than the table replays (allocator
//! and cache behavior at hundreds of MB dominates), so both groups widen
//! their baseline-comparison allowance via `Criterion::noise_threshold`.

use criterion::{criterion_group, Criterion};
use dts_core::instances::random_instance_decoupled_memory;
use dts_heuristics::{
    run_heuristic, run_heuristic_batched, run_heuristic_batched_pooled, BatchConfig, Heuristic,
};
use dts_milp::{lp_k, LpKConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Relative mean drift tolerated by both scale groups before a baseline
/// comparison counts as a regression (on top of the CLI's own allowance,
/// whichever is larger).
const SCALE_NOISE_THRESHOLD: f64 = 6.0;

fn user_cap() -> Option<usize> {
    std::env::var("DTS_BENCH_SCALE_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
}

fn max_tasks() -> usize {
    let default = if criterion::smoke_mode() {
        // Smoke profile: the 1k instances exercise every code path in
        // milliseconds; 10k/50k are for real perf sessions.
        1_000
    } else {
        50_000
    };
    user_cap().unwrap_or(default)
}

fn max_tasks_large() -> usize {
    let default = if criterion::smoke_mode() {
        // The 100k tier runs in ~150 ms per heuristic — cheap enough for
        // CI, and it is the size the large-instance work is pinned at.
        100_000
    } else {
        1_000_000
    };
    user_cap().unwrap_or(default)
}

fn instance_for(n_tasks: usize) -> dts_core::Instance {
    // A tight capacity (1.2·mc) keeps memory the binding constraint, so
    // the candidate index actually gates on memory instead of
    // degenerating to FIFO.
    let mut rng = StdRng::seed_from_u64(n_tasks as u64);
    random_instance_decoupled_memory(&mut rng, n_tasks, 1.2)
}

fn bench(c: &mut Criterion) {
    let cap = max_tasks();
    for n_tasks in [1_000usize, 10_000, 50_000] {
        if n_tasks > cap {
            continue;
        }
        let instance = instance_for(n_tasks);
        for heuristic in [Heuristic::LCMR, Heuristic::MAMR, Heuristic::OOLCMR] {
            c.bench_function(
                &format!("scale/{}_{}tasks", heuristic.name(), n_tasks),
                |b| {
                    b.iter(|| {
                        run_heuristic(&instance, heuristic)
                            .expect("heuristic runs")
                            .makespan(&instance)
                    })
                },
            );
        }
        // The iterative MILP heuristic: 250 windows per 1k tasks at k = 4.
        c.bench_function(&format!("scale/lp4_{n_tasks}tasks"), |b| {
            b.iter(|| {
                lp_k(&instance, LpKConfig { window: 4 })
                    .expect("lp.4 runs")
                    .makespan(&instance)
            })
        });
        // Batched scheduling (paper batch size 100): the batches are solved
        // speculatively in parallel and stitched; the single-worker variant
        // is kept as the reference point for the parallel speedup.
        let config = BatchConfig { batch_size: 100 };
        c.bench_function(&format!("scale/batched_OOLCMR_{n_tasks}tasks"), |b| {
            b.iter(|| {
                run_heuristic_batched(&instance, Heuristic::OOLCMR, config)
                    .expect("batched heuristic runs")
                    .makespan(&instance)
            })
        });
        c.bench_function(
            &format!("scale/batched_OOLCMR_1worker_{n_tasks}tasks"),
            |b| {
                b.iter(|| {
                    run_heuristic_batched_pooled(&instance, Heuristic::OOLCMR, config, 1)
                        .expect("batched heuristic runs")
                        .makespan(&instance)
                })
            },
        );
    }
}

/// The 100k–1M tier: only the two maximum-acceleration heuristics, whose
/// selection rule exercises the ratio trees — the communication criteria
/// are already covered (and cheaper) above.
fn bench_large(c: &mut Criterion) {
    let cap = max_tasks_large();
    for n_tasks in [100_000usize, 500_000, 1_000_000] {
        if n_tasks > cap {
            continue;
        }
        let instance = instance_for(n_tasks);
        for heuristic in [Heuristic::MAMR, Heuristic::OOMAMR] {
            c.bench_function(
                &format!("scale/{}_{}tasks", heuristic.name(), n_tasks),
                |b| {
                    b.iter(|| {
                        run_heuristic(&instance, heuristic)
                            .expect("heuristic runs")
                            .makespan(&instance)
                    })
                },
            );
        }
    }
}

criterion_group! {
    name = benches;
    // One sample per 10k/50k instance keeps a full run bearable; the smoke
    // profile only touches the 1k instances, where ten samples are cheap
    // and give the regression gate a real confidence interval.
    config = Criterion::default()
        .sample_size(if criterion::smoke_mode() { 10 } else { 1 })
        .noise_threshold(SCALE_NOISE_THRESHOLD);
    targets = bench
}
criterion_group! {
    name = benches_large;
    // Five samples keep the smoke tier's confidence interval meaningful at
    // ~150 ms per pass; full runs take two samples so a 1M pass still
    // finishes in seconds.
    config = Criterion::default()
        .sample_size(if criterion::smoke_mode() { 5 } else { 2 })
        .noise_threshold(SCALE_NOISE_THRESHOLD);
    targets = bench_large
}
dts_bench::harness_main!("scale_large_instances", benches, benches_large);
