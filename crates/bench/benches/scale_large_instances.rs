//! Scale scenario: the dynamic and corrected heuristics on 1k/10k/50k-task
//! random instances.
//!
//! The paper's evaluation (Figs. 9–13) stays below a few thousand tasks per
//! trace, but the engine must also hold up on production-sized batches. The
//! seed implementation rescanned every ever-committed task on each memory
//! probe (cubic in tasks for the dynamic loops); the incremental engine
//! keeps a running held-memory counter and a pruned release queue, so these
//! runs complete in seconds rather than minutes. Set `DTS_BENCH_SCALE_MAX`
//! (tasks, default 50000) to cap the largest instance attempted.

use criterion::{criterion_group, criterion_main, Criterion};
use dts_core::instances::random_instance_decoupled_memory;
use dts_heuristics::{run_heuristic, Heuristic};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn max_tasks() -> usize {
    std::env::var("DTS_BENCH_SCALE_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

fn bench(c: &mut Criterion) {
    let cap = max_tasks();
    for n_tasks in [1_000usize, 10_000, 50_000] {
        if n_tasks > cap {
            continue;
        }
        // A tight capacity (1.2·mc) keeps memory the binding constraint, so
        // the release queue actually works instead of degenerating to FIFO.
        let mut rng = StdRng::seed_from_u64(n_tasks as u64);
        let instance = random_instance_decoupled_memory(&mut rng, n_tasks, 1.2);
        for heuristic in [Heuristic::LCMR, Heuristic::MAMR, Heuristic::OOLCMR] {
            c.bench_function(
                &format!("scale/{}_{}tasks", heuristic.name(), n_tasks),
                |b| {
                    b.iter(|| {
                        run_heuristic(&instance, heuristic)
                            .expect("heuristic runs")
                            .makespan(&instance)
                    })
                },
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(1);
    targets = bench
}
criterion_main!(benches);
