//! Model accuracy: predicted vs simulated makespan error for the three
//! cost-model backends (analytic, history, regression) on the chemistry
//! traces and the corpus families.
//!
//! For each workload the bench calibrates the fitted backends from the
//! workload's own analytic observations ([`observations_of`]), materializes
//! an instance per backend with [`Instance::with_cost_model`], and compares
//! the makespan the paper's best dynamic heuristic reaches under the
//! modeled durations against the makespan under the native analytic
//! durations. The error table is printed in basis points (analytic is the
//! identity, so its row pins 0 and guards the normalization invariant);
//! the timed kernel is the full materialize → schedule → makespan pipeline
//! the `--cost-model` CLI path runs.
//!
//! [`observations_of`]: dts_core::perfmodel::observations_of
//! [`Instance::with_cost_model`]: dts_core::Instance::with_cost_model

use criterion::{criterion_group, Criterion};
use dts_bench::bench_traces;
use dts_chem::Kernel;
use dts_core::perfmodel::{observations_of, CostModelSpec};
use dts_core::Instance;
use dts_heuristics::{run_heuristic, Heuristic};
use dts_workloads::families::{generate_trace, GeneratorConfig, WorkloadFamily};

/// Fitted-model materialization re-walks every task, so allocator noise is
/// the same order as on the other corpus benches.
const NOISE_THRESHOLD: f64 = 6.0;

/// The accuracy probe uses the paper's best dynamic heuristic: it is the
/// variant whose decisions a miscalibrated model would actually steer.
const HEURISTIC: Heuristic = Heuristic::OOMAMR;

/// Per-family capacity factors of the corpus scenarios (bench-local, like
/// `corpus_scale`, so scenario changes surface as explicit bench diffs).
fn capacity_factor(family: WorkloadFamily) -> f64 {
    match family {
        WorkloadFamily::MdLike => 24.0,
        WorkloadFamily::DenseLa => 1.25,
        WorkloadFamily::TieHeavy => 2.0,
        WorkloadFamily::MemoryCliff => 1.0,
        WorkloadFamily::TransferBound => 1.5,
    }
}

/// One analytic instance per workload: the first bench trace of each
/// chemistry kernel plus every corpus family at the corpus capacity.
fn workloads() -> Vec<(String, Instance)> {
    let mut out = Vec::new();
    for (label, kernel) in [("hf", Kernel::HartreeFock), ("ccsd", Kernel::Ccsd)] {
        let trace = bench_traces(kernel)
            .into_iter()
            .next()
            .expect("the bench suite has at least one rank");
        let instance = trace
            .to_instance_scaled(1.25)
            .expect("the bench factor is feasible");
        out.push((label.to_string(), instance));
    }
    let n_tasks = if criterion::smoke_mode() { 500 } else { 2_000 };
    for family in WorkloadFamily::ALL {
        let mut config = GeneratorConfig::new(family);
        config.n_tasks = n_tasks;
        config.seed = 42;
        let instance = generate_trace(&config, 0)
            .expect("seeded generation succeeds")
            .to_instance_scaled(capacity_factor(family))
            .expect("corpus factors are feasible");
        out.push((family.to_string(), instance));
    }
    out
}

/// The three backends, calibrated against the given workload's own
/// analytic durations. Self-calibration bounds the *representation* error
/// of each backend (bucketing for history, the linear collapse for
/// regression) rather than cross-trace generalization, which the corpus
/// scenarios cover.
fn backends(instance: &Instance) -> Vec<(&'static str, CostModelSpec)> {
    let observations = observations_of(instance);
    vec![
        ("analytic", CostModelSpec::Analytic),
        (
            "history",
            observations
                .fit_history()
                .expect("bench workloads have transfer and compute samples"),
        ),
        (
            "regression",
            observations
                .fit_regression()
                .expect("bench workloads have transfer and compute samples"),
        ),
    ]
}

fn makespan_under(instance: &Instance) -> u64 {
    run_heuristic(instance, HEURISTIC)
        .expect("the heuristic runs")
        .makespan(instance)
        .ticks()
}

fn bench(c: &mut Criterion) {
    println!(
        "model_accuracy: |modeled - analytic| makespan error under {}, in basis points",
        HEURISTIC.name()
    );
    for (workload, instance) in workloads() {
        let actual = makespan_under(&instance);
        for (backend, spec) in backends(&instance) {
            let modeled = instance
                .with_cost_model(&spec)
                .expect("an analytic instance accepts any valid model");
            let predicted = makespan_under(&modeled);
            let err_bp = predicted.abs_diff(actual) * 10_000 / actual;
            println!(
                "model_accuracy: {workload:<14} {backend:<10} analytic_us={actual} \
                 predicted_us={predicted} abs_rel_err_bp={err_bp}"
            );
            c.bench_function(&format!("model_accuracy/{workload}_{backend}"), |b| {
                b.iter(|| {
                    let modeled = instance
                        .with_cost_model(&spec)
                        .expect("an analytic instance accepts any valid model");
                    makespan_under(&modeled)
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    // Mirrors the corpus benches: five smoke samples for meaningful
    // confidence intervals, two full-run samples so the 2k-task grid
    // finishes in seconds.
    config = Criterion::default()
        .sample_size(if criterion::smoke_mode() { 5 } else { 2 })
        .noise_threshold(NOISE_THRESHOLD);
    targets = bench
}
dts_bench::harness_main!("model_accuracy", benches);
