//! Serving-layer load benchmark: the `dts serve` daemon under a
//! 64-connection load generator.
//!
//! The figure benches measure the decision engine in isolation; this one
//! measures the whole serving path — framing, admission, batching onto
//! the worker pool, instance caching — the way a client sees it. An
//! in-process daemon is started on a loopback port-0 socket and driven
//! by 64 concurrent connections, each issuing a fixed sequence of
//! corpus-family requests. The first round is all cold solves; later
//! rounds repeat the same keys so the cache-hit path dominates.
//!
//! Three series go through the shared harness, one sample per round:
//!
//! * `server/request_p50` — per-round median request latency,
//! * `server/request_p99` — per-round 99th-percentile request latency,
//! * `server/throughput_ns_per_req` — round wall time divided by
//!   requests completed. Inverted throughput, so "smaller is better"
//!   points the baseline gate the right way.
//!
//! Everything runs on loopback with deterministic seeds; the remaining
//! noise is thread scheduling, which the widened noise threshold
//! absorbs.

use criterion::{criterion_group, Criterion};
use dts_heuristics::Heuristic;
use dts_server::{Client, Server, ServerConfig, SolveRequest, TraceSource};
use dts_workloads::{GeneratorConfig, WorkloadFamily};
use std::net::SocketAddr;
use std::time::Instant;

/// The acceptance bar from the serving-layer issue: the daemon must
/// sustain this many concurrent in-flight requests.
const CLIENTS: usize = 64;

/// Loopback latency jitter under thread oversubscription is far larger
/// than the engine benches' measurement noise; mirror the scale benches'
/// widened allowance.
const SERVER_NOISE_THRESHOLD: f64 = 6.0;

/// Tasks per generated instance: large enough that a cold solve does
/// real scheduling work, small enough that 64 cold solves stay cheap in
/// the smoke gate.
const TASKS_PER_REQUEST: usize = 48;

fn request(seed: u64) -> SolveRequest {
    let mut config = GeneratorConfig::new(WorkloadFamily::MdLike);
    config.n_tasks = TASKS_PER_REQUEST;
    config.seed = seed;
    SolveRequest {
        source: TraceSource::Family { config, rank: 0 },
        heuristic: Heuristic::DOCPS,
        model: None,
        cost_model: None,
        factor: 1.5,
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted_ns.is_empty());
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

/// One load round: `CLIENTS` connections, each sending
/// `requests_per_client` requests back to back, every request's latency
/// recorded. Seeds are per-slot, so every round re-asks the same keys.
fn load_round(addr: SocketAddr, requests_per_client: usize) -> Vec<f64> {
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_idx| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect to the daemon");
                let mut latencies = Vec::with_capacity(requests_per_client);
                for slot in 0..requests_per_client {
                    let request = request((client_idx * requests_per_client + slot) as u64);
                    let start = Instant::now();
                    let response = client.send_request(&request).expect("request round-trips");
                    latencies.push(start.elapsed().as_nanos() as f64);
                    let status = response.field("status").expect("response carries a status");
                    assert!(
                        matches!(status, serde::Value::Str(s) if s == "ok"),
                        "daemon refused a load request: {response:?}"
                    );
                }
                latencies
            })
        })
        .collect();
    workers
        .into_iter()
        .flat_map(|worker| worker.join().expect("load thread completes"))
        .collect()
}

fn bench(c: &mut Criterion) {
    // Smoke keeps the whole run to a few hundred requests; the full run
    // gathers enough rounds for stable tails.
    let (rounds, requests_per_client) = if criterion::smoke_mode() {
        (4, 2)
    } else {
        (10, 6)
    };

    let handle = Server::start(ServerConfig::default()).expect("start the daemon");
    let addr = handle.local_addr();

    let mut p50_ns = Vec::with_capacity(rounds);
    let mut p99_ns = Vec::with_capacity(rounds);
    let mut ns_per_request = Vec::with_capacity(rounds);
    let mut total_requests = 0usize;
    let mut total_wall_ns = 0.0f64;

    for _round in 0..rounds {
        let wall = Instant::now();
        let mut latencies = load_round(addr, requests_per_client);
        let wall_ns = wall.elapsed().as_nanos() as f64;
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        p50_ns.push(percentile(&latencies, 0.50));
        p99_ns.push(percentile(&latencies, 0.99));
        ns_per_request.push(wall_ns / latencies.len() as f64);
        total_requests += latencies.len();
        total_wall_ns += wall_ns;
    }

    let stats = handle.cache_stats();
    println!(
        "server: {CLIENTS} connections x {requests_per_client} requests x {rounds} rounds \
         ({total_requests} total, {:.0} req/s overall), cache {} misses / {} hits",
        total_requests as f64 / (total_wall_ns / 1e9),
        stats.misses,
        stats.hits,
    );
    // Round 1 is all cold solves, every later round is all hits.
    assert_eq!(
        stats.misses as usize,
        CLIENTS * requests_per_client,
        "cold round should populate every key exactly once"
    );

    c.bench_recorded("server/request_p50", &p50_ns);
    c.bench_recorded("server/request_p99", &p99_ns);
    c.bench_recorded("server/throughput_ns_per_req", &ns_per_request);

    handle.shutdown();
}

criterion_group! {
    name = benches;
    // Sample counts are the load rounds above; `bench_recorded` bypasses
    // the timing loop, so only the noise threshold matters here.
    config = Criterion::default().noise_threshold(SERVER_NOISE_THRESHOLD);
    targets = bench
}
dts_bench::harness_main!("server", benches);
