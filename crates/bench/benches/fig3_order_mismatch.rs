//! Fig. 3 / Table 2 / Proposition 1: with a memory constraint, the optimal
//! communication and computation orders may differ.

use criterion::{criterion_group, Criterion};
use dts_core::instances::table2;
use dts_flowshop::exact::{optimal_free_order, optimal_same_order};

fn report() {
    let inst = table2();
    let same = optimal_same_order(&inst);
    let free = optimal_free_order(&inst);
    println!("Fig. 3 — Table 2 instance, capacity 10");
    println!(
        "  best permutation schedule (same order on both resources): {}",
        same.makespan
    );
    println!(
        "  best general schedule (orders may differ):                {}",
        free.makespan
    );
    println!("  (paper reports 23 and 22; our left-shifted executor finds a 22.5 permutation schedule, see EXPERIMENTS.md)");
}

fn bench(c: &mut Criterion) {
    report();
    let inst = table2();
    c.bench_function("fig3/optimal_same_order_table2", |b| {
        b.iter(|| optimal_same_order(&inst).makespan)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("fig3_order_mismatch", benches);
