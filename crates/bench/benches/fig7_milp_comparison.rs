//! Fig. 7: the proposed heuristics against the iterative MILP heuristic
//! lp.k (k = 3..6) on a single HF trace across memory capacities.

use criterion::{criterion_group, Criterion};
use dts_analysis::experiment::lp_comparison_experiment;
use dts_bench::bench_traces;
use dts_chem::Kernel;
use dts_heuristics::Heuristic;
use dts_milp::{lp_k, LpKConfig};

fn report() {
    let trace = bench_traces(Kernel::HartreeFock)
        .into_iter()
        .next()
        .unwrap();
    println!(
        "Fig. 7 — single HF trace (rank {}, {} tasks, mc = {})",
        trace.rank,
        trace.len(),
        trace.min_capacity()
    );
    let series = lp_comparison_experiment(
        &trace,
        &[1.0, 1.25, 1.5, 1.75, 2.0],
        &[
            Heuristic::OS,
            Heuristic::OOSIM,
            Heuristic::SCMR,
            Heuristic::OOLCMR,
            Heuristic::OOSCMR,
        ],
    )
    .unwrap();
    println!("| series | factor | ratio to optimal |");
    println!("|---|---|---|");
    for (label, factor, ratio) in series {
        println!("| {label} | {factor:.3} | {ratio:.4} |");
    }
}

fn bench(c: &mut Criterion) {
    report();
    let trace = bench_traces(Kernel::HartreeFock)
        .into_iter()
        .next()
        .unwrap();
    let instance = trace.to_instance_scaled(1.5).unwrap();
    c.bench_function("fig7/lp4_single_hf_trace", |b| {
        b.iter(|| {
            lp_k(&instance, LpKConfig { window: 4 })
                .unwrap()
                .makespan(&instance)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("fig7_milp_comparison", benches);
