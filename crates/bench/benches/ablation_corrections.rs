//! Ablation: what the dynamic-correction step buys on top of each static
//! order (not a paper figure — a design-choice ablation listed in
//! DESIGN.md). Compares every static order executed as-is against the same
//! order with dynamic corrections.

use criterion::{criterion_group, Criterion};
use dts_bench::bench_traces;
use dts_chem::Kernel;
use dts_core::simulate::simulate_sequence;
use dts_flowshop::johnson::johnson_makespan;
use dts_heuristics::corrected::{run_corrected_with_order, CorrectionCriterion};
use dts_heuristics::static_order::static_order;
use dts_heuristics::Heuristic;

fn report() {
    let trace = bench_traces(Kernel::Ccsd).into_iter().next().unwrap();
    let instance = trace.to_instance_scaled(1.25).unwrap();
    let omim = johnson_makespan(&instance);
    println!("Ablation — corrections on top of each static order (one CCSD trace, 1.25 mc)");
    println!("| static order | ratio as-is | ratio with corrections |");
    println!("|---|---|---|");
    for h in [
        Heuristic::OS,
        Heuristic::OOSIM,
        Heuristic::IOCMS,
        Heuristic::DOCPS,
        Heuristic::IOCCS,
        Heuristic::DOCCS,
        Heuristic::GG,
        Heuristic::BP,
    ] {
        let order = static_order(&instance, h).unwrap();
        let plain = simulate_sequence(&instance, &order)
            .unwrap()
            .makespan(&instance);
        let corrected =
            run_corrected_with_order(&instance, &order, CorrectionCriterion::MaximumAcceleration)
                .unwrap()
                .makespan(&instance);
        println!(
            "| {} | {:.4} | {:.4} |",
            h.name(),
            plain.ratio(omim),
            corrected.ratio(omim)
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let trace = bench_traces(Kernel::Ccsd).into_iter().next().unwrap();
    let instance = trace.to_instance_scaled(1.25).unwrap();
    let order = static_order(&instance, Heuristic::OOSIM).unwrap();
    c.bench_function("ablation/corrections_on_johnson_order", |b| {
        b.iter(|| {
            run_corrected_with_order(&instance, &order, CorrectionCriterion::MaximumAcceleration)
                .unwrap()
                .makespan(&instance)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("ablation_corrections", benches);
