//! Table 6: favorable situations per heuristic category — mean ratio of the
//! best variant of each category as the memory capacity grows.

use criterion::{criterion_group, Criterion};
use dts_analysis::experiment::category_means;
use dts_bench::{bench_traces, quick_factors};
use dts_chem::Kernel;
use dts_heuristics::{best_in_category, HeuristicCategory};

fn report() {
    for kernel in [Kernel::HartreeFock, Kernel::Ccsd] {
        let traces = bench_traces(kernel);
        let means = category_means(&traces, &quick_factors()).unwrap();
        println!(
            "Table 6 — {} mean ratio of each category by capacity factor",
            kernel.name()
        );
        for (factor, labels) in means {
            let line: Vec<String> = labels.iter().map(|(l, m)| format!("{l}={m:.4}")).collect();
            println!("  {factor:.3} x mc: {}", line.join("  "));
        }
    }
}

fn bench(c: &mut Criterion) {
    report();
    let trace = bench_traces(Kernel::Ccsd).into_iter().next().unwrap();
    let instance = trace.to_instance_scaled(1.25).unwrap();
    c.bench_function("table6/best_dynamic_ccsd", |b| {
        b.iter(|| best_in_category(&instance, HeuristicCategory::Dynamic).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("table6_favorable", benches);
