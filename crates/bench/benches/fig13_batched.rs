//! Fig. 13: heuristics applied in batches of 100 tasks (the scheduler only
//! sees a limited window of independent tasks), best variant per category.

use criterion::{criterion_group, Criterion};
use dts_bench::{bench_traces, run_best_variant_experiment};
use dts_chem::Kernel;
use dts_heuristics::batch::{run_heuristic_batched, BatchConfig};
use dts_heuristics::Heuristic;

fn bench(c: &mut Criterion) {
    run_best_variant_experiment(Kernel::HartreeFock, true);
    run_best_variant_experiment(Kernel::Ccsd, true);
    let trace = bench_traces(Kernel::HartreeFock)
        .into_iter()
        .next()
        .unwrap();
    let instance = trace.to_instance_scaled(1.5).unwrap();
    c.bench_function("fig13/oolcmr_batched_hf", |b| {
        b.iter(|| {
            run_heuristic_batched(
                &instance,
                Heuristic::OOLCMR,
                BatchConfig { batch_size: 100 },
            )
            .unwrap()
            .makespan(&instance)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("fig13_batched", benches);
