//! Fig. 10: best variant of each heuristic category on the HF traces.

use criterion::{criterion_group, Criterion};
use dts_bench::{bench_traces, run_best_variant_experiment};
use dts_chem::Kernel;
use dts_heuristics::{best_in_category, HeuristicCategory};

fn bench(c: &mut Criterion) {
    run_best_variant_experiment(Kernel::HartreeFock, false);
    let trace = bench_traces(Kernel::HartreeFock)
        .into_iter()
        .next()
        .unwrap();
    let instance = trace.to_instance_scaled(1.5).unwrap();
    c.bench_function("fig10/best_static_dynamic_hf", |b| {
        b.iter(|| best_in_category(&instance, HeuristicCategory::StaticDynamic).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("fig10_hf_best_variants", benches);
