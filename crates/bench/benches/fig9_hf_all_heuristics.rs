//! Fig. 9: every heuristic on the HF traces across the memory-capacity
//! sweep (distributions of the ratio to optimal).

use criterion::{criterion_group, Criterion};
use dts_bench::{bench_traces, run_all_heuristics_experiment};
use dts_chem::Kernel;
use dts_heuristics::{run_heuristic, Heuristic};

fn bench(c: &mut Criterion) {
    run_all_heuristics_experiment(Kernel::HartreeFock, false);
    let trace = bench_traces(Kernel::HartreeFock)
        .into_iter()
        .next()
        .unwrap();
    let instance = trace.to_instance_scaled(1.25).unwrap();
    c.bench_function("fig9/oolcmr_one_hf_trace", |b| {
        b.iter(|| {
            run_heuristic(&instance, Heuristic::OOLCMR)
                .unwrap()
                .makespan(&instance)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("fig9_hf_all_heuristics", benches);
