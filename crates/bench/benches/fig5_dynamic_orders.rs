//! Fig. 5 / Table 4: schedules of the dynamic heuristics with a memory
//! capacity of 6.

use criterion::{criterion_group, Criterion};
use dts_core::instances::table4;
use dts_heuristics::{run_heuristic, Heuristic};

fn report() {
    let inst = table4();
    println!("Fig. 5 — Table 4 instance, capacity 6");
    for h in [Heuristic::LCMR, Heuristic::SCMR, Heuristic::MAMR] {
        let sched = run_heuristic(&inst, h).unwrap();
        let order: Vec<String> = sched
            .comm_order()
            .iter()
            .map(|id| inst.task(*id).name.clone())
            .collect();
        println!(
            "  {:<5} order {:?} makespan {}",
            h.name(),
            order,
            sched.makespan(&inst)
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let inst = table4();
    c.bench_function("fig5/dynamic_heuristics_table4", |b| {
        b.iter(|| {
            [Heuristic::LCMR, Heuristic::SCMR, Heuristic::MAMR]
                .iter()
                .map(|&h| run_heuristic(&inst, h).unwrap().makespan(&inst))
                .max()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
dts_bench::harness_main!("fig5_dynamic_orders", benches);
