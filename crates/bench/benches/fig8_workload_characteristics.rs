//! Fig. 8: workload characteristics of the HF and CCSD traces (sum of
//! communication, sum of computation, max and sum — ratios to OMIM).

use criterion::{criterion_group, Criterion};
use dts_bench::{bench_traces, run_characterization};
use dts_chem::{characterize, Kernel};

fn report() {
    run_characterization(Kernel::HartreeFock);
    run_characterization(Kernel::Ccsd);
}

fn bench(c: &mut Criterion) {
    report();
    let trace = bench_traces(Kernel::Ccsd).into_iter().next().unwrap();
    c.bench_function("fig8/characterize_ccsd_trace", |b| {
        b.iter(|| characterize(&trace).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("fig8_workload_characteristics", benches);
