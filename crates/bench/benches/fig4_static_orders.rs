//! Fig. 4 / Table 3: schedules of the static-order heuristics with a memory
//! capacity of 6 (OMIM = 12).

use criterion::{criterion_group, Criterion};
use dts_core::instances::table3;
use dts_flowshop::johnson::johnson_makespan;
use dts_heuristics::{run_heuristic, Heuristic};

fn report() {
    let inst = table3();
    println!(
        "Fig. 4 — Table 3 instance, capacity 6 (OMIM = {})",
        johnson_makespan(&inst)
    );
    for h in [
        Heuristic::OOSIM,
        Heuristic::IOCMS,
        Heuristic::DOCPS,
        Heuristic::IOCCS,
        Heuristic::DOCCS,
    ] {
        let sched = run_heuristic(&inst, h).unwrap();
        let order: Vec<String> = sched
            .comm_order()
            .iter()
            .map(|id| inst.task(*id).name.clone())
            .collect();
        println!(
            "  {:<6} order {:?} makespan {}",
            h.name(),
            order,
            sched.makespan(&inst)
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let inst = table3();
    c.bench_function("fig4/all_static_heuristics_table3", |b| {
        b.iter(|| {
            [
                Heuristic::OOSIM,
                Heuristic::IOCMS,
                Heuristic::DOCPS,
                Heuristic::IOCCS,
                Heuristic::DOCCS,
            ]
            .iter()
            .map(|&h| run_heuristic(&inst, h).unwrap().makespan(&inst))
            .max()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
dts_bench::harness_main!("fig4_static_orders", benches);
