//! Fig. 6 / Table 5: schedules of the static-order-with-dynamic-corrections
//! heuristics with a memory capacity of 9 (Johnson order B C D E A).

use criterion::{criterion_group, Criterion};
use dts_core::instances::table5;
use dts_flowshop::johnson::johnson_order;
use dts_heuristics::{run_heuristic, Heuristic};

fn report() {
    let inst = table5();
    let johnson: Vec<String> = johnson_order(&inst)
        .iter()
        .map(|id| inst.task(*id).name.clone())
        .collect();
    println!("Fig. 6 — Table 5 instance, capacity 9, OMIM order {johnson:?}");
    for h in [Heuristic::OOLCMR, Heuristic::OOSCMR, Heuristic::OOMAMR] {
        let sched = run_heuristic(&inst, h).unwrap();
        let order: Vec<String> = sched
            .comm_order()
            .iter()
            .map(|id| inst.task(*id).name.clone())
            .collect();
        println!(
            "  {:<7} order {:?} makespan {}",
            h.name(),
            order,
            sched.makespan(&inst)
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let inst = table5();
    c.bench_function("fig6/corrected_heuristics_table5", |b| {
        b.iter(|| {
            [Heuristic::OOLCMR, Heuristic::OOSCMR, Heuristic::OOMAMR]
                .iter()
                .map(|&h| run_heuristic(&inst, h).unwrap().makespan(&inst))
                .max()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
dts_bench::harness_main!("fig6_corrected_orders", benches);
