//! Overlap strategies: the four execution models (explicit half-duplex,
//! duplex, k-stream, implicit overlap) under the dynamic and corrected
//! heuristics on tiled HF/CCSD traces.
//!
//! The paper's case study measures the *explicit* model only; Snippet-style
//! runtime schemes (duplex directions, k concurrent streams, fused implicit
//! overlap) change both the timeline and — through earlier memory releases —
//! the decisions of the dynamic heuristics. This bench prints a paper-style
//! comparison table (makespan ratio of each model to the explicit baseline
//! per kernel and heuristic) and then pins the engine's throughput on each
//! model at the 10k tier (smoke and full) and the 100k tier (full runs
//! only). Set `DTS_BENCH_SCALE_MAX` (tasks, default 100000) to cap the
//! largest tier attempted.

use criterion::{criterion_group, Criterion};
use dts_bench::tiled_trace_instance;
use dts_chem::Kernel;
use dts_core::ExecutionModel;
use dts_heuristics::{run_heuristic_with, Heuristic};

/// Same widened allowance as the other scale benches: allocator and cache
/// behavior dominates at tens of thousands of tasks.
const SCALE_NOISE_THRESHOLD: f64 = 6.0;

const HEURISTICS: [Heuristic; 3] = [Heuristic::LCMR, Heuristic::MAMR, Heuristic::OOLCMR];

const MODELS: [(&str, ExecutionModel); 4] = [
    ("explicit", ExecutionModel::Explicit),
    ("duplex", ExecutionModel::Duplex),
    ("streams4", ExecutionModel::Streams { k: 4 }),
    ("implicit", ExecutionModel::IMPLICIT_FULL),
];

const KERNELS: [Kernel; 2] = [Kernel::HartreeFock, Kernel::Ccsd];

fn user_cap() -> Option<usize> {
    std::env::var("DTS_BENCH_SCALE_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
}

fn max_tasks() -> usize {
    let default = if criterion::smoke_mode() {
        // The 10k tier is the smallest size where the channel bookkeeping
        // of the stream models is visible over the decision loop; it runs
        // in tens of milliseconds per heuristic, cheap enough for CI.
        10_000
    } else {
        100_000
    };
    user_cap().unwrap_or(default)
}

/// Prints the Table 3-style strategy comparison: the makespan of every
/// model relative to the explicit baseline, per kernel and heuristic, on
/// the 10k-task tiled traces.
fn print_strategy_comparison(n_tasks: usize) {
    println!("overlap strategies — makespan ratio to the explicit model ({n_tasks} tasks):");
    println!("| kernel | heuristic | explicit | duplex | streams:4 | implicit |");
    println!("|---|---|---|---|---|---|");
    for kernel in KERNELS {
        let instance = tiled_trace_instance(kernel, n_tasks, 1.5).expect("tiled trace converts");
        for heuristic in HEURISTICS {
            let explicit = run_heuristic_with(&instance, heuristic, ExecutionModel::Explicit)
                .expect("explicit run succeeds")
                .makespan(&instance);
            let mut row = format!("| {} | {} | 1.0000", kernel.name(), heuristic.name());
            for (_, model) in &MODELS[1..] {
                let makespan = run_heuristic_with(&instance, heuristic, *model)
                    .expect("model run succeeds")
                    .makespan(&instance);
                row.push_str(&format!(" | {:.4}", makespan.ratio(explicit)));
            }
            println!("{row} |");
        }
    }
}

fn bench(c: &mut Criterion) {
    let cap = max_tasks();
    print_strategy_comparison(10_000.min(cap.max(1)));
    for n_tasks in [10_000usize, 100_000] {
        if n_tasks > cap {
            println!("overlap: skipping the {n_tasks}-task tier (cap {cap})");
            continue;
        }
        for kernel in KERNELS {
            let instance =
                tiled_trace_instance(kernel, n_tasks, 1.5).expect("tiled trace converts");
            let kname = kernel.name().to_lowercase();
            for heuristic in HEURISTICS {
                for (mname, model) in MODELS {
                    c.bench_function(
                        &format!(
                            "overlap/{kname}_{}_{mname}_{n_tasks}tasks",
                            heuristic.name()
                        ),
                        |b| {
                            b.iter(|| {
                                run_heuristic_with(&instance, heuristic, model)
                                    .expect("heuristic runs")
                                    .makespan(&instance)
                            })
                        },
                    );
                }
            }
        }
    }
}

criterion_group! {
    name = benches;
    // Five samples keep the smoke tier's confidence interval meaningful at
    // tens of milliseconds per pass; full runs take two samples so the
    // 100k tier finishes in seconds.
    config = Criterion::default()
        .sample_size(if criterion::smoke_mode() { 5 } else { 2 })
        .noise_threshold(SCALE_NOISE_THRESHOLD);
    targets = bench
}
dts_bench::harness_main!("overlap_strategies", benches);
