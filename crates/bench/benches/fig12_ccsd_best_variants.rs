//! Fig. 12: best variant of each heuristic category on the CCSD traces.

use criterion::{criterion_group, Criterion};
use dts_bench::{bench_traces, run_best_variant_experiment};
use dts_chem::Kernel;
use dts_heuristics::{best_in_category, HeuristicCategory};

fn bench(c: &mut Criterion) {
    run_best_variant_experiment(Kernel::Ccsd, false);
    let trace = bench_traces(Kernel::Ccsd).into_iter().next().unwrap();
    let instance = trace.to_instance_scaled(1.5).unwrap();
    c.bench_function("fig12/best_static_dynamic_ccsd", |b| {
        b.iter(|| best_in_category(&instance, HeuristicCategory::StaticDynamic).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("fig12_ccsd_best_variants", benches);
