//! Table 1 / Theorem 2: the 3-Partition → DT reduction. Builds reduced
//! instances, constructs the tight schedule from a known partition and
//! verifies the target makespan is met exactly.

use criterion::{criterion_group, Criterion};
use dts_flowshop::reduction::{three_partition_to_dt, ThreePartitionInstance};

fn report() {
    let input = ThreePartitionInstance::new(vec![5, 4, 3, 6, 4, 2]).unwrap();
    let reduced = three_partition_to_dt(&input);
    println!(
        "Table 1 — reduction from 3-Partition (m = {}, b = {}, x = {})",
        input.m(),
        input.target(),
        input.max_value()
    );
    println!(
        "  tasks: {}   capacity: {}   target makespan L: {}",
        reduced.instance.len(),
        reduced.instance.capacity(),
        reduced.target_makespan
    );
    let triplets = input.solve().unwrap();
    let schedule = reduced.schedule_from_partition(&triplets);
    println!(
        "  schedule built from the partition has makespan {} (feasible: {})",
        schedule.makespan(&reduced.instance),
        dts_core::feasibility::is_feasible(&reduced.instance, &schedule)
    );
}

fn bench(c: &mut Criterion) {
    report();
    let input = ThreePartitionInstance::new(vec![5, 4, 3, 6, 4, 2, 7, 3, 2, 5, 4, 3]).unwrap();
    c.bench_function("table1/reduction_and_solve_m4", |b| {
        b.iter(|| {
            let reduced = three_partition_to_dt(&input);
            let triplets = input.solve().unwrap();
            reduced
                .schedule_from_partition(&triplets)
                .makespan(&reduced.instance)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
dts_bench::harness_main!("table1_np_reduction", benches);
