//! Corpus scale: generator throughput and scheduling throughput on the
//! synthetic workload families.
//!
//! Two question the HF/CCSD benches cannot answer:
//!
//! * how fast do the `dts_workloads` generators themselves produce
//!   traces at scale (they gate every corpus and property run), and
//! * how does the decision engine behave on the corpus *shapes* — the
//!   near-uniform MD flood, the memory-cliff near-sequential regime, the
//!   transfer-bound link-contention regime — rather than on the paper's
//!   chemistry tiling?
//!
//! Smoke runs pin the 2k-task tier; full runs add the 20k tier. Set
//! `DTS_BENCH_SCALE_MAX` (tasks) to cap the largest tier attempted.

use criterion::{criterion_group, Criterion};
use dts_core::ExecutionModel;
use dts_heuristics::{run_heuristic_with, Heuristic};
use dts_workloads::families::{generate_trace, GeneratorConfig, WorkloadFamily};

/// Same widened allowance as the other scale benches: allocator and cache
/// behavior dominates at tens of thousands of tasks.
const SCALE_NOISE_THRESHOLD: f64 = 6.0;

/// One representative heuristic per category tier: the submission-order
/// baseline, the strongest static order and the paper's best dynamic
/// variant.
const HEURISTICS: [Heuristic; 3] = [Heuristic::OS, Heuristic::LCMR, Heuristic::OOMAMR];

/// The corpus execution models with filename-safe labels (mirrors the
/// overlap_strategies bench).
const MODELS: [(&str, ExecutionModel); 4] = [
    ("explicit", ExecutionModel::Explicit),
    ("duplex", ExecutionModel::Duplex),
    ("streams4", ExecutionModel::Streams { k: 4 }),
    ("implicit", ExecutionModel::IMPLICIT_FULL),
];

fn user_cap() -> Option<usize> {
    std::env::var("DTS_BENCH_SCALE_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
}

fn max_tasks() -> usize {
    let default = if criterion::smoke_mode() {
        // 2k tasks per family keeps the whole family x heuristic x model
        // grid in tens of milliseconds per sample — cheap enough for the
        // CI smoke gate while still dominated by the decision loop.
        2_000
    } else {
        20_000
    };
    user_cap().unwrap_or(default)
}

/// The per-family capacity factors of the corpus scenarios, kept here in
/// bench-local form so a corpus-scenario change shows up as an explicit
/// bench diff rather than silently moving the baselines.
fn capacity_factor(family: WorkloadFamily) -> f64 {
    match family {
        WorkloadFamily::MdLike => 24.0,
        WorkloadFamily::DenseLa => 1.25,
        WorkloadFamily::TieHeavy => 2.0,
        WorkloadFamily::MemoryCliff => 1.0,
        WorkloadFamily::TransferBound => 1.5,
    }
}

fn bench(c: &mut Criterion) {
    let cap = max_tasks();
    for n_tasks in [2_000usize, 20_000] {
        if n_tasks > cap {
            println!("corpus_scale: skipping the {n_tasks}-task tier (cap {cap})");
            continue;
        }
        for family in WorkloadFamily::ALL {
            let mut config = GeneratorConfig::new(family);
            config.n_tasks = n_tasks;
            config.seed = 42;
            // Generator throughput: the full trace, including task
            // materialization and the family's shaping passes.
            c.bench_function(&format!("corpus/generate_{family}_{n_tasks}tasks"), |b| {
                b.iter(|| {
                    generate_trace(&config, 0)
                        .expect("seeded generation succeeds")
                        .len()
                })
            });
            let instance = generate_trace(&config, 0)
                .expect("seeded generation succeeds")
                .to_instance_scaled(capacity_factor(family))
                .expect("corpus factors are feasible");
            for heuristic in HEURISTICS {
                for (mname, model) in MODELS {
                    c.bench_function(
                        &format!(
                            "corpus/{family}_{}_{mname}_{n_tasks}tasks",
                            heuristic.name()
                        ),
                        |b| {
                            b.iter(|| {
                                run_heuristic_with(&instance, heuristic, model)
                                    .expect("heuristic runs")
                                    .makespan(&instance)
                            })
                        },
                    );
                }
            }
        }
    }
}

criterion_group! {
    name = benches;
    // Mirrors the other scale benches: five smoke samples for meaningful
    // confidence intervals, two full-run samples so the 20k tier finishes
    // in seconds.
    config = Criterion::default()
        .sample_size(if criterion::smoke_mode() { 5 } else { 2 })
        .noise_threshold(SCALE_NOISE_THRESHOLD);
    targets = bench
}
dts_bench::harness_main!("corpus_scale", benches);
