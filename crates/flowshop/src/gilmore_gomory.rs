//! Gilmore–Gomory sequencing for the 2-machine *no-wait* flowshop.
//!
//! The paper's `GG` heuristic (Section 4.4) orders tasks with the classical
//! Gilmore–Gomory algorithm: in the no-wait flowshop, the makespan of a
//! sequence equals the total communication time plus the "non-overlap" cost
//! accumulated between adjacent tasks, which turns the sequencing problem
//! into a solvable special case of the travelling salesman problem.
//!
//! Mapping used here (with `a_i` = communication time, `b_i` = computation
//! time and a dummy job with `a = b = 0` closing the tour): the cost of
//! scheduling `j` immediately after `i` is `max(0, b_i - a_j)`, and the
//! no-wait makespan of a sequence is
//! `sum_i a_i + sum_(i -> j) max(0, b_i - a_j) + b_last`.
//!
//! The algorithm proceeds exactly as sketched in the paper: build the
//! minimum-cost assignment by rank-matching the sorted `b` values with the
//! sorted `a` values, then greedily patch the resulting cycles with
//! minimum-cost interchanges between adjacent ranks until the successor
//! function forms a single tour.

use dts_core::prelude::*;

/// Returns the Gilmore–Gomory task order for `instance`.
///
/// The order minimizes the *no-wait* 2-machine flowshop makespan. It ignores
/// the memory capacity (like the paper's `GG` heuristic, which applies the
/// sequence under the capacity constraint afterwards).
pub fn gilmore_gomory_order(instance: &Instance) -> Vec<TaskId> {
    let n = instance.len();
    if n <= 1 {
        return instance.task_ids();
    }

    // Job n is the dummy job (a = b = 0) that closes the tour.
    let a_of = |j: usize| -> Time {
        if j == n {
            Time::ZERO
        } else {
            instance.task(TaskId(j)).comm_time
        }
    };
    let b_of = |j: usize| -> Time {
        if j == n {
            Time::ZERO
        } else {
            instance.task(TaskId(j)).comp_time
        }
    };
    // Rank-matching assignment: the job with the k-th smallest b gets as
    // successor the job with the k-th smallest a.
    let mut by_b: Vec<usize> = (0..=n).collect();
    by_b.sort_by_key(|&j| (b_of(j), j));
    let mut by_a: Vec<usize> = (0..=n).collect();
    by_a.sort_by_key(|&j| (a_of(j), j));
    let mut successor = vec![0usize; n + 1];
    for k in 0..=n {
        successor[by_b[k]] = by_a[k];
    }

    // Union-find over the cycles of the successor permutation.
    let mut cycle_of = vec![usize::MAX; n + 1];
    let mut n_cycles = 0;
    for start in 0..=n {
        if cycle_of[start] != usize::MAX {
            continue;
        }
        let mut j = start;
        while cycle_of[j] == usize::MAX {
            cycle_of[j] = n_cycles;
            j = successor[j];
        }
        n_cycles += 1;
    }

    if n_cycles > 1 {
        // Candidate interchanges between adjacent ranks: interchange `k`
        // swaps the successors of the elements with b-ranks `k` and `k + 1`,
        // merging their cycles. Its cost depends only on the sorted rank
        // values: the overlap of [A_k, A_{k+1}] and [B_k, B_{k+1}], where
        // A_k (resp. B_k) is the k-th smallest communication (resp.
        // computation) time.
        let rank_a: Vec<Time> = by_a.iter().map(|&j| a_of(j)).collect();
        let rank_b: Vec<Time> = by_b.iter().map(|&j| b_of(j)).collect();
        let interchange_cost = |k: usize| -> Time {
            let low = rank_a[k].max(rank_b[k]);
            let high = rank_a[k + 1].min(rank_b[k + 1]);
            high.saturating_sub(low)
        };

        // Kruskal selection of a minimum-cost set of interchanges connecting
        // every cycle (the "minimal spanning set" of Gilmore–Gomory).
        let mut parent: Vec<usize> = (0..n_cycles).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut candidates: Vec<(Time, usize)> = (0..n).map(|k| (interchange_cost(k), k)).collect();
        candidates.sort();
        let mut selected: Vec<usize> = Vec::with_capacity(n_cycles - 1);
        for (_, k) in candidates {
            let (p, q) = (by_b[k], by_b[k + 1]);
            let (cp, cq) = (
                find(&mut parent, cycle_of[p]),
                find(&mut parent, cycle_of[q]),
            );
            if cp != cq {
                parent[cp] = cq;
                selected.push(k);
                if selected.len() == n_cycles - 1 {
                    break;
                }
            }
        }

        // Apply the selected interchanges in an order that preserves the
        // selected total cost. Two interchanges interact only when they share
        // a rank (k and k + 1): if A_{k+1} >= B_{k+1}, interchange k + 1 must
        // be applied before interchange k, otherwise k before k + 1. These
        // pairwise constraints form a DAG along the rank axis; a simple
        // topological order (Kahn) realizes them.
        selected.sort_unstable();
        let pos: std::collections::HashMap<usize, usize> =
            selected.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        let mut indegree = vec![0usize; selected.len()];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); selected.len()];
        for (i, &k) in selected.iter().enumerate() {
            if let Some(&j) = pos.get(&(k + 1)) {
                // Shared rank is k + 1.
                if rank_a[k + 1] >= rank_b[k + 1] {
                    // Apply interchange k + 1 (node j) before k (node i).
                    adj[j].push(i);
                    indegree[i] += 1;
                } else {
                    adj[i].push(j);
                    indegree[j] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..selected.len()).filter(|&i| indegree[i] == 0).collect();
        let mut applied = 0;
        while let Some(i) = queue.pop() {
            let k = selected[i];
            successor.swap(by_b[k], by_b[k + 1]);
            applied += 1;
            for &next in &adj[i] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    queue.push(next);
                }
            }
        }
        debug_assert_eq!(
            applied,
            selected.len(),
            "interchange constraints form a DAG"
        );
    }

    // Read the tour starting after the dummy job.
    let mut order = Vec::with_capacity(n);
    let mut j = successor[n];
    while j != n {
        order.push(TaskId(j));
        j = successor[j];
    }
    debug_assert_eq!(
        order.len(),
        n,
        "patched successor function must be a single tour"
    );
    order
}

/// Makespan of `order` in the *no-wait* 2-machine flowshop (each task starts
/// computing immediately when its transfer completes). Used to evaluate the
/// quality of the Gilmore–Gomory sequence in isolation from the memory
/// constraint.
pub fn no_wait_makespan(instance: &Instance, order: &[TaskId]) -> Time {
    let mut start = Time::ZERO;
    let mut makespan = Time::ZERO;
    for (pos, &id) in order.iter().enumerate() {
        let t = instance.task(id);
        makespan = start + t.comm_time + t.comp_time;
        if pos + 1 < order.len() {
            let next = instance.task(order[pos + 1]);
            // The next transfer may not start before the link is free, and
            // must be timed so that the next computation starts exactly when
            // its transfer ends while the processor is free.
            start = start + t.comm_time + t.comp_time.saturating_sub(next.comm_time);
        }
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::instances::{random_instance, table3, RandomInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn brute_force_no_wait(inst: &Instance) -> Time {
        let mut best = Time::MAX;
        let mut perm = inst.task_ids();
        fn rec(inst: &Instance, perm: &mut Vec<TaskId>, k: usize, best: &mut Time) {
            if k == perm.len() {
                let m = no_wait_makespan(inst, perm);
                if m < *best {
                    *best = m;
                }
                return;
            }
            for i in k..perm.len() {
                perm.swap(k, i);
                rec(inst, perm, k + 1, best);
                perm.swap(k, i);
            }
        }
        rec(inst, &mut perm, 0, &mut best);
        best
    }

    #[test]
    fn no_wait_makespan_hand_check() {
        // Table 3, order B C A D:
        // B starts 0, finishes comm 1, comp [1,4). C must start so that its
        // comp starts when B's comp ends: start C = 0 + 1 + max(0, 3-4) = 1?
        // comp C would start at 1+4 = 5 > 4: fine (no-wait only requires the
        // task's own comp to directly follow its comm; the processor is free).
        let inst = table3();
        let order: Vec<TaskId> = ["B", "C", "A", "D"]
            .iter()
            .map(|n| {
                inst.iter()
                    .find(|(_, t)| &t.name == n)
                    .map(|(id, _)| id)
                    .unwrap()
            })
            .collect();
        // start B = 0; start C = 0 + 1 + max(0, 3 - 4) = 1; C spans [1, 9).
        // start A = 1 + 4 + max(0, 4 - 3) = 6; A spans [6, 11).
        // start D = 6 + 3 + max(0, 2 - 2) = 9; D spans [9, 12).
        assert_eq!(no_wait_makespan(&inst, &order), Time::units_int(12));
    }

    #[test]
    fn gg_is_optimal_for_no_wait_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in 2..=7usize {
            for _ in 0..8 {
                let inst = random_instance(
                    &mut rng,
                    RandomInstanceConfig {
                        n_tasks: n,
                        ..Default::default()
                    },
                );
                let gg = gilmore_gomory_order(&inst);
                assert_eq!(gg.len(), n);
                let gg_makespan = no_wait_makespan(&inst, &gg);
                let best = brute_force_no_wait(&inst);
                assert_eq!(
                    gg_makespan, best,
                    "GG not optimal on {:?}: {} vs {}",
                    inst, gg_makespan, best
                );
            }
        }
    }

    #[test]
    fn gg_order_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [1usize, 2, 3, 10, 40] {
            let inst = random_instance(
                &mut rng,
                RandomInstanceConfig {
                    n_tasks: n,
                    ..Default::default()
                },
            );
            let order = gilmore_gomory_order(&inst);
            let mut sorted: Vec<usize> = order.iter().map(|t| t.index()).collect();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_task_instance() {
        let inst = dts_core::InstanceBuilder::new()
            .capacity(MemSize::from_bytes(10))
            .task_units("only", 2.0, 5.0, 2)
            .build()
            .unwrap();
        assert_eq!(gilmore_gomory_order(&inst), vec![TaskId(0)]);
        assert_eq!(no_wait_makespan(&inst, &[TaskId(0)]), Time::units_int(7));
    }
}
