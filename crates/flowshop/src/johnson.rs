//! Johnson's rule for the 2-machine flowshop (Algorithm 1 of the paper).
//!
//! With unlimited memory, the data-transfer problem is exactly the 2-machine
//! flowshop: the communication time is the processing time on the first
//! machine and the computation time the processing time on the second.
//! Johnson's rule orders the tasks optimally; its makespan is the `OMIM`
//! (*optimal makespan, infinite memory*) lower bound against which every
//! heuristic of the paper is normalized.

use dts_core::prelude::*;
use dts_core::simulate::simulate_sequence_infinite;

/// Returns the Johnson order for `instance`.
///
/// Compute-intensive tasks (`CP >= CM`) come first, sorted by non-decreasing
/// communication time; communication-intensive tasks follow, sorted by
/// non-increasing computation time. Ties keep the submission order (the sort
/// is stable), matching the deterministic behaviour expected by the paper's
/// examples.
pub fn johnson_order(instance: &Instance) -> Vec<TaskId> {
    let mut s1: Vec<TaskId> = Vec::new();
    let mut s2: Vec<TaskId> = Vec::new();
    for (id, task) in instance.iter() {
        if task.comp_time >= task.comm_time {
            s1.push(id);
        } else {
            s2.push(id);
        }
    }
    s1.sort_by_key(|id| instance.task(*id).comm_time);
    s2.sort_by_key(|id| std::cmp::Reverse(instance.task(*id).comp_time));
    s1.extend(s2);
    s1
}

/// Builds the (infinite-memory) schedule produced by Algorithm 1.
pub fn johnson_schedule(instance: &Instance) -> Schedule {
    let order = johnson_order(instance);
    simulate_sequence_infinite(instance, &order)
        .expect("johnson_order is a permutation of the instance's tasks")
}

/// The `OMIM` lower bound: optimal makespan of the infinite-memory
/// relaxation.
pub fn johnson_makespan(instance: &Instance) -> Time {
    johnson_schedule(instance).makespan(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::instances::{
        random_instance, table2, table3, table4, table5, RandomInstanceConfig,
    };
    use dts_core::simulate::sequence_makespan_infinite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table3_johnson_order_and_makespan() {
        // S1 = {B, C} by increasing comm, S2 = {A, D} by decreasing comp:
        // B C A D, makespan 12 (Fig. 4a).
        let inst = table3();
        let order = johnson_order(&inst);
        let names: Vec<&str> = order
            .iter()
            .map(|id| inst.task(*id).name.as_str())
            .collect();
        assert_eq!(names, vec!["B", "C", "A", "D"]);
        assert_eq!(johnson_makespan(&inst), Time::units_int(12));
    }

    #[test]
    fn table4_johnson_makespan() {
        // S1 = {B, C}, S2 = {A, D} by decreasing comp → B C A D.
        // comm: B[0,1) C[1,5) A[5,8) D[8,13); comp: B[1,7) C[7,13) A[13,15) D[15,16).
        let inst = table4();
        let order = johnson_order(&inst);
        let names: Vec<&str> = order
            .iter()
            .map(|id| inst.task(*id).name.as_str())
            .collect();
        assert_eq!(names, vec!["B", "C", "A", "D"]);
        assert_eq!(johnson_makespan(&inst), Time::units_int(16));
    }

    #[test]
    fn table5_johnson_order() {
        // S1 = {B, C} by increasing comm; S2 = {A, D, E} by decreasing comp:
        // D (4), E (2), A (1) → B C D E A.
        // (The caption of Fig. 6 prints "BCDAE"; the schedules shown in the
        // figure are only reproduced by the order B C D E A, which is what
        // Algorithm 1 yields — see the fig6 tests in dts-heuristics.)
        let inst = table5();
        let order = johnson_order(&inst);
        let names: Vec<&str> = order
            .iter()
            .map(|id| inst.task(*id).name.as_str())
            .collect();
        assert_eq!(names, vec!["B", "C", "D", "E", "A"]);
    }

    #[test]
    fn table2_omim() {
        // Johnson on Table 2: S1 = {A(0,5), C(1,6), D(3,7)} sorted by comm →
        // A C D; S2 = {B(4,3), E(6,0.5), F(7,0.5)} by decreasing comp → B E F
        // (stable for the tie between E and F).
        let inst = table2();
        let order = johnson_order(&inst);
        let names: Vec<&str> = order
            .iter()
            .map(|id| inst.task(*id).name.as_str())
            .collect();
        assert_eq!(names, vec!["A", "C", "D", "B", "E", "F"]);
        // comm: A 0, C[0,1) D[1,4) B[4,8) E[8,14) F[14,21)
        // comp: A[0,5) C[5,11) D[11,18) B[18,21) E[21,21.5) F[21.5,22)
        assert_eq!(johnson_makespan(&inst), Time::units(22.0));
    }

    #[test]
    fn johnson_is_optimal_against_brute_force() {
        // Exhaustive check of Theorem 1 on random instances of size <= 7.
        let mut rng = StdRng::seed_from_u64(2024);
        for n in 2..=7usize {
            for _ in 0..10 {
                let inst = random_instance(
                    &mut rng,
                    RandomInstanceConfig {
                        n_tasks: n,
                        ..Default::default()
                    },
                );
                let johnson = johnson_makespan(&inst);
                let mut best = Time::MAX;
                let mut perm: Vec<TaskId> = inst.task_ids();
                permute(&mut perm, 0, &mut |order| {
                    let m = sequence_makespan_infinite(&inst, order).unwrap();
                    if m < best {
                        best = m;
                    }
                });
                assert_eq!(johnson, best, "instance {:?}", inst);
            }
        }
    }

    #[test]
    fn johnson_schedule_is_feasible_for_unbounded_capacity() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let inst = random_instance(&mut rng, RandomInstanceConfig::default());
            // Re-interpret with unbounded capacity so the memory check is
            // irrelevant to feasibility.
            let unbounded = inst.with_capacity(MemSize::UNBOUNDED).unwrap();
            let sched = johnson_schedule(&unbounded);
            assert!(dts_core::feasibility::is_feasible(&unbounded, &sched));
            assert!(sched.is_permutation_schedule());
        }
    }

    #[test]
    fn omim_at_least_resource_lower_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let inst = random_instance(&mut rng, RandomInstanceConfig::default());
            let stats = inst.stats();
            assert!(johnson_makespan(&inst) >= stats.resource_lower_bound());
            assert!(johnson_makespan(&inst) <= stats.sequential_upper_bound());
        }
    }

    fn permute<F: FnMut(&[TaskId])>(order: &mut Vec<TaskId>, k: usize, f: &mut F) {
        if k == order.len() {
            f(order);
            return;
        }
        for i in k..order.len() {
            order.swap(k, i);
            permute(order, k + 1, f);
            order.swap(k, i);
        }
    }
}
