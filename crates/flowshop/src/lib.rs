//! # dts-flowshop
//!
//! Flowshop-theoretic building blocks for the data-transfer ordering problem:
//!
//! * [`johnson`] — Johnson's rule for the 2-machine flowshop, which solves
//!   the infinite-memory case optimally (Algorithm 1 of the paper) and
//!   provides the `OMIM` lower bound used by every experiment;
//! * [`lemma`] — the exchange argument of Lemma 1, exposed as executable
//!   predicates (used by property tests to validate the optimality proof);
//! * [`gilmore_gomory`] — the Gilmore–Gomory sequencing algorithm for the
//!   2-machine *no-wait* flowshop, used as the `GG` static heuristic;
//! * [`exact`] — exhaustive and branch-and-bound exact solvers for small
//!   instances, both for permutation schedules (same order on both
//!   resources) and for general schedules (orders may differ, Proposition 1);
//! * [`reduction`] — the 3-Partition → DT reduction of Theorem 2 (Table 1),
//!   with a verifier that maps feasible tight schedules back to partitions.

#![warn(missing_docs)]

pub mod exact;
pub mod gilmore_gomory;
pub mod johnson;
pub mod lemma;
pub mod reduction;

pub use exact::{optimal_free_order, optimal_same_order, ExactSolution};
pub use gilmore_gomory::gilmore_gomory_order;
pub use johnson::{johnson_makespan, johnson_order, johnson_schedule};
pub use reduction::{three_partition_to_dt, ThreePartitionInstance};
