//! Executable form of the exchange argument (Lemma 1 of the paper).
//!
//! Lemma 1 states that swapping two *contiguous* tasks `A`, `B` of an
//! infinite-memory schedule cannot improve the makespan when one of three
//! conditions holds. The paper uses it to prove the optimality of Johnson's
//! rule (Theorem 1). This module exposes the conditions as predicates and the
//! swap experiment itself, so property tests can check the lemma on random
//! task pairs — effectively machine-checking the inequality chains of the
//! proof.

use dts_core::prelude::*;

/// The three sufficient conditions of Lemma 1 under which swapping
/// consecutive tasks `(a, b)` into `(b, a)` does not improve the makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LemmaCase {
    /// Both compute intensive and `CM_A <= CM_B`.
    BothComputeIntensive,
    /// Both communication intensive and `CP_A >= CP_B`.
    BothCommunicationIntensive,
    /// `A` compute intensive, `B` communication intensive.
    MixedAComputeBCommunication,
}

/// Returns which case of Lemma 1 (if any) applies to the ordered pair
/// `(a, b)`, i.e. `a` scheduled immediately before `b`.
pub fn lemma_case(a: &Task, b: &Task) -> Option<LemmaCase> {
    let a_compute = a.comp_time >= a.comm_time;
    let b_compute = b.comp_time >= b.comm_time;
    if a_compute && b_compute && a.comm_time <= b.comm_time {
        Some(LemmaCase::BothComputeIntensive)
    } else if !a_compute && !b_compute && a.comp_time >= b.comp_time {
        Some(LemmaCase::BothCommunicationIntensive)
    } else if a_compute && !b_compute {
        Some(LemmaCase::MixedAComputeBCommunication)
    } else {
        None
    }
}

/// Completion state after scheduling a pair of tasks starting from resource
/// availability `(t1, t2)` (link, processor) in the given order, with
/// unlimited memory. Returns `(link_available, cpu_available)` afterwards.
pub fn schedule_pair(t1: Time, t2: Time, first: &Task, second: &Task) -> (Time, Time) {
    let comm_first_end = t1 + first.comm_time;
    let comp_first_start = comm_first_end.max(t2);
    let comp_first_end = comp_first_start + first.comp_time;
    let comm_second_end = comm_first_end + second.comm_time;
    let comp_second_start = comm_second_end.max(comp_first_end);
    let comp_second_end = comp_second_start + second.comp_time;
    (comm_second_end, comp_second_end)
}

/// The statement of Lemma 1 for a concrete pair and initial state: swapping
/// `(a, b)` into `(b, a)` does not *decrease* the completion time on the
/// computation resource (the link completion is identical in both orders).
///
/// Returns `true` when the lemma's conclusion holds, i.e. the swapped order
/// finishes no earlier than the original order would require — phrased as in
/// the paper: `SCOMP(B) + CP_B <= S'COMP(A) + CP_A`.
pub fn swap_does_not_improve(t1: Time, t2: Time, a: &Task, b: &Task) -> bool {
    let (_, original_cpu) = schedule_pair(t1, t2, a, b);
    let (_, swapped_cpu) = schedule_pair(t1, t2, b, a);
    original_cpu <= swapped_cpu
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(comm: u64, comp: u64) -> Task {
        Task::new(
            "t",
            Time::units_int(comm),
            Time::units_int(comp),
            MemSize::from_bytes(comm.max(1)),
        )
    }

    #[test]
    fn case_detection() {
        // Both compute intensive, CM_A <= CM_B.
        assert_eq!(
            lemma_case(&task(1, 3), &task(2, 5)),
            Some(LemmaCase::BothComputeIntensive)
        );
        // Both communication intensive, CP_A >= CP_B.
        assert_eq!(
            lemma_case(&task(5, 3), &task(4, 2)),
            Some(LemmaCase::BothCommunicationIntensive)
        );
        // Mixed.
        assert_eq!(
            lemma_case(&task(1, 3), &task(4, 2)),
            Some(LemmaCase::MixedAComputeBCommunication)
        );
        // No case: A communication intensive before B compute intensive.
        assert_eq!(lemma_case(&task(4, 2), &task(1, 3)), None);
        // No case: both compute intensive but CM_A > CM_B.
        assert_eq!(lemma_case(&task(3, 4), &task(1, 3)), None);
    }

    #[test]
    fn pair_scheduling_matches_hand_computation() {
        // A(3,2) then B(1,3) from (0,0): comm A [0,3), comp A [3,5),
        // comm B [3,4), comp B [5,8).
        let (link, cpu) = schedule_pair(Time::ZERO, Time::ZERO, &task(3, 2), &task(1, 3));
        assert_eq!(link, Time::units_int(4));
        assert_eq!(cpu, Time::units_int(8));
    }

    #[test]
    fn known_beneficial_swap_detected_when_no_case_applies() {
        // B(1,3) should come before A(3,2) (Johnson); the pair (A, B) has no
        // lemma case and swapping it *does* improve.
        let a = task(3, 2);
        let b = task(1, 3);
        assert_eq!(lemma_case(&a, &b), None);
        assert!(!swap_does_not_improve(Time::ZERO, Time::ZERO, &a, &b));
    }

    /// The `(CM_A, CP_A, CM_B, CP_B, t1, t2)` experiment domain — the same
    /// ranges the original proptest strategies (and the seeded loops that
    /// replaced them) used.
    fn experiment_domain() -> impl microcheck::Gen<Value = (u64, u64, u64, u64, u64, u64)> {
        use microcheck::gens::u64_in;
        (
            u64_in(0..=29),
            u64_in(0..=29),
            u64_in(0..=29),
            u64_in(0..=29),
            u64_in(0..=19),
            u64_in(0..=19),
        )
    }

    /// Exhaustive machine-check of Lemma 1 at zero offsets: whenever one of
    /// the three conditions holds, the swap never improves the pair
    /// completion time. (The random-offset sampling lives in the
    /// `microcheck` property below.)
    #[test]
    fn lemma_holds_exhaustively_at_zero_offsets() {
        for cm_a in 0u64..30 {
            for cp_a in 0u64..30 {
                for cm_b in 0u64..30 {
                    for cp_b in 0u64..30 {
                        let a = task(cm_a, cp_a);
                        let b = task(cm_b, cp_b);
                        if lemma_case(&a, &b).is_some() {
                            assert!(
                                swap_does_not_improve(Time::ZERO, Time::ZERO, &a, &b),
                                "lemma violated for a=({cm_a},{cp_a}) b=({cm_b},{cp_b})"
                            );
                        }
                    }
                }
            }
        }
    }

    microcheck::property! {
        /// Machine-check of Lemma 1 over the full domain, arbitrary initial
        /// resource availability included: whenever one of the three
        /// conditions holds, the swap never improves.
        fn lemma_holds_on_random_experiments(
            (cm_a, cp_a, cm_b, cp_b, t1, t2) in experiment_domain(),
            cases = 20_000,
        ) {
            let (a, b) = (task(cm_a, cp_a), task(cm_b, cp_b));
            let (t1, t2) = (Time::units_int(t1), Time::units_int(t2));
            if lemma_case(&a, &b).is_some() {
                microcheck::prop_assert!(
                    swap_does_not_improve(t1, t2, &a, &b),
                    "lemma violated for a={a:?} b={b:?} t1={t1:?} t2={t2:?}"
                );
            }
        }

        /// The link completion time is order-independent (used implicitly
        /// in the proof of Lemma 1).
        fn link_completion_is_order_independent(
            (cm_a, cp_a, cm_b, cp_b, t1, t2) in experiment_domain(),
            cases = 20_000,
        ) {
            let (a, b) = (task(cm_a, cp_a), task(cm_b, cp_b));
            let (t1, t2) = (Time::units_int(t1), Time::units_int(t2));
            let (link_ab, _) = schedule_pair(t1, t2, &a, &b);
            let (link_ba, _) = schedule_pair(t1, t2, &b, &a);
            microcheck::prop_assert_eq!(
                link_ab,
                link_ba,
                "a={a:?} b={b:?} t1={t1:?} t2={t2:?}"
            );
        }
    }

    /// A deliberately broken "lemma" — claiming the swap *never* improves,
    /// with the precondition dropped — must not only fail but shrink to the
    /// smallest counterexample in the domain: `A` transfers for one unit,
    /// `B` computes for one unit, everything else zero. That pair is the
    /// minimal witness that order matters at all (Johnson's rule would put
    /// `B` first), so reaching it demonstrates the shrinker finds global
    /// minima, not just smaller failures.
    #[test]
    fn broken_lemma_shrinks_to_the_minimal_counterexample() {
        let failure = microcheck::check(
            &microcheck::Config::default(),
            &experiment_domain(),
            |&(cm_a, cp_a, cm_b, cp_b, t1, t2)| {
                let (a, b) = (task(cm_a, cp_a), task(cm_b, cp_b));
                microcheck::prop_assert!(swap_does_not_improve(
                    Time::units_int(t1),
                    Time::units_int(t2),
                    &a,
                    &b
                ));
                Ok(())
            },
        )
        .expect_err("the precondition-free lemma is false");

        let (cm_a, cp_a, cm_b, cp_b, t1, t2) = failure.minimal;
        // Still a counterexample after minimization...
        assert!(!swap_does_not_improve(
            Time::units_int(t1),
            Time::units_int(t2),
            &task(cm_a, cp_a),
            &task(cm_b, cp_b)
        ));
        // ...and of minimal size: total task volume 2, zero offsets. Any
        // improving swap needs CM_A >= 1 and CP_B >= 1, so this is the
        // unique minimum.
        assert_eq!(
            (cm_a, cp_a, cm_b, cp_b, t1, t2),
            (1, 0, 0, 1, 0, 0),
            "minimized counterexample should be the unit witness"
        );
    }
}
