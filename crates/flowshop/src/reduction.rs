//! The 3-Partition → DT reduction of Theorem 2 (NP-completeness).
//!
//! Given a 3-Partition instance `A = {a_1, ..., a_3m}` with target
//! `b = (1/m) Σ a_i`, the reduction builds a DT instance with `4m + 1` tasks
//! (Table 1 of the paper):
//!
//! | task                | communication | computation |
//! |---------------------|---------------|-------------|
//! | `K_0`               | 0             | 3           |
//! | `K_1 .. K_{m-1}`    | `b' = b + 6x` | 3           |
//! | `K_m`               | `b' = b + 6x` | 0           |
//! | `A_i` (1 ≤ i ≤ 3m)  | 1             | `a_i + 2x`  |
//!
//! with `x = max a_i`, memory capacity `C = b' + 3` and target makespan
//! `L = m (b' + 3)`. The 3-Partition instance has a solution iff the DT
//! instance admits a schedule of makespan at most `L`.
//!
//! This module provides the forward construction, the schedule built from a
//! known partition (the pattern of Fig. 2), and the backward extraction of a
//! partition from any tight schedule — together they make the reduction an
//! executable artifact that the test-suite exercises on small instances.

use dts_core::prelude::*;

/// A 3-Partition instance: `3m` positive integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreePartitionInstance {
    /// The multiset `A` of `3m` integers.
    pub values: Vec<u64>,
}

impl ThreePartitionInstance {
    /// Creates an instance; `values.len()` must be a positive multiple of 3
    /// and the sum must be divisible by `m`.
    pub fn new(values: Vec<u64>) -> Option<Self> {
        if values.is_empty() || !values.len().is_multiple_of(3) {
            return None;
        }
        let m = values.len() / 3;
        let total: u64 = values.iter().sum();
        if !total.is_multiple_of(m as u64) {
            return None;
        }
        Some(ThreePartitionInstance { values })
    }

    /// Number of triplets `m`.
    pub fn m(&self) -> usize {
        self.values.len() / 3
    }

    /// The per-triplet target `b`.
    pub fn target(&self) -> u64 {
        self.values.iter().sum::<u64>() / self.m() as u64
    }

    /// Largest element `x`.
    pub fn max_value(&self) -> u64 {
        *self.values.iter().max().expect("non-empty")
    }

    /// Exhaustively searches for a valid partition into triplets summing to
    /// the target. Exponential; only meant for the small instances used in
    /// tests. Returns the triplets as indices into `values`.
    pub fn solve(&self) -> Option<Vec<[usize; 3]>> {
        let m = self.m();
        let b = self.target();
        let mut used = vec![false; self.values.len()];
        let mut triplets = Vec::with_capacity(m);
        self.solve_rec(b, &mut used, &mut triplets)
            .then_some(triplets)
    }

    fn solve_rec(&self, b: u64, used: &mut Vec<bool>, triplets: &mut Vec<[usize; 3]>) -> bool {
        let first = match used.iter().position(|u| !u) {
            None => return true,
            Some(i) => i,
        };
        used[first] = true;
        for j in first + 1..self.values.len() {
            if used[j] || self.values[first] + self.values[j] > b {
                continue;
            }
            used[j] = true;
            for k in j + 1..self.values.len() {
                if used[k] || self.values[first] + self.values[j] + self.values[k] != b {
                    continue;
                }
                used[k] = true;
                triplets.push([first, j, k]);
                if self.solve_rec(b, used, triplets) {
                    return true;
                }
                triplets.pop();
                used[k] = false;
            }
            used[j] = false;
        }
        used[first] = false;
        false
    }
}

/// Output of the reduction: the DT instance plus the derived parameters.
#[derive(Debug, Clone)]
pub struct ReducedInstance {
    /// The DT instance with `4m + 1` tasks. Tasks `0..=m` are the `K_i`
    /// tasks in order; tasks `m + 1 + i` correspond to `a_i`.
    pub instance: Instance,
    /// The per-triplet target `b`.
    pub b: u64,
    /// The scaling constant `x = max a_i`.
    pub x: u64,
    /// The widened target `b' = b + 6x`.
    pub b_prime: u64,
    /// The target makespan `L = m (b' + 3)`.
    pub target_makespan: Time,
}

/// Builds the DT instance of Table 1 from a 3-Partition instance.
pub fn three_partition_to_dt(input: &ThreePartitionInstance) -> ReducedInstance {
    let m = input.m();
    let b = input.target();
    let x = input.max_value();
    let b_prime = b + 6 * x;

    let mut builder = InstanceBuilder::new()
        .label(format!("3par-reduction-m{m}"))
        .capacity(MemSize::from_bytes(b_prime + 3));

    // K_0: no communication, 3 units of computation.
    builder = builder.task(Task::new(
        "K0",
        Time::ZERO,
        Time::units_int(3),
        MemSize::ZERO,
    ));
    // K_1 .. K_{m-1}: communication b', computation 3.
    for i in 1..m {
        builder = builder.task(Task::new(
            format!("K{i}"),
            Time::units_int(b_prime),
            Time::units_int(3),
            MemSize::from_bytes(b_prime),
        ));
    }
    // K_m: communication b', no computation.
    builder = builder.task(Task::new(
        format!("K{m}"),
        Time::units_int(b_prime),
        Time::ZERO,
        MemSize::from_bytes(b_prime),
    ));
    // A_i tasks: communication 1, computation a_i + 2x, memory 1.
    for (i, &a) in input.values.iter().enumerate() {
        builder = builder.task(Task::new(
            format!("A{}", i + 1),
            Time::units_int(1),
            Time::units_int(a + 2 * x),
            MemSize::from_bytes(1),
        ));
    }

    let instance = builder
        .build()
        .expect("reduction always yields a valid instance");
    ReducedInstance {
        instance,
        b,
        x,
        b_prime,
        target_makespan: Time::units_int(m as u64 * (b_prime + 3)),
    }
}

impl ReducedInstance {
    /// Task id of `K_i`.
    pub fn k_task(&self, i: usize) -> TaskId {
        TaskId(i)
    }

    /// Task id of `A_j` (1-based `j`, as in the paper).
    pub fn a_task(&self, j: usize) -> TaskId {
        let m = self.m();
        TaskId(m + j)
    }

    /// Number of triplets `m`.
    pub fn m(&self) -> usize {
        (self.instance.len() - 1) / 4
    }

    /// Builds the tight schedule of Fig. 2 from a known partition: the
    /// communications of triplet `TR_i` overlap the computation of `K_{i-1}`
    /// and their computations overlap the communication of `K_i`.
    ///
    /// The returned schedule has makespan exactly `L` and is feasible with
    /// capacity `b' + 3`.
    pub fn schedule_from_partition(&self, triplets: &[[usize; 3]]) -> Schedule {
        let m = self.m();
        assert_eq!(triplets.len(), m, "need exactly m triplets");
        let mut schedule = Schedule::with_capacity(self.instance.len());
        let segment = Time::units_int(self.b_prime + 3);

        for (i, triplet) in triplets.iter().enumerate() {
            let segment_start = segment * i as u64;
            // K_i task for this segment: K_0 computes during segment 0's
            // first 3 units; K_{i+1}'s communication spans the rest.
            if i == 0 {
                schedule.push(ScheduleEntry {
                    task: self.k_task(0),
                    comm_start: Time::ZERO,
                    comp_start: Time::ZERO,
                });
            }
            // Communication of K_{i+1} starts after the three A transfers of
            // this segment (each takes 1 unit).
            let k_next = self.k_task(i + 1);
            let k_comm_start = segment_start + Time::units_int(3);
            let k_comp_start = segment_start + segment; // start of next segment
            schedule.push(ScheduleEntry {
                task: k_next,
                comm_start: k_comm_start,
                comp_start: if i + 1 == m {
                    // K_m has zero computation; place it at its comm end.
                    k_comm_start + Time::units_int(self.b_prime)
                } else {
                    k_comp_start
                },
            });
            // The three A tasks: communications in the first 3 units of the
            // segment, computations back-to-back during K_{i+1}'s transfer.
            let mut comp_cursor = segment_start + Time::units_int(3);
            for (slot, &value_index) in triplet.iter().enumerate() {
                let task_id = self.a_task(value_index + 1);
                let comm_start = segment_start + Time::units_int(slot as u64);
                schedule.push(ScheduleEntry {
                    task: task_id,
                    comm_start,
                    comp_start: comp_cursor,
                });
                comp_cursor += self.instance.task(task_id).comp_time;
            }
        }
        schedule
    }

    /// Extracts a partition from a feasible schedule of makespan at most `L`:
    /// triplet `i` is the set of `A` tasks whose computation takes place
    /// during the communication of `K_{i+1}` (the argument of Theorem 2).
    /// Returns `None` if the schedule is not tight enough to decode.
    pub fn partition_from_schedule(&self, schedule: &Schedule) -> Option<Vec<Vec<usize>>> {
        let m = self.m();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); m];
        for i in 1..=m {
            let k_entry = schedule.entry(self.k_task(i))?;
            let k_comm_end = k_entry.comm_start + self.instance.task(self.k_task(i)).comm_time;
            for j in 1..=(3 * m) {
                let a_id = self.a_task(j);
                let a_entry = schedule.entry(a_id)?;
                if a_entry.comp_start >= k_entry.comm_start && a_entry.comp_start < k_comm_end {
                    groups[i - 1].push(j - 1);
                }
            }
        }
        if groups.iter().all(|g| g.len() == 3) {
            Some(groups)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::feasibility::is_feasible;

    fn yes_instance() -> ThreePartitionInstance {
        // m = 2, b = 12: {5, 4, 3, 6, 4, 2} partitions into {5,4,3} and
        // {6,4,2}.
        ThreePartitionInstance::new(vec![5, 4, 3, 6, 4, 2]).unwrap()
    }

    #[test]
    fn construction_matches_table1() {
        let input = yes_instance();
        let reduced = three_partition_to_dt(&input);
        let m = input.m();
        assert_eq!(reduced.instance.len(), 4 * m + 1);
        assert_eq!(reduced.b, 12);
        assert_eq!(reduced.x, 6);
        assert_eq!(reduced.b_prime, 48);
        assert_eq!(
            reduced.instance.capacity(),
            MemSize::from_bytes(reduced.b_prime + 3)
        );
        assert_eq!(reduced.target_makespan, Time::units_int(2 * (48 + 3)));
        // Sum of communication times equals sum of computation times equals L.
        let stats = reduced.instance.stats();
        assert_eq!(stats.sum_comm, reduced.target_makespan);
        assert_eq!(stats.sum_comp, reduced.target_makespan);
    }

    #[test]
    fn solver_finds_partition_for_yes_instance() {
        let input = yes_instance();
        let triplets = input.solve().expect("this instance has a partition");
        let b = input.target();
        for t in &triplets {
            assert_eq!(t.iter().map(|&i| input.values[i]).sum::<u64>(), b);
        }
    }

    #[test]
    fn solver_rejects_no_instance() {
        // m = 2, sum = 24, but {1, 1, 1, 1, 1, 19} cannot form two triplets
        // of 12.
        let input = ThreePartitionInstance::new(vec![1, 1, 1, 1, 1, 19]).unwrap();
        assert!(input.solve().is_none());
    }

    #[test]
    fn partition_yields_tight_feasible_schedule() {
        let input = yes_instance();
        let reduced = three_partition_to_dt(&input);
        let triplets = input.solve().unwrap();
        let schedule = reduced.schedule_from_partition(&triplets);
        assert!(
            is_feasible(&reduced.instance, &schedule),
            "{:?}",
            dts_core::feasibility::validate(&reduced.instance, &schedule)
        );
        assert_eq!(
            schedule.makespan(&reduced.instance),
            reduced.target_makespan
        );
    }

    #[test]
    fn partition_round_trips_through_schedule() {
        let input = yes_instance();
        let reduced = three_partition_to_dt(&input);
        let triplets = input.solve().unwrap();
        let schedule = reduced.schedule_from_partition(&triplets);
        let decoded = reduced
            .partition_from_schedule(&schedule)
            .expect("tight schedule decodes to a partition");
        let b = input.target();
        for group in decoded {
            assert_eq!(group.len(), 3);
            assert_eq!(group.iter().map(|&i| input.values[i]).sum::<u64>(), b);
        }
    }

    #[test]
    fn malformed_three_partition_inputs_rejected() {
        assert!(ThreePartitionInstance::new(vec![]).is_none());
        assert!(ThreePartitionInstance::new(vec![1, 2]).is_none());
        // Sum not divisible by m.
        assert!(ThreePartitionInstance::new(vec![1, 1, 1, 1, 1, 2]).is_none());
    }
}
