//! Exact solvers for small instances.
//!
//! Two flavours are provided:
//!
//! * [`optimal_same_order`] — best *permutation schedule* (same order of
//!   tasks on the communication link and on the processing unit), found by
//!   branch-and-bound over sequences evaluated with the memory-constrained
//!   executor;
//! * [`optimal_free_order`] — best schedule when the two orders may differ
//!   (the general problem; Proposition 1 shows this can be strictly better).
//!   Found by enumerating pairs of orders and scheduling each pair greedily,
//!   which is optimal for fixed orders because starting a transfer earlier
//!   never delays later events.
//!
//! Both are exponential and intended for instances of at most ~10 tasks
//! (permutation) / ~7 tasks (free order); they exist to validate heuristics
//! and to reproduce the paper's Fig. 3.

use dts_core::prelude::*;
use dts_core::simulate::simulate_sequence;

/// An exact solution: the best schedule found together with its makespan.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The optimal schedule.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: Time,
}

/// Exhaustive/branch-and-bound search over permutation schedules.
///
/// The search explores sequences depth-first, pruning a partial sequence as
/// soon as its partial makespan (a lower bound on any completion, since
/// appending tasks never reduces it) reaches the best makespan found so far.
pub fn optimal_same_order(instance: &Instance) -> ExactSolution {
    let n = instance.len();
    assert!(
        n <= 12,
        "optimal_same_order is exponential; refusing more than 12 tasks (got {n})"
    );
    let mut best_makespan = Time::MAX;
    let mut best_order: Vec<TaskId> = instance.task_ids();

    // Depth-first enumeration with pruning on the partial schedule makespan.
    let mut order: Vec<TaskId> = instance.task_ids();
    fn rec(
        instance: &Instance,
        order: &mut Vec<TaskId>,
        depth: usize,
        best_makespan: &mut Time,
        best_order: &mut Vec<TaskId>,
    ) {
        let prefix = &order[..depth];
        if depth > 0 {
            // Evaluate the prefix alone: its makespan only grows when more
            // tasks are appended, so it is a valid pruning bound.
            let sub = instance
                .sub_instance(prefix)
                .expect("prefix tasks belong to the instance");
            let prefix_order: Vec<TaskId> = (0..depth).map(TaskId).collect();
            let prefix_makespan = simulate_sequence(&sub, &prefix_order)
                .expect("prefix order is a permutation")
                .makespan(&sub);
            if prefix_makespan >= *best_makespan {
                return;
            }
        }
        if depth == order.len() {
            let makespan = simulate_sequence(instance, order)
                .expect("full order is a permutation")
                .makespan(instance);
            if makespan < *best_makespan {
                *best_makespan = makespan;
                best_order.copy_from_slice(order);
            }
            return;
        }
        for i in depth..order.len() {
            order.swap(depth, i);
            rec(instance, order, depth + 1, best_makespan, best_order);
            order.swap(depth, i);
        }
    }
    rec(instance, &mut order, 0, &mut best_makespan, &mut best_order);

    let schedule = simulate_sequence(instance, &best_order).expect("best order is a permutation");
    let makespan = schedule.makespan(instance);
    ExactSolution { schedule, makespan }
}

/// Greedy earliest-start schedule for a fixed pair of orders (communication
/// order, computation order). Returns `None` when the pair deadlocks: the
/// next computation's data cannot be transferred because memory is full and
/// can only be released by computations that are ordered after it.
pub fn schedule_for_orders(
    instance: &Instance,
    comm_order: &[TaskId],
    comp_order: &[TaskId],
) -> Option<Schedule> {
    let n = instance.len();
    let capacity = instance.capacity().bytes();
    let comp_rank: Vec<usize> = {
        let mut rank = vec![usize::MAX; n];
        for (k, id) in comp_order.iter().enumerate() {
            rank[id.index()] = k;
        }
        rank
    };

    let mut comm_start = vec![Time::MAX; n];
    let mut comm_end = vec![Time::MAX; n];
    let mut comp_start = vec![Time::MAX; n];
    let mut comp_end = vec![Time::MAX; n];

    let mut next_comm = 0usize; // index into comm_order
    let mut next_comp = 0usize; // index into comp_order
    let mut link_free = Time::ZERO;
    let mut cpu_free = Time::ZERO;
    let mut held: u64 = 0;
    let mut now = Time::ZERO;

    // Event loop: at each step start whatever can start, otherwise advance
    // time to the next completion event.
    loop {
        if next_comm == n && next_comp == n {
            break;
        }
        let mut progressed = false;

        // Start the next computation if possible (does not consume memory —
        // the task already holds it — so always do this first).
        if next_comp < n {
            let id = comp_order[next_comp];
            let i = id.index();
            if comm_end[i] != Time::MAX {
                let ready = comm_end[i].max(cpu_free).max(now);
                if ready <= now {
                    let t = instance.task(id);
                    comp_start[i] = now;
                    comp_end[i] = now + t.comp_time;
                    cpu_free = comp_end[i];
                    next_comp += 1;
                    progressed = true;
                }
            }
        }

        // Start the next communication if the link is free and memory fits.
        if next_comm < n {
            let id = comm_order[next_comm];
            let i = id.index();
            let t = instance.task(id);
            // Memory currently held: tasks whose comm started and comp not
            // finished by `now` (a release at exactly `now` frees memory).
            if link_free <= now && held + t.mem.bytes() <= capacity {
                comm_start[i] = now;
                comm_end[i] = now + t.comm_time;
                link_free = comm_end[i];
                held += t.mem.bytes();
                next_comm += 1;
                progressed = true;
            }
        }

        if progressed {
            continue;
        }

        // Advance to the next event: link release, a communication end
        // enabling the next computation, a computation end releasing memory
        // or the CPU.
        let mut next_event = Time::MAX;
        if link_free > now {
            next_event = next_event.min(link_free);
        }
        if cpu_free > now {
            next_event = next_event.min(cpu_free);
        }
        if next_comp < n {
            let i = comp_order[next_comp].index();
            if comm_end[i] != Time::MAX && comm_end[i] > now {
                next_event = next_event.min(comm_end[i]);
            }
        }
        for &end in comp_end.iter().take(n) {
            if end != Time::MAX && end > now {
                next_event = next_event.min(end);
            }
        }
        if next_event == Time::MAX {
            // Nothing can ever progress again: deadlock.
            return None;
        }
        now = next_event;
        // Release memory of computations finished by `now`.
        held = 0;
        for i in 0..n {
            if comm_start[i] != Time::MAX && !(comp_end[i] != Time::MAX && comp_end[i] <= now) {
                held += instance.task(TaskId(i)).mem.bytes();
            }
        }
    }

    let mut schedule = Schedule::with_capacity(n);
    for i in 0..n {
        if comm_start[i] == Time::MAX || comp_start[i] == Time::MAX {
            return None;
        }
        schedule.push(ScheduleEntry {
            task: TaskId(i),
            comm_start: comm_start[i],
            comp_start: comp_start[i],
        });
    }
    let _ = comp_rank; // rank table retained for clarity; ordering enforced via comp_order
    schedule.normalize();
    Some(schedule)
}

/// Exhaustive search over *pairs* of orders (communication, computation).
/// Optimal for the general problem `DT` restricted to left-shifted schedules,
/// which always contain an optimum.
pub fn optimal_free_order(instance: &Instance) -> ExactSolution {
    let n = instance.len();
    assert!(
        n <= 7,
        "optimal_free_order enumerates pairs of permutations; refusing more than 7 tasks (got {n})"
    );
    let ids = instance.task_ids();
    let mut best: Option<(Time, Schedule)> = None;

    let mut comm_perm = ids.clone();
    permute_all(&mut comm_perm, 0, &mut |comm_order| {
        let mut comp_perm = ids.clone();
        permute_all(&mut comp_perm, 0, &mut |comp_order| {
            if let Some(schedule) = schedule_for_orders(instance, comm_order, comp_order) {
                let makespan = schedule.makespan(instance);
                if best.as_ref().is_none_or(|(b, _)| makespan < *b) {
                    best = Some((makespan, schedule));
                }
            }
        });
    });

    let (makespan, schedule) = best.expect("same-order schedules are always feasible");
    ExactSolution { schedule, makespan }
}

fn permute_all<F: FnMut(&[TaskId])>(order: &mut Vec<TaskId>, k: usize, f: &mut F) {
    if k == order.len() {
        f(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permute_all(order, k + 1, f);
        order.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::johnson::johnson_makespan;
    use dts_core::feasibility::is_feasible;
    use dts_core::instances::{random_instance_decoupled_memory, table2, table3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table2_permutation_optimum() {
        // Fig. 3a of the paper reports 23 as the best schedule with a common
        // order on both resources. Our left-shifted executor finds the order
        // A B D F C E with makespan 22.5 (B's memory is released at t = 8,
        // the very instant F's transfer starts — the same release-then-
        // acquire convention the paper itself uses in Fig. 4b), so the
        // permutation optimum here is 22.5. The substance of Proposition 1
        // is preserved: see `table2_free_order_beats_same_order`.
        let inst = table2();
        let sol = optimal_same_order(&inst);
        assert_eq!(sol.makespan, Time::units(22.5));
        assert!(is_feasible(&inst, &sol.schedule));
        assert!(sol.schedule.is_permutation_schedule());
    }

    #[test]
    fn table2_free_order_beats_same_order() {
        // Fig. 3b / Proposition 1: allowing different orders reaches
        // makespan 22 (the OMIM bound), strictly better than any common
        // ordering.
        let inst = table2();
        let free = optimal_free_order(&inst);
        assert_eq!(free.makespan, Time::units_int(22));
        assert!(is_feasible(&inst, &free.schedule));
        assert!(!free.schedule.is_permutation_schedule());
        let same = optimal_same_order(&inst);
        assert!(free.makespan < same.makespan);
    }

    #[test]
    fn table3_constrained_optimum() {
        // With capacity 6 the best permutation schedule of Table 3 is 13:
        // the DOCPS schedule of Fig. 4b reaches 14 and OMIM is 12.
        let inst = table3();
        let sol = optimal_same_order(&inst);
        assert!(sol.makespan >= johnson_makespan(&inst));
        assert!(sol.makespan <= Time::units_int(14));
        assert!(is_feasible(&inst, &sol.schedule));
    }

    #[test]
    fn free_order_never_worse_than_same_order() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let inst = random_instance_decoupled_memory(&mut rng, 5, 1.4);
            let same = optimal_same_order(&inst);
            let free = optimal_free_order(&inst);
            assert!(free.makespan <= same.makespan, "instance {:?}", inst);
            assert!(free.makespan >= johnson_makespan(&inst));
            assert!(is_feasible(&inst, &free.schedule));
            assert!(is_feasible(&inst, &same.schedule));
        }
    }

    #[test]
    fn fixed_orders_scheduler_matches_sequence_executor() {
        // When both orders are equal, the greedy two-order scheduler must
        // reproduce the same makespan as the sequence executor.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let inst = random_instance_decoupled_memory(&mut rng, 6, 1.5);
            let order = inst.task_ids();
            let a = simulate_sequence(&inst, &order).unwrap().makespan(&inst);
            let b = schedule_for_orders(&inst, &order, &order)
                .unwrap()
                .makespan(&inst);
            assert_eq!(a, b, "instance {:?}", inst);
        }
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn same_order_guard_rails() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = random_instance_decoupled_memory(&mut rng, 13, 2.0);
        let _ = optimal_same_order(&inst);
    }
}
