//! Workload characterization (Fig. 8 of the paper).
//!
//! For every trace the paper reports four quantities normalized to the OMIM
//! lower bound: the total communication time, the total computation time,
//! the maximum of the two (a lower bound on any makespan) and their sum (the
//! makespan of the fully sequential, zero-overlap schedule).

use crate::trace::Trace;
use dts_core::prelude::*;
use dts_flowshop::johnson::johnson_makespan;
use serde::{Deserialize, Serialize};

/// Fig. 8 characterization of one trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCharacterization {
    /// Number of tasks in the trace.
    pub n_tasks: usize,
    /// OMIM lower bound (optimal makespan with infinite memory).
    pub omim: Time,
    /// Sum of communication times, as a ratio to OMIM.
    pub sum_comm_ratio: f64,
    /// Sum of computation times, as a ratio to OMIM.
    pub sum_comp_ratio: f64,
    /// `max(sum comm, sum comp) / OMIM` — lower bound on any makespan ratio.
    pub max_ratio: f64,
    /// `(sum comm + sum comp) / OMIM` — the zero-overlap (sequential) ratio.
    pub sum_ratio: f64,
    /// Minimum memory capacity `mc` of the trace.
    pub min_capacity: MemSize,
}

impl WorkloadCharacterization {
    /// Maximum fraction of the sequential schedule that overlapping can ever
    /// remove: `1 - max_ratio / sum_ratio`. For HF this is at most ~20 %,
    /// for CCSD it approaches 50 % (Fig. 8 discussion).
    pub fn max_overlap_gain(&self) -> f64 {
        if self.sum_ratio == 0.0 {
            0.0
        } else {
            1.0 - self.max_ratio / self.sum_ratio
        }
    }
}

/// Characterizes a trace: converts it to an instance (the capacity does not
/// influence any of the reported quantities) and normalizes the aggregate
/// times by the OMIM bound.
pub fn characterize(trace: &Trace) -> Result<WorkloadCharacterization> {
    let instance = trace.to_instance(MemSize::UNBOUNDED)?;
    Ok(characterize_instance(&instance))
}

/// Characterizes an already-built instance.
pub fn characterize_instance(instance: &Instance) -> WorkloadCharacterization {
    let stats = instance.stats();
    let omim = johnson_makespan(instance);
    WorkloadCharacterization {
        n_tasks: instance.len(),
        omim,
        sum_comm_ratio: stats.sum_comm.ratio(omim),
        sum_comp_ratio: stats.sum_comp.ratio(omim),
        max_ratio: stats.resource_lower_bound().ratio(omim),
        sum_ratio: stats.sequential_upper_bound().ratio(omim),
        min_capacity: stats.min_capacity,
    }
}

/// Mean characterization over a suite of traces (one value per Fig. 8 bar).
pub fn characterize_suite(traces: &[Trace]) -> Result<Vec<WorkloadCharacterization>> {
    traces.iter().map(characterize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{generate_partial_suite, Kernel, SuiteConfig};

    #[test]
    fn ratios_are_consistent() {
        let config = SuiteConfig::small();
        let traces = generate_partial_suite(Kernel::HartreeFock, &config, 2);
        for trace in &traces {
            let c = characterize(trace).unwrap();
            assert!(
                c.sum_comm_ratio <= 1.0 + 1e-9,
                "sum comm cannot exceed OMIM... {c:?}"
            );
            assert!(c.max_ratio <= 1.0 + 1e-9);
            assert!(c.sum_ratio >= c.max_ratio);
            assert!((c.sum_ratio - (c.sum_comm_ratio + c.sum_comp_ratio)).abs() < 1e-9);
            assert!(c.max_overlap_gain() >= 0.0 && c.max_overlap_gain() < 1.0);
        }
    }

    #[test]
    fn hf_characterization_matches_fig8_shape() {
        // HF: communication dominates; at most ~20-30 % of the sequential
        // schedule can be removed by overlapping.
        let config = SuiteConfig::small();
        let traces = generate_partial_suite(Kernel::HartreeFock, &config, 3);
        for trace in &traces {
            let c = characterize(trace).unwrap();
            assert!(c.sum_comm_ratio > 0.9, "{c:?}");
            assert!(c.sum_comp_ratio < 0.5, "{c:?}");
            assert!(c.max_overlap_gain() < 0.35, "{c:?}");
        }
    }

    #[test]
    fn ccsd_characterization_matches_fig8_shape() {
        // CCSD: communication and computation are roughly balanced, so a
        // large overlap is possible.
        let config = SuiteConfig::small();
        let traces = generate_partial_suite(Kernel::Ccsd, &config, 3);
        for trace in &traces {
            let c = characterize(trace).unwrap();
            assert!(
                c.sum_comm_ratio > 0.4 && c.sum_comm_ratio <= 1.0 + 1e-9,
                "{c:?}"
            );
            assert!(c.sum_comp_ratio > 0.4, "{c:?}");
            assert!(c.max_overlap_gain() > 0.25, "{c:?}");
        }
    }

    #[test]
    fn suite_characterization_covers_every_trace() {
        let config = SuiteConfig::small();
        let traces = generate_partial_suite(Kernel::Ccsd, &config, 4);
        let characterizations = characterize_suite(&traces).unwrap();
        assert_eq!(characterizations.len(), 4);
    }
}
