//! CCSD (Coupled Cluster Single Double) trace generator.
//!
//! CCSD determines its tile sizes automatically from the input molecule, so
//! unlike HF its tasks are strongly heterogeneous: occupied and virtual
//! index blocks have different extents and the four-index amplitude/integral
//! tiles a task touches range from a few megabytes to more than a gigabyte.
//! Communications and computations are roughly balanced overall (Fig. 8 of
//! the paper), which makes a large communication/computation overlap
//! achievable with a good transfer order.

use crate::trace::{TaskKind, Trace, TraceTask};
use dts_ga::{GaRuntime, GlobalArray, Topology, TransferModel};
use dts_tensor::{ContractionSpec, CostModel, KernelCost, TileShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the CCSD trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcsdConfig {
    /// Number of occupied-index tile blocks.
    pub n_occ_tiles: usize,
    /// Number of virtual-index tile blocks.
    pub n_virt_tiles: usize,
    /// Inclusive range of occupied tile extents.
    pub occ_tile_range: (usize, usize),
    /// Inclusive range of virtual tile extents.
    pub virt_tile_range: (usize, usize),
    /// Inclusive range of the contracted extent of each task (the slice of
    /// the virtual space actually contracted in one work unit).
    pub contraction_k: (usize, usize),
    /// Base RNG seed; tile extents and per-rank streams derive from it.
    pub seed: u64,
}

impl Default for CcsdConfig {
    /// Paper-scale configuration (Uracil-like): with the 150-process Cascade
    /// topology each rank executes ≈ 325 tasks and the largest task holds on
    /// the order of a gigabyte of input tiles.
    fn default() -> Self {
        CcsdConfig {
            n_occ_tiles: 14,
            n_virt_tiles: 30,
            occ_tile_range: (8, 25),
            virt_tile_range: (60, 300),
            contraction_k: (20, 60),
            seed: 20190416,
        }
    }
}

impl CcsdConfig {
    /// A reduced configuration for tests and quick examples.
    pub fn small() -> Self {
        CcsdConfig {
            n_occ_tiles: 6,
            n_virt_tiles: 10,
            ..Default::default()
        }
    }

    /// Number of `(i <= j)` occupied tile pairs.
    pub fn occ_pairs(&self) -> usize {
        self.n_occ_tiles * (self.n_occ_tiles + 1) / 2
    }

    /// Number of `(a <= b)` virtual tile pairs.
    pub fn virt_pairs(&self) -> usize {
        self.n_virt_tiles * (self.n_virt_tiles + 1) / 2
    }

    /// Total number of tasks across all ranks.
    pub fn total_tasks(&self) -> usize {
        self.occ_pairs() * self.virt_pairs()
    }

    /// Draws the heterogeneous tile extents (deterministic for a given
    /// seed): `(occupied extents, virtual extents)`.
    pub fn tile_extents(&self) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let occ = (0..self.n_occ_tiles)
            .map(|_| rng.gen_range(self.occ_tile_range.0..=self.occ_tile_range.1))
            .collect();
        let virt = (0..self.n_virt_tiles)
            .map(|_| rng.gen_range(self.virt_tile_range.0..=self.virt_tile_range.1))
            .collect();
        (occ, virt)
    }
}

/// Generates the CCSD trace of one process rank.
pub fn generate_ccsd_trace(
    config: &CcsdConfig,
    topology: Topology,
    transfer: TransferModel,
    cost: CostModel,
    rank: usize,
) -> Trace {
    let n_processes = topology.n_processes();
    assert!(rank < n_processes, "rank {rank} out of range");
    let runtime = GaRuntime::new(topology, transfer);
    let (occ, virt) = config.tile_extents();

    // The T2 amplitude tensor, tiled over (i, j, a, b): one four-index tile
    // per (occupied pair, virtual pair) combination.
    let occ_pairs: Vec<(usize, usize)> = pairs(config.n_occ_tiles);
    let virt_pairs: Vec<(usize, usize)> = pairs(config.n_virt_tiles);
    let mut t2_shapes: Vec<TileShape> = Vec::with_capacity(occ_pairs.len() * virt_pairs.len());
    for &(i, j) in &occ_pairs {
        for &(a, b) in &virt_pairs {
            t2_shapes.push(TileShape::rank4(occ[i], occ[j], virt[a], virt[b]));
        }
    }
    let t2 = GlobalArray::new("t2", t2_shapes, n_processes);
    // The two-electron integral tensor shares the same tiling for the blocks
    // a task reads; a second array gives it a different owner map offset.
    let v2_shapes: Vec<TileShape> = (0..t2.n_tiles())
        .map(|idx| t2.tile_shape((idx + 1) % t2.n_tiles()))
        .collect();
    let v2 = GlobalArray::new("v2", v2_shapes, n_processes);

    let mut rng = StdRng::seed_from_u64(config.seed ^ (rank as u64).wrapping_mul(0x517C_C1B7));
    let mut tasks = Vec::new();

    for task_index in 0..config.total_tasks() {
        // Tasks are assigned to ranks with a multiplicative hash rather than
        // plain round-robin: the T2/V2 tiles themselves are distributed
        // round-robin, and using the same mapping for work assignment would
        // make every task owner-local (no transfers at all), which is not
        // what the NWChem TCE does — its work distribution is independent of
        // the data distribution.
        let assigned = (task_index.wrapping_mul(0x9E37_79B1) >> 7) % n_processes;
        if assigned != rank {
            continue;
        }
        let ij = task_index / virt_pairs.len();
        let ab = task_index % virt_pairs.len();
        let (i, j) = occ_pairs[ij];
        let (a, b) = virt_pairs[ab];

        // Fetch the T2 amplitude block and the matching integral block;
        // larger tasks occasionally need a second integral block.
        let get_t2 = runtime.get(rank, &t2, task_index);
        let get_v2 = runtime.get(rank, &v2, task_index);
        let extra = rng.gen_bool(0.3);
        let get_extra = if extra {
            Some(runtime.get(rank, &v2, (task_index * 7 + 11) % v2.n_tiles()))
        } else {
            None
        };

        let mut comm_micros = get_t2.transfer_micros + get_v2.transfer_micros;
        let mut mem_bytes = 0;
        if !get_t2.local {
            mem_bytes += get_t2.bytes;
        }
        if !get_v2.local {
            mem_bytes += get_v2.bytes;
        }
        if let Some(g) = &get_extra {
            comm_micros += g.transfer_micros;
            if !g.local {
                mem_bytes += g.bytes;
            }
        }

        // One work unit contracts the (i j | a b) block over a slice of the
        // virtual space; operands are transposed into matrix layout first.
        let m = occ[i] * occ[j];
        let n = virt[a] * virt[b];
        let k = rng.gen_range(config.contraction_k.0..=config.contraction_k.1);
        let spec = ContractionSpec::new(m, n, k);
        let kernel_cost = KernelCost::contraction(spec).plus(KernelCost::transpose(
            TileShape::rank4(occ[i], occ[j], virt[a], virt[b]),
        ));
        let comp_micros = cost.micros(kernel_cost);
        if mem_bytes == 0 {
            comm_micros = 0;
        }

        tasks.push(TraceTask {
            name: format!("t2({i},{j},{a},{b})"),
            kind: TaskKind::FusedTransposeContraction,
            comm_micros,
            comp_micros,
            mem_bytes,
        });
    }

    Trace {
        kernel: "CCSD".into(),
        rank,
        tasks,
        model: None,
        cost_model: None,
    }
}

fn pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n * (n + 1) / 2);
    for i in 0..n {
        for j in 0..=i {
            out.push((i, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::MemSize;

    fn small_trace(rank: usize) -> Trace {
        generate_ccsd_trace(
            &CcsdConfig::small(),
            Topology {
                nodes: 2,
                workers_per_node: 3,
            },
            TransferModel::default(),
            CostModel::default(),
            rank,
        )
    }

    #[test]
    fn traces_are_deterministic_and_partition_the_work() {
        assert_eq!(small_trace(1), small_trace(1));
        let total: usize = (0..6).map(|r| small_trace(r).len()).sum();
        assert_eq!(total, CcsdConfig::small().total_tasks());
    }

    #[test]
    fn ccsd_is_roughly_balanced_between_comm_and_comp() {
        let trace = small_trace(0);
        let sum_comm: u64 = trace.tasks.iter().map(|t| t.comm_micros).sum();
        let sum_comp: u64 = trace.tasks.iter().map(|t| t.comp_micros).sum();
        let ratio = sum_comp as f64 / sum_comm as f64;
        // Fig. 8: communications and computations are almost evenly
        // distributed for CCSD.
        assert!(ratio > 0.4 && ratio < 2.5, "comp/comm ratio {ratio}");
    }

    #[test]
    fn ccsd_tasks_are_heterogeneous() {
        let trace = small_trace(2);
        let mems: Vec<u64> = trace
            .tasks
            .iter()
            .map(|t| t.mem_bytes)
            .filter(|&m| m > 0)
            .collect();
        let min = mems.iter().min().unwrap();
        let max = mems.iter().max().unwrap();
        // Tile heterogeneity must translate into at least an order of
        // magnitude of spread in task memory footprints.
        assert!(max / min.max(&1) >= 10, "spread {} / {}", max, min);
    }

    #[test]
    fn ccsd_minimum_capacity_is_in_the_gigabyte_range_at_paper_scale() {
        // With the paper-scale tile extents the largest task holds hundreds
        // of megabytes to a few gigabytes of input tiles (the paper reports
        // mc = 1.8 GB). The check is on the tile extents, not on a full
        // 150-rank trace, to keep the test fast.
        let config = CcsdConfig::default();
        let (occ, virt) = config.tile_extents();
        let max_occ = *occ.iter().max().unwrap();
        let max_virt = *virt.iter().max().unwrap();
        let largest_tile_bytes =
            (max_occ * max_occ * max_virt * max_virt * std::mem::size_of::<f64>()) as u64;
        // Three such tiles can be fetched by one task.
        let mc_estimate = 3 * largest_tile_bytes;
        assert!(mc_estimate > 500_000_000, "{mc_estimate}");
    }

    #[test]
    fn paper_scale_task_count_is_in_reported_range() {
        let config = CcsdConfig::default();
        let per_rank = config.total_tasks() / Topology::cascade_10_nodes().n_processes();
        assert!((300..=800).contains(&per_rank), "{per_rank}");
    }

    #[test]
    fn trace_converts_to_instances_across_the_sweep() {
        let trace = small_trace(3);
        for factor in [1.0, 1.25, 1.5, 2.0] {
            let inst = trace.to_instance_scaled(factor).unwrap();
            assert_eq!(inst.len(), trace.len());
            assert!(inst.capacity() >= inst.min_capacity());
        }
        assert!(trace.min_capacity() > MemSize::from_bytes(1_000_000));
    }
}
