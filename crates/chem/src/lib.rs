//! # dts-chem
//!
//! Molecular-chemistry workload generators. The paper's evaluation uses
//! traces obtained by running two NWChem kernels — double-precision
//! Hartree–Fock (HF, SiOSi input, tile size 100) and Coupled Cluster Single
//! Double (CCSD, Uracil input, automatically determined heterogeneous
//! tiles) — with 150 processes on 10 nodes of the PNNL Cascade machine, each
//! process executing 300–800 tasks.
//!
//! Those runs are not reproducible without the machine and NWChem, so this
//! crate generates *synthetic traces with the same structure*: tasks are the
//! tensor-transpose/contraction work units of the two kernels, their
//! communication volumes come from one-sided `get`s of tiles of
//! Global-Arrays-distributed tensors (`dts-ga`), their communication times
//! from the single-route transfer model, and their computation times from
//! the roofline cost model of `dts-tensor`. The generator parameters are
//! calibrated so the per-trace aggregate characteristics match Fig. 8 of
//! the paper:
//!
//! * HF — nearly homogeneous tasks, communication-intensive (at most ~20 %
//!   of the communication can be overlapped), minimum memory capacity
//!   `mc ≈ 176 KiB`;
//! * CCSD — strongly heterogeneous tasks, communications and computations
//!   roughly balanced, `mc ≈ 1.8 GiB`.
//!
//! The crate also provides trace (de)serialization and the workload
//! characterization used to regenerate Fig. 8.

#![warn(missing_docs)]

pub mod ccsd;
pub mod characterize;
pub mod hf;
pub mod suite;
pub mod trace;

pub use ccsd::CcsdConfig;
pub use characterize::{characterize, WorkloadCharacterization};
pub use hf::HfConfig;
pub use suite::{generate_suite, Kernel, SuiteConfig};
pub use trace::{Trace, TraceTask};
