//! Hartree–Fock (Fock-build) trace generator.
//!
//! HF with the SiOSi input and a tile size of 100 produces nearly
//! homogeneous tasks: each task owns one `(i, j)` shell-block of the Fock
//! matrix, fetches the corresponding density blocks from the Global-Arrays
//! space and performs a screened tensor contraction (plus an occasional
//! operand transpose). The workload is communication-intensive: the data
//! fetched per task is large relative to the surviving (screened) flops, so
//! at most ~20 % of the communication can be hidden behind computation
//! (Fig. 8 of the paper).

use crate::trace::{TaskKind, Trace, TraceTask};
use dts_ga::{GaRuntime, GlobalArray, Topology, TransferModel};
use dts_tensor::{ContractionSpec, CostModel, KernelCost, TileShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the HF trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HfConfig {
    /// Number of shell-block tiles of the density/Fock matrices.
    pub n_shell_tiles: usize,
    /// Tile size (the paper sets it to 100).
    pub tile_size: usize,
    /// Range of the screened contraction depth `k` (fraction of the tile
    /// that survives integral screening).
    pub screened_k: (usize, usize),
    /// Probability that a task also transposes one operand.
    pub transpose_probability: f64,
    /// Maximum size in bytes of the auxiliary (screening/index) buffer each
    /// task additionally fetches.
    pub aux_buffer_max: u64,
    /// Base RNG seed; the per-rank seed is derived from it.
    pub seed: u64,
}

impl Default for HfConfig {
    /// Paper-scale configuration: with the 150-process Cascade topology each
    /// rank executes ≈ 480 tasks (within the 300–800 range reported by the
    /// paper) and the largest task needs ≈ 176 KiB of memory.
    fn default() -> Self {
        HfConfig {
            n_shell_tiles: 380,
            tile_size: 100,
            screened_k: (4, 8),
            transpose_probability: 0.15,
            aux_buffer_max: 16 * 1024,
            seed: 20190415,
        }
    }
}

impl HfConfig {
    /// A reduced configuration for tests and quick examples (≈ 60 tasks per
    /// rank on a 2-node topology).
    pub fn small() -> Self {
        HfConfig {
            n_shell_tiles: 60,
            ..Default::default()
        }
    }

    /// Total number of `(i, j)` shell-block pairs (tasks across all ranks).
    pub fn total_tasks(&self) -> usize {
        self.n_shell_tiles * (self.n_shell_tiles + 1) / 2
    }
}

/// Generates the HF trace of one process rank.
pub fn generate_hf_trace(
    config: &HfConfig,
    topology: Topology,
    transfer: TransferModel,
    cost: CostModel,
    rank: usize,
) -> Trace {
    let n_processes = topology.n_processes();
    assert!(rank < n_processes, "rank {rank} out of range");
    let runtime = GaRuntime::new(topology, transfer);
    // Density matrix blocks, distributed round-robin over the processes.
    let density = GlobalArray::new(
        "density",
        vec![TileShape::matrix(config.tile_size, config.tile_size); config.n_shell_tiles],
        n_processes,
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9));
    let mut tasks = Vec::new();

    for pair_index in 0..config.total_tasks() {
        if pair_index % n_processes != rank {
            continue;
        }
        // Recover (i, j) from the flat pair index.
        let (i, j) = unflatten_pair(pair_index);
        // Fetch the two density blocks this Fock block needs.
        let tile_a = i % config.n_shell_tiles;
        let tile_b = (i * 7 + j * 13 + 3) % config.n_shell_tiles;
        let get_a = runtime.get(rank, &density, tile_a);
        let get_b = runtime.get(rank, &density, tile_b);
        // Small auxiliary buffer (screening data) fetched alongside.
        let aux_bytes = rng.gen_range(0..=config.aux_buffer_max);
        let aux_micros = if aux_bytes == 0 {
            0
        } else {
            transfer.micros(aux_bytes, false)
        };

        let mut comm_micros = get_a.transfer_micros + get_b.transfer_micros + aux_micros;
        let mut mem_bytes = aux_bytes;
        if !get_a.local {
            mem_bytes += get_a.bytes;
        }
        if !get_b.local {
            mem_bytes += get_b.bytes;
        }

        // Screened contraction over the fetched blocks.
        let k = rng.gen_range(config.screened_k.0..=config.screened_k.1);
        let spec = ContractionSpec::new(config.tile_size, config.tile_size, k);
        let mut kernel_cost = KernelCost::contraction(spec);
        let mut kind = TaskKind::Contraction;
        if rng.gen_bool(config.transpose_probability) {
            // Transpose of the screened operand slice, not the full tile.
            kernel_cost = kernel_cost.plus(KernelCost::transpose(TileShape::matrix(
                config.tile_size,
                k,
            )));
            kind = TaskKind::FusedTransposeContraction;
        }
        let comp_micros = cost.micros(kernel_cost);

        // A fully local task still pays a token communication of its
        // auxiliary buffer (or nothing at all, like task K0/A of the paper's
        // examples).
        if mem_bytes == 0 {
            comm_micros = 0;
        }
        tasks.push(TraceTask {
            name: format!("fock({i},{j})"),
            kind,
            comm_micros,
            comp_micros,
            mem_bytes,
        });
    }

    Trace {
        kernel: "HF".into(),
        rank,
        tasks,
        model: None,
        cost_model: None,
    }
}

/// Inverse of the row-major enumeration of pairs `(i, j)` with `j <= i`.
fn unflatten_pair(index: usize) -> (usize, usize) {
    // i is the largest integer with i (i + 1) / 2 <= index.
    let mut i = ((((8 * index + 1) as f64).sqrt() - 1.0) / 2.0).floor() as usize;
    while (i + 1) * (i + 2) / 2 <= index {
        i += 1;
    }
    while i * (i + 1) / 2 > index {
        i -= 1;
    }
    (i, index - i * (i + 1) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_core::MemSize;

    fn small_trace(rank: usize) -> Trace {
        generate_hf_trace(
            &HfConfig::small(),
            Topology {
                nodes: 2,
                workers_per_node: 3,
            },
            TransferModel::default(),
            CostModel::default(),
            rank,
        )
    }

    #[test]
    fn pair_unflattening_is_consistent() {
        let mut index = 0;
        for i in 0..30 {
            for j in 0..=i {
                assert_eq!(unflatten_pair(index), (i, j));
                index += 1;
            }
        }
    }

    #[test]
    fn traces_are_deterministic_and_partition_the_work() {
        let a = small_trace(2);
        let b = small_trace(2);
        assert_eq!(a, b);
        let total: usize = (0..6).map(|r| small_trace(r).len()).sum();
        assert_eq!(total, HfConfig::small().total_tasks());
    }

    #[test]
    fn hf_tasks_are_communication_intensive_and_homogeneous() {
        let trace = small_trace(0);
        assert!(!trace.is_empty());
        let sum_comm: u64 = trace.tasks.iter().map(|t| t.comm_micros).sum();
        let sum_comp: u64 = trace.tasks.iter().map(|t| t.comp_micros).sum();
        let ratio = sum_comp as f64 / sum_comm as f64;
        // Fig. 8: at most ~20 % overlap is possible, i.e. computation is a
        // small fraction of communication.
        assert!(ratio > 0.10 && ratio < 0.45, "comp/comm ratio {ratio}");
        // Homogeneity: the largest remote task is within a small factor of
        // the median.
        let mut comms: Vec<u64> = trace
            .tasks
            .iter()
            .map(|t| t.comm_micros)
            .filter(|&c| c > 0)
            .collect();
        comms.sort_unstable();
        let median = comms[comms.len() / 2];
        assert!(*comms.last().unwrap() <= 2 * median);
    }

    #[test]
    fn hf_minimum_capacity_matches_paper_scale() {
        // The paper reports mc = 176 KB for the HF traces; the generator's
        // largest task (two 100x100 density tiles plus the auxiliary buffer)
        // lands in the same range.
        let trace = small_trace(1);
        let mc = trace.min_capacity();
        assert!(
            mc >= MemSize::from_bytes(160_000) && mc <= MemSize::from_bytes(180_000),
            "mc = {mc}"
        );
    }

    #[test]
    fn paper_scale_task_count_is_in_reported_range() {
        // With the default (paper-scale) configuration and the 150-process
        // topology, each rank executes 300-800 tasks.
        let config = HfConfig::default();
        let per_rank = config.total_tasks() / Topology::cascade_10_nodes().n_processes();
        assert!((300..=800).contains(&per_rank), "{per_rank}");
    }

    #[test]
    fn trace_converts_to_feasible_instances() {
        let trace = small_trace(4);
        for factor in [1.0, 1.5, 2.0] {
            let inst = trace.to_instance_scaled(factor).unwrap();
            assert_eq!(inst.len(), trace.len());
            assert!(inst.capacity() >= inst.min_capacity());
        }
    }
}
