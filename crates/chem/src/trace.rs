//! Trace model and (de)serialization.
//!
//! A *trace* is the per-process list of independent tasks the runtime
//! scheduler sees: for every task, the time of its input-data transfer, the
//! time of its computation and the memory its input data occupies. This is
//! exactly the information the paper extracts from its NWChem runs.

use dts_core::prelude::*;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::io::{Read, Write};
use std::path::Path;

/// Kind of tensor work a trace task performs (informational; the scheduling
/// heuristics only look at times and memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Tensor contraction (block matrix multiplication).
    Contraction,
    /// Tensor transpose (index permutation).
    Transpose,
    /// Contraction preceded by one or more transposes of its operands.
    FusedTransposeContraction,
}

/// One task of a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceTask {
    /// Task label (kernel and tile indices).
    pub name: String,
    /// What the task computes.
    pub kind: TaskKind,
    /// Input-data transfer time in microseconds.
    pub comm_micros: u64,
    /// Computation time in microseconds.
    pub comp_micros: u64,
    /// Memory occupied by the input data, in bytes.
    pub mem_bytes: u64,
}

/// A per-process trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Kernel that produced the trace (`"HF"` or `"CCSD"`).
    pub kernel: String,
    /// Process rank (0..149 in the paper's setup).
    pub rank: usize,
    /// The independent tasks seen by this process.
    pub tasks: Vec<TraceTask>,
    /// Execution model the trace targets (stamped by `dts generate
    /// --model`); absent means the paper's explicit half-duplex link.
    /// Threaded into every instance built from the trace.
    pub model: Option<ExecutionModel>,
    /// Cost model to materialize task durations under (stamped by `dts run
    /// --cost-model` before conversion); absent means the analytic default —
    /// the trace's recorded durations verbatim. Applied by
    /// [`Trace::to_instance`].
    pub cost_model: Option<CostModelSpec>,
}

// Hand-written (de)serialization so the `model` key is omitted when absent
// and optional when read: trace files written before the execution-model
// layer existed keep loading unchanged.
impl Serialize for Trace {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("kernel".to_string(), self.kernel.to_value()),
            ("rank".to_string(), self.rank.to_value()),
            ("tasks".to_string(), self.tasks.to_value()),
        ];
        if let Some(model) = &self.model {
            fields.push(("model".to_string(), model.to_value()));
        }
        if let Some(cost_model) = &self.cost_model {
            fields.push(("cost_model".to_string(), cost_model.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Trace {
    fn from_value(value: &Value) -> std::result::Result<Self, SerdeError> {
        let model = match value.field("model") {
            Ok(v) => Option::<ExecutionModel>::from_value(v)?,
            Err(_) => None,
        };
        let cost_model = match value.field("cost_model") {
            Ok(v) => Option::<CostModelSpec>::from_value(v)?.filter(|m| !m.is_analytic()),
            Err(_) => None,
        };
        Ok(Trace {
            kernel: Deserialize::from_value(value.field("kernel")?)?,
            rank: Deserialize::from_value(value.field("rank")?)?,
            tasks: Deserialize::from_value(value.field("tasks")?)?,
            model,
            cost_model,
        })
    }
}

impl Trace {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff the trace has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Minimum memory capacity `mc` needed to execute every task (the
    /// largest single-task memory requirement).
    pub fn min_capacity(&self) -> MemSize {
        MemSize::from_bytes(self.tasks.iter().map(|t| t.mem_bytes).max().unwrap_or(0))
    }

    /// Checks that the total communication-plus-computation time of the
    /// trace fits in the `u64` tick arithmetic of the simulators. Every
    /// schedule time is bounded by the fully sequential sum of all task
    /// durations (no model stretches a task beyond `comm + comp`), so a
    /// finite total guarantees overflow-free simulation; an overflowing
    /// total would otherwise surface as a debug-build panic deep inside an
    /// executor instead of a typed error at the trust boundary.
    pub fn check_time_totals(&self) -> Result<()> {
        let mut total: u64 = 0;
        for task in &self.tasks {
            total = task
                .comm_micros
                .checked_add(task.comp_micros)
                .and_then(|t| total.checked_add(t))
                .ok_or_else(|| {
                    CoreError::InvalidTrace(format!(
                        "total task time overflows u64 microseconds at task `{}`",
                        task.name
                    ))
                })?;
        }
        Ok(())
    }

    /// Converts the trace into a scheduling [`Instance`] with the given
    /// memory capacity. A model carried by the trace is attached to the
    /// instance, so every executor and heuristic honors it; a cost model
    /// carried by the trace is materialized into the task durations here —
    /// once per instance, never per scheduling decision.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidTrace`] when the summed task times
    /// overflow `u64` (see [`Trace::check_time_totals`]) — such a trace
    /// cannot be simulated without wrapping the clock — and
    /// [`CoreError::InvalidCostModel`] when a stamped cost model is
    /// malformed or its predictions overflow the clock.
    pub fn to_instance(&self, capacity: MemSize) -> Result<Instance> {
        self.check_time_totals()?;
        let tasks = self
            .tasks
            .iter()
            .map(|t| {
                Task::new(
                    t.name.clone(),
                    Time::from_micros(t.comm_micros),
                    Time::from_micros(t.comp_micros),
                    MemSize::from_bytes(t.mem_bytes),
                )
            })
            .collect();
        let instance = Instance::with_label(
            tasks,
            capacity,
            format!("{}-rank{}", self.kernel, self.rank),
        )?;
        let instance = match self.model {
            Some(model) => instance.with_model(model)?,
            None => instance,
        };
        match &self.cost_model {
            Some(spec) => instance.with_cost_model(spec),
            None => Ok(instance),
        }
    }

    /// Converts the trace into an instance whose capacity is `factor · mc`
    /// (the sweep axis of Figs. 9–13).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCapacityFactor`] when `factor` is NaN,
    /// infinite or negative — [`MemSize::scale`] asserts on such factors,
    /// and a user-supplied factor (e.g. from the `dts run` command line)
    /// must surface as an error, not a panic.
    pub fn to_instance_scaled(&self, factor: f64) -> Result<Instance> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(CoreError::InvalidCapacityFactor(factor.to_string()));
        }
        self.to_instance(self.min_capacity().scale(factor))
    }

    /// Serializes the trace to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| CoreError::Serialization(e.to_string()))
    }

    /// Deserializes a trace from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| CoreError::Serialization(e.to_string()))
    }

    /// Writes the trace as JSON to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut file =
            std::fs::File::create(path).map_err(|e| CoreError::Serialization(e.to_string()))?;
        file.write_all(self.to_json()?.as_bytes())
            .map_err(|e| CoreError::Serialization(e.to_string()))
    }

    /// Reads a trace from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let mut file =
            std::fs::File::open(path).map_err(|e| CoreError::Serialization(e.to_string()))?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)
            .map_err(|e| CoreError::Serialization(e.to_string()))?;
        Self::from_json(&contents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            kernel: "HF".into(),
            rank: 3,
            tasks: vec![
                TraceTask {
                    name: "fock(0,1)".into(),
                    kind: TaskKind::FusedTransposeContraction,
                    comm_micros: 110,
                    comp_micros: 30,
                    mem_bytes: 160_000,
                },
                TraceTask {
                    name: "fock(0,2)".into(),
                    kind: TaskKind::Contraction,
                    comm_micros: 95,
                    comp_micros: 25,
                    mem_bytes: 176_128,
                },
            ],
            model: None,
            cost_model: None,
        }
    }

    #[test]
    fn min_capacity_is_largest_task() {
        assert_eq!(sample().min_capacity(), MemSize::from_bytes(176_128));
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
    }

    #[test]
    fn conversion_to_instance_preserves_times() {
        let trace = sample();
        let inst = trace.to_instance(MemSize::from_bytes(400_000)).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.task(TaskId(0)).comm_time, Time::from_micros(110));
        assert_eq!(inst.task(TaskId(1)).comp_time, Time::from_micros(25));
        assert_eq!(inst.task(TaskId(1)).mem, MemSize::from_bytes(176_128));
        assert_eq!(inst.label, "HF-rank3");
    }

    #[test]
    fn scaled_instance_uses_mc_multiples() {
        let trace = sample();
        let inst = trace.to_instance_scaled(1.5).unwrap();
        assert_eq!(inst.capacity(), MemSize::from_bytes(264_192));
        // Factor 1.0 is exactly feasible.
        assert!(trace.to_instance_scaled(1.0).is_ok());
    }

    #[test]
    fn malformed_scale_factors_error_instead_of_panicking() {
        // Regression: these used to trip the `MemSize::scale` assert.
        let trace = sample();
        for factor in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = trace.to_instance_scaled(factor).unwrap_err();
            match err {
                CoreError::InvalidCapacityFactor(text) => {
                    assert_eq!(text, factor.to_string());
                }
                other => panic!("expected InvalidCapacityFactor, got {other:?}"),
            }
        }
        // Zero is degenerate but well-defined: capacity 0, so the largest
        // task no longer fits and instance construction reports it.
        assert!(matches!(
            trace.to_instance_scaled(0.0),
            Err(CoreError::TaskExceedsCapacity { .. })
        ));
    }

    #[test]
    fn overflowing_time_totals_error_instead_of_wrapping() {
        // Each task is fine on its own; the *sum* of their durations
        // overflows u64, which used to wrap (release) or panic (debug)
        // inside the executors instead of erroring at conversion time.
        let mut trace = sample();
        for task in &mut trace.tasks {
            task.comm_micros = u64::MAX / 2;
            task.comp_micros = u64::MAX / 2 - 1;
        }
        assert!(trace.check_time_totals().is_err());
        assert!(matches!(
            trace.to_instance_scaled(1.5),
            Err(CoreError::InvalidTrace(_))
        ));
        // A single task saturating the clock is still representable.
        trace.tasks.truncate(1);
        assert!(trace.check_time_totals().is_ok());
    }

    #[test]
    fn json_round_trip() {
        let trace = sample();
        let json = trace.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(trace, back);
        assert!(Trace::from_json("not json").is_err());
    }

    #[test]
    fn model_is_optional_in_json_and_threads_into_instances() {
        // Model-less traces serialize without a `model` key, so trace files
        // from before the execution-model layer keep loading unchanged...
        let mut trace = sample();
        let json = trace.to_json().unwrap();
        assert!(!json.contains("model"));
        assert_eq!(Trace::from_json(&json).unwrap().model, None);
        let inst = trace.to_instance_scaled(1.5).unwrap();
        assert_eq!(inst.model(), ExecutionModel::Explicit);

        // ...while a stamped model round-trips and lands on the instance.
        trace.model = Some(ExecutionModel::Streams { k: 4 });
        let back = Trace::from_json(&trace.to_json().unwrap()).unwrap();
        assert_eq!(back.model, Some(ExecutionModel::Streams { k: 4 }));
        let inst = back.to_instance_scaled(1.5).unwrap();
        assert_eq!(inst.model(), ExecutionModel::Streams { k: 4 });

        // Invalid stamped models surface as errors, not panics.
        trace.model = Some(ExecutionModel::Streams { k: 0 });
        assert!(matches!(
            trace.to_instance_scaled(1.5),
            Err(CoreError::InvalidExecutionModel(_))
        ));
    }

    #[test]
    fn cost_model_is_optional_in_json_and_materializes_times() {
        use dts_core::perfmodel::{LinearFit, RegressionModel, PS_PER_MICRO};

        // Model-less traces keep serializing without a `cost_model` key.
        let mut trace = sample();
        let json = trace.to_json().unwrap();
        assert!(!json.contains("cost_model"));
        assert_eq!(Trace::from_json(&json).unwrap().cost_model, None);

        // A stamped model round-trips and rewrites the instance durations.
        let spec = CostModelSpec::Regression(
            RegressionModel::new(
                vec![(
                    LinkClass::HostToDevice,
                    LinearFit {
                        alpha_us: 10,
                        beta_ps_per_byte: PS_PER_MICRO / 1000, // 1 µs per KB
                        samples: 2,
                    },
                )],
                vec![(
                    ComputeBackend::Cpu,
                    LinearFit {
                        alpha_us: 40,
                        beta_ps_per_byte: 0,
                        samples: 2,
                    },
                )],
            )
            .unwrap(),
        );
        trace.cost_model = Some(spec.clone());
        let back = Trace::from_json(&trace.to_json().unwrap()).unwrap();
        assert_eq!(back.cost_model, Some(spec.clone()));
        let inst = back.to_instance_scaled(1.5).unwrap();
        assert_eq!(inst.cost_model(), spec);
        // fock(0,1): 160 000 bytes → 10 + 160 µs transfer, 40 µs compute.
        assert_eq!(inst.task(TaskId(0)).comm_time, Time::from_micros(170));
        assert_eq!(inst.task(TaskId(0)).comp_time, Time::from_micros(40));
    }

    #[test]
    fn file_round_trip() {
        let trace = sample();
        let dir = std::env::temp_dir().join("dts-chem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace-rank3.json");
        trace.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(trace, back);
        std::fs::remove_file(&path).ok();
        assert!(Trace::load(dir.join("missing.json")).is_err());
    }
}
