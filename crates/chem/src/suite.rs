//! Generation of full trace suites (one trace per process rank).

use crate::ccsd::{generate_ccsd_trace, CcsdConfig};
use crate::hf::{generate_hf_trace, HfConfig};
use crate::trace::Trace;
use dts_ga::{Topology, TransferModel};
use dts_tensor::CostModel;
use serde::{Deserialize, Serialize};

/// Which molecular-chemistry kernel to generate traces for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Hartree–Fock (SiOSi-like input, tile size 100).
    HartreeFock,
    /// Coupled Cluster Single Double (Uracil-like input, heterogeneous
    /// tiles).
    Ccsd,
}

impl Kernel {
    /// Short name as used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::HartreeFock => "HF",
            Kernel::Ccsd => "CCSD",
        }
    }
}

/// Configuration of a suite generation run.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Cluster topology (the paper uses 10 nodes × 15 workers = 150 ranks).
    pub topology: Topology,
    /// Transfer-cost model.
    pub transfer: TransferModel,
    /// Kernel cost model.
    pub cost: CostModel,
    /// HF generator parameters.
    pub hf: HfConfig,
    /// CCSD generator parameters.
    pub ccsd: CcsdConfig,
    /// Number of worker threads used for generation (the ranks are
    /// independent).
    pub threads: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            topology: Topology::cascade_10_nodes(),
            transfer: TransferModel::default(),
            cost: CostModel::default(),
            hf: HfConfig::default(),
            ccsd: CcsdConfig::default(),
            threads: 4,
        }
    }
}

impl SuiteConfig {
    /// A reduced configuration (6 ranks, small tile counts) for tests,
    /// examples and quick benchmark runs.
    pub fn small() -> Self {
        SuiteConfig {
            topology: Topology {
                nodes: 2,
                workers_per_node: 3,
            },
            hf: HfConfig::small(),
            ccsd: CcsdConfig::small(),
            threads: 2,
            ..Default::default()
        }
    }
}

/// Generates one trace per rank for the requested kernel. Ranks are
/// independent, so generation is spread over `config.threads` threads with
/// crossbeam's scoped threads.
pub fn generate_suite(kernel: Kernel, config: &SuiteConfig) -> Vec<Trace> {
    let n = config.topology.n_processes();
    let threads = config.threads.clamp(1, n.max(1));
    let mut traces: Vec<Option<Trace>> = (0..n).map(|_| None).collect();

    crossbeam::thread::scope(|scope| {
        for (chunk_index, chunk) in traces.chunks_mut(n.div_ceil(threads)).enumerate() {
            let config = &*config;
            scope.spawn(move |_| {
                let base = chunk_index * n.div_ceil(threads);
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    let rank = base + offset;
                    let trace = match kernel {
                        Kernel::HartreeFock => generate_hf_trace(
                            &config.hf,
                            config.topology,
                            config.transfer,
                            config.cost,
                            rank,
                        ),
                        Kernel::Ccsd => generate_ccsd_trace(
                            &config.ccsd,
                            config.topology,
                            config.transfer,
                            config.cost,
                            rank,
                        ),
                    };
                    *slot = Some(trace);
                }
            });
        }
    })
    .expect("trace-generation threads do not panic");

    traces
        .into_iter()
        .map(|t| t.expect("every rank was generated"))
        .collect()
}

/// Generates a suite and keeps only the first `n_ranks` traces — handy for
/// experiments that need representative traces without paying for all 150
/// ranks.
pub fn generate_partial_suite(kernel: Kernel, config: &SuiteConfig, n_ranks: usize) -> Vec<Trace> {
    let mut traces = Vec::with_capacity(n_ranks.min(config.topology.n_processes()));
    for rank in 0..n_ranks.min(config.topology.n_processes()) {
        traces.push(match kernel {
            Kernel::HartreeFock => generate_hf_trace(
                &config.hf,
                config.topology,
                config.transfer,
                config.cost,
                rank,
            ),
            Kernel::Ccsd => generate_ccsd_trace(
                &config.ccsd,
                config.topology,
                config.transfer,
                config.cost,
                rank,
            ),
        });
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_generates_every_rank() {
        let config = SuiteConfig::small();
        for kernel in [Kernel::HartreeFock, Kernel::Ccsd] {
            let suite = generate_suite(kernel, &config);
            assert_eq!(suite.len(), 6);
            for (rank, trace) in suite.iter().enumerate() {
                assert_eq!(trace.rank, rank);
                assert_eq!(trace.kernel, kernel.name());
                assert!(!trace.is_empty());
            }
        }
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let mut parallel_config = SuiteConfig::small();
        parallel_config.threads = 3;
        let parallel = generate_suite(Kernel::HartreeFock, &parallel_config);
        let sequential = generate_partial_suite(Kernel::HartreeFock, &parallel_config, 6);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn partial_suite_truncates() {
        let config = SuiteConfig::small();
        let partial = generate_partial_suite(Kernel::Ccsd, &config, 2);
        assert_eq!(partial.len(), 2);
        let oversized = generate_partial_suite(Kernel::Ccsd, &config, 99);
        assert_eq!(oversized.len(), 6);
    }

    #[test]
    fn kernel_names() {
        assert_eq!(Kernel::HartreeFock.name(), "HF");
        assert_eq!(Kernel::Ccsd.name(), "CCSD");
    }
}
