//! Example instances from the paper and random-instance generators.
//!
//! The fixed instances of Tables 2–5 are used by the unit tests, the
//! examples and the `fig3`–`fig6` benchmarks; the random generators are used
//! by property tests and by the exact-solver cross-checks.

use crate::instance::{Instance, InstanceBuilder};
use crate::memory::MemSize;
use crate::task::Task;
use crate::time::Time;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Unwraps a builder result that is valid by construction (static paper
/// tables, generators that compute a covering capacity). The arms are
/// exercised by the unit tests below, so a validation failure here is a
/// programmer error, not a runtime condition.
fn valid_by_construction(result: crate::error::Result<Instance>, what: &str) -> Instance {
    match result {
        Ok(instance) => instance,
        Err(e) => unreachable!("{what} must be valid by construction: {e}"),
    }
}

/// Table 2 of the paper (capacity 10): the instance for which every optimal
/// schedule uses different orders on the two resources (Proposition 1 /
/// Fig. 3). The best permutation schedule has makespan 23, the best general
/// schedule 22.
pub fn table2() -> Instance {
    let instance = InstanceBuilder::new()
        .label("paper-table2")
        .capacity(MemSize::from_bytes(10))
        .task_units("A", 0.0, 5.0, 0)
        .task_units("B", 4.0, 3.0, 4)
        .task_units("C", 1.0, 6.0, 1)
        .task_units("D", 3.0, 7.0, 3)
        .task_units("E", 6.0, 0.5, 6)
        .task_units("F", 7.0, 0.5, 7)
        .build();
    valid_by_construction(instance, "table2")
}

/// Table 3 of the paper (capacity 6): the instance used to illustrate the
/// static-order heuristics (Fig. 4). OMIM = 12.
pub fn table3() -> Instance {
    let instance = InstanceBuilder::new()
        .label("paper-table3")
        .capacity(MemSize::from_bytes(6))
        .task_units("A", 3.0, 2.0, 3)
        .task_units("B", 1.0, 3.0, 1)
        .task_units("C", 4.0, 4.0, 4)
        .task_units("D", 2.0, 1.0, 2)
        .build();
    valid_by_construction(instance, "table3")
}

/// Table 4 of the paper (capacity 6): the instance used to illustrate the
/// dynamic heuristics (Fig. 5).
pub fn table4() -> Instance {
    let instance = InstanceBuilder::new()
        .label("paper-table4")
        .capacity(MemSize::from_bytes(6))
        .task_units("A", 3.0, 2.0, 3)
        .task_units("B", 1.0, 6.0, 1)
        .task_units("C", 4.0, 6.0, 4)
        .task_units("D", 5.0, 1.0, 5)
        .build();
    valid_by_construction(instance, "table4")
}

/// Table 5 of the paper (capacity 9): the instance used to illustrate the
/// static-order-with-dynamic-corrections heuristics (Fig. 6).
pub fn table5() -> Instance {
    let instance = InstanceBuilder::new()
        .label("paper-table5")
        .capacity(MemSize::from_bytes(9))
        .task_units("A", 4.0, 1.0, 4)
        .task_units("B", 2.0, 6.0, 2)
        .task_units("C", 8.0, 8.0, 8)
        .task_units("D", 5.0, 4.0, 5)
        .task_units("E", 3.0, 2.0, 3)
        .build();
    valid_by_construction(instance, "table5")
}

/// Parameters for [`random_instance`].
#[derive(Debug, Clone, Copy)]
pub struct RandomInstanceConfig {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Inclusive range of communication times, in units.
    pub comm_range: (u64, u64),
    /// Inclusive range of computation times, in units.
    pub comp_range: (u64, u64),
    /// Capacity expressed as a multiple of the largest task memory
    /// requirement (`1.0` = the tightest feasible capacity `mc`).
    pub capacity_factor: f64,
}

impl Default for RandomInstanceConfig {
    fn default() -> Self {
        RandomInstanceConfig {
            n_tasks: 8,
            comm_range: (1, 10),
            comp_range: (1, 10),
            capacity_factor: 1.5,
        }
    }
}

/// Generates a random instance following the paper's example convention
/// (memory requirement equal to the communication volume). Useful for
/// property tests and for cross-checking heuristics against exact solvers on
/// small sizes.
pub fn random_instance<R: Rng + ?Sized>(rng: &mut R, config: RandomInstanceConfig) -> Instance {
    assert!(config.n_tasks > 0, "need at least one task");
    assert!(
        config.comm_range.0 <= config.comm_range.1 && config.comp_range.0 <= config.comp_range.1,
        "invalid ranges"
    );
    let comm_dist = Uniform::new_inclusive(config.comm_range.0, config.comm_range.1);
    let comp_dist = Uniform::new_inclusive(config.comp_range.0, config.comp_range.1);
    let mut tasks = Vec::with_capacity(config.n_tasks);
    let mut max_mem = 0u64;
    for i in 0..config.n_tasks {
        let comm = comm_dist.sample(rng);
        let comp = comp_dist.sample(rng);
        max_mem = max_mem.max(comm.max(1));
        tasks.push(Task::new(
            format!("t{i}"),
            Time::units_int(comm),
            Time::units_int(comp),
            MemSize::from_bytes(comm.max(1)),
        ));
    }
    let capacity =
        MemSize::from_bytes(((max_mem as f64) * config.capacity_factor.max(1.0)).ceil() as u64);
    let instance = Instance::with_label(tasks, capacity, format!("random-{}", config.n_tasks));
    valid_by_construction(instance, "the generated random instance")
}

/// Generates a random instance whose memory requirements are *not* tied to
/// the communication times (the general case of problem DT).
pub fn random_instance_decoupled_memory<R: Rng + ?Sized>(
    rng: &mut R,
    n_tasks: usize,
    capacity_factor: f64,
) -> Instance {
    assert!(n_tasks > 0, "need at least one task");
    let mut tasks = Vec::with_capacity(n_tasks);
    let mut max_mem = 0u64;
    for i in 0..n_tasks {
        let comm = rng.gen_range(1..=10u64);
        let comp = rng.gen_range(1..=10u64);
        let mem = rng.gen_range(1..=16u64);
        max_mem = max_mem.max(mem);
        tasks.push(Task::new(
            format!("t{i}"),
            Time::units_int(comm),
            Time::units_int(comp),
            MemSize::from_bytes(mem),
        ));
    }
    let capacity = MemSize::from_bytes(((max_mem as f64) * capacity_factor.max(1.0)).ceil() as u64);
    let instance = Instance::with_label(tasks, capacity, format!("random-decoupled-{n_tasks}"));
    valid_by_construction(instance, "the generated random instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_tables_have_expected_shapes() {
        assert_eq!(table2().len(), 6);
        assert_eq!(table2().capacity(), MemSize::from_bytes(10));
        assert_eq!(table3().len(), 4);
        assert_eq!(table3().capacity(), MemSize::from_bytes(6));
        assert_eq!(table4().len(), 4);
        assert_eq!(table5().len(), 5);
        assert_eq!(table5().capacity(), MemSize::from_bytes(9));
    }

    #[test]
    fn table2_contains_half_unit_computations() {
        let inst = table2();
        let e = inst.tasks().iter().find(|t| t.name == "E").unwrap();
        assert_eq!(e.comp_time, Time::units(0.5));
        let a = inst.tasks().iter().find(|t| t.name == "A").unwrap();
        assert_eq!(a.comm_time, Time::ZERO);
    }

    #[test]
    fn random_instances_are_feasible_and_sized() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 12] {
            let inst = random_instance(
                &mut rng,
                RandomInstanceConfig {
                    n_tasks: n,
                    ..Default::default()
                },
            );
            assert_eq!(inst.len(), n);
            assert!(inst.capacity() >= inst.min_capacity());
        }
    }

    #[test]
    fn random_instances_are_reproducible() {
        let a = random_instance(
            &mut StdRng::seed_from_u64(7),
            RandomInstanceConfig::default(),
        );
        let b = random_instance(
            &mut StdRng::seed_from_u64(7),
            RandomInstanceConfig::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn decoupled_memory_instances_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = random_instance_decoupled_memory(&mut rng, 10, 2.0);
        assert_eq!(inst.len(), 10);
        assert!(inst.capacity() >= inst.min_capacity());
    }

    mod feasibility_on_paper_tables {
        //! The feasibility checker against the worked examples of
        //! Tables 2–5: simulator-produced schedules are accepted, and each
        //! class of tampering (link overlap, CPU overlap, memory envelope)
        //! is rejected with the right violation.

        use super::super::*;
        use crate::feasibility::{is_feasible, validate, Violation};
        use crate::schedule::Schedule;
        use crate::simulate::{simulate_sequence, simulate_sequence_infinite};
        use crate::task::TaskId;

        fn tables() -> [Instance; 4] {
            [table2(), table3(), table4(), table5()]
        }

        /// Shifts one schedule field of task `idx` to `value` and returns
        /// the tampered schedule.
        fn with_comm_start(sched: &Schedule, idx: usize, value: Time) -> Schedule {
            let mut entries: Vec<_> = sched.entries().to_vec();
            entries[idx].comm_start = value;
            entries.into_iter().collect()
        }

        fn with_comp_start(sched: &Schedule, idx: usize, value: Time) -> Schedule {
            let mut entries: Vec<_> = sched.entries().to_vec();
            entries[idx].comp_start = value;
            entries.into_iter().collect()
        }

        #[test]
        fn simulator_schedules_are_accepted_on_all_tables() {
            for inst in tables() {
                let order = inst.task_ids();
                let sched = simulate_sequence(&inst, &order).unwrap();
                assert!(
                    is_feasible(&inst, &sched),
                    "{}: {:?}",
                    inst.label,
                    validate(&inst, &sched)
                );
            }
        }

        #[test]
        fn reversed_order_schedules_are_accepted_on_all_tables() {
            for inst in tables() {
                let mut order = inst.task_ids();
                order.reverse();
                let sched = simulate_sequence(&inst, &order).unwrap();
                assert!(
                    is_feasible(&inst, &sched),
                    "{}: {:?}",
                    inst.label,
                    validate(&inst, &sched)
                );
            }
        }

        #[test]
        fn link_overlap_is_rejected_on_all_tables() {
            for inst in tables() {
                let order = inst.task_ids();
                let sched = simulate_sequence(&inst, &order).unwrap();
                // Pull the last task's transfer back to time zero: it now
                // shares the link with the first (nonzero) transfer.
                let idx = sched.len() - 1;
                let bad = with_comm_start(&sched, idx, Time::ZERO);
                let violations = validate(&inst, &bad);
                assert!(
                    violations
                        .iter()
                        .any(|v| matches!(v, Violation::CommunicationOverlap { .. })),
                    "{}: {violations:?}",
                    inst.label
                );
            }
        }

        #[test]
        fn cpu_overlap_is_rejected_on_all_tables() {
            for inst in tables() {
                let order = inst.task_ids();
                let sched = simulate_sequence(&inst, &order).unwrap();
                // Start the last computation at the same instant as the
                // first one; both have nonzero durations on every table.
                let idx = sched.len() - 1;
                let first_comp = sched.entries()[0].comp_start;
                let bad = with_comp_start(&sched, idx, first_comp);
                let violations = validate(&inst, &bad);
                assert!(
                    violations.iter().any(|v| matches!(
                        v,
                        Violation::ComputationOverlap { .. }
                            | Violation::ComputationBeforeTransfer { .. }
                    )),
                    "{}: {violations:?}",
                    inst.label
                );
            }
        }

        #[test]
        fn memory_envelope_is_rejected_on_all_tables() {
            // The infinite-memory schedule packs transfers back to back;
            // replayed against the paper's finite capacities it must burst
            // the envelope on every table (each table was chosen by the
            // authors so that memory is the binding constraint).
            for inst in tables() {
                let order = inst.task_ids();
                let infinite = simulate_sequence_infinite(&inst, &order).unwrap();
                let violations = validate(&inst, &infinite);
                assert!(
                    violations
                        .iter()
                        .any(|v| matches!(v, Violation::MemoryExceeded { .. })),
                    "{}: {violations:?}",
                    inst.label
                );
            }
        }

        #[test]
        fn table3_hand_schedule_from_fig4_is_accepted() {
            // OOSIM on Table 3 (paper Fig. 4): comm order B, C, A, D with
            // makespan 15.
            let inst = table3();
            let order = [TaskId(1), TaskId(2), TaskId(0), TaskId(3)];
            let sched = simulate_sequence(&inst, &order).unwrap();
            assert!(is_feasible(&inst, &sched));
            assert_eq!(sched.makespan(&inst), Time::units_int(15));
        }
    }

    #[test]
    fn tight_capacity_factor_clamps_to_feasible() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = random_instance(
            &mut rng,
            RandomInstanceConfig {
                capacity_factor: 0.1, // below 1.0 would be infeasible; clamped
                ..Default::default()
            },
        );
        assert!(inst.capacity() >= inst.min_capacity());
    }
}
