//! Schedules: complete assignments of communication and computation start
//! times to every task.

use crate::instance::Instance;
use crate::task::TaskId;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Start times of one task on the two resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The task being scheduled.
    pub task: TaskId,
    /// `SCOMM(i)`: start of the input-data transfer on the communication
    /// link.
    pub comm_start: Time,
    /// `SCOMP(i)`: start of the computation on the processing unit.
    pub comp_start: Time,
}

/// A complete schedule: one [`ScheduleEntry`] per task.
///
/// Entries are kept in the order in which they were produced, which for all
/// heuristics in this workspace is the communication order. Use
/// [`Schedule::comm_order`] / [`Schedule::comp_order`] when an explicit
/// resource order is needed (they sort by start time and are therefore
/// correct even for schedules built in arbitrary entry order, e.g. by the
/// MILP solver).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schedule {
    entries: Vec<ScheduleEntry>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Creates an empty schedule with room for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        Schedule {
            entries: Vec::with_capacity(n),
        }
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: ScheduleEntry) {
        self.entries.push(entry);
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no task has been scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// The entry for a given task, if scheduled.
    pub fn entry(&self, task: TaskId) -> Option<&ScheduleEntry> {
        self.entries.iter().find(|e| e.task == task)
    }

    /// Makespan: the latest computation completion time.
    pub fn makespan(&self, instance: &Instance) -> Time {
        self.entries
            .iter()
            .map(|e| e.comp_start + instance.task(e.task).comp_time)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Latest communication completion time (always at most the makespan in
    /// a feasible schedule with non-zero computations, but useful for link
    /// utilization metrics).
    pub fn comm_finish(&self, instance: &Instance) -> Time {
        self.entries
            .iter()
            .map(|e| e.comm_start + instance.task(e.task).comm_time)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Task ids sorted by communication start time (ties broken by task id,
    /// which only matters for zero-length communications).
    pub fn comm_order(&self) -> Vec<TaskId> {
        let mut order: Vec<&ScheduleEntry> = self.entries.iter().collect();
        order.sort_by_key(|e| (e.comm_start, e.task));
        order.iter().map(|e| e.task).collect()
    }

    /// Task ids sorted by computation start time.
    pub fn comp_order(&self) -> Vec<TaskId> {
        let mut order: Vec<&ScheduleEntry> = self.entries.iter().collect();
        order.sort_by_key(|e| (e.comp_start, e.task));
        order.iter().map(|e| e.task).collect()
    }

    /// `true` iff communications and computations happen in the same order
    /// (a *permutation schedule*). All heuristics of the paper except the
    /// MILP produce permutation schedules; Proposition 1 shows the optimum
    /// may require breaking this property.
    pub fn is_permutation_schedule(&self) -> bool {
        self.comm_order() == self.comp_order()
    }

    /// Sorts entries by communication start time in place (normalization
    /// used before rendering or comparing schedules built out of order).
    pub fn normalize(&mut self) {
        self.entries.sort_by_key(|e| (e.comm_start, e.task));
    }
}

impl FromIterator<ScheduleEntry> for Schedule {
    fn from_iter<I: IntoIterator<Item = ScheduleEntry>>(iter: I) -> Self {
        Schedule {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::memory::MemSize;

    fn instance() -> Instance {
        InstanceBuilder::new()
            .capacity(MemSize::from_bytes(100))
            .task_units("A", 2.0, 3.0, 2)
            .task_units("B", 1.0, 4.0, 1)
            .build()
            .unwrap()
    }

    fn entry(task: usize, comm: f64, comp: f64) -> ScheduleEntry {
        ScheduleEntry {
            task: TaskId(task),
            comm_start: Time::units(comm),
            comp_start: Time::units(comp),
        }
    }

    #[test]
    fn makespan_and_orders() {
        let inst = instance();
        let sched: Schedule = vec![entry(0, 0.0, 2.0), entry(1, 2.0, 5.0)]
            .into_iter()
            .collect();
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.makespan(&inst), Time::units_int(9)); // B: 5 + 4
        assert_eq!(sched.comm_finish(&inst), Time::units_int(3)); // B: 2 + 1
        assert_eq!(sched.comm_order(), vec![TaskId(0), TaskId(1)]);
        assert_eq!(sched.comp_order(), vec![TaskId(0), TaskId(1)]);
        assert!(sched.is_permutation_schedule());
        assert_eq!(
            sched.entry(TaskId(1)).unwrap().comp_start,
            Time::units_int(5)
        );
        assert!(sched.entry(TaskId(7)).is_none());
    }

    #[test]
    fn non_permutation_detected() {
        let sched: Schedule = vec![entry(0, 0.0, 10.0), entry(1, 2.0, 3.0)]
            .into_iter()
            .collect();
        // A communicates first but computes second.
        assert!(!sched.is_permutation_schedule());
    }

    #[test]
    fn normalize_sorts_by_comm_start() {
        let mut sched: Schedule = vec![entry(1, 5.0, 6.0), entry(0, 0.0, 2.0)]
            .into_iter()
            .collect();
        sched.normalize();
        assert_eq!(sched.entries()[0].task, TaskId(0));
        assert_eq!(sched.entries()[1].task, TaskId(1));
    }

    #[test]
    fn empty_schedule_makespan_is_zero() {
        let inst = instance();
        let sched = Schedule::new();
        assert!(sched.is_empty());
        assert_eq!(sched.makespan(&inst), Time::ZERO);
    }

    #[test]
    fn serde_round_trip() {
        let sched: Schedule = vec![entry(0, 0.0, 2.0), entry(1, 2.0, 5.0)]
            .into_iter()
            .collect();
        let json = serde_json::to_string(&sched).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(sched, back);
    }
}
