//! Error types shared across the workspace.

use crate::task::TaskId;
use std::fmt;

/// Result alias with [`CoreError`].
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by instance construction and schedule manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The instance has no tasks.
    EmptyInstance,
    /// A task requires more memory than the instance capacity; no feasible
    /// schedule can exist.
    TaskExceedsCapacity {
        /// Offending task.
        task: TaskId,
        /// Name of the offending task.
        name: String,
    },
    /// A task id referenced by a schedule or sequence is out of range.
    UnknownTask(TaskId),
    /// A sequence or schedule does not contain every task exactly once.
    NotAPermutation {
        /// Number of tasks in the instance.
        expected: usize,
        /// Number of entries supplied.
        got: usize,
    },
    /// A sequence or schedule mentions the same task more than once.
    DuplicateTask(TaskId),
    /// A memory-capacity scale factor is not a finite non-negative number
    /// (NaN, infinite, or negative). Stored pre-formatted so the error
    /// stays `Eq` despite the `f64` origin.
    InvalidCapacityFactor(String),
    /// An execution-model spec is malformed (unknown strategy, zero stream
    /// count, non-finite or out-of-range overlap efficiency). Stored
    /// pre-formatted so the error stays `Eq` despite the `f64` origin.
    InvalidExecutionModel(String),
    /// A trace file is malformed *as a trace*, even though it may be valid
    /// JSON: unknown format version, non-integer or negative task fields,
    /// duplicate task names, or totals that overflow the `u64` tick/byte
    /// arithmetic the simulators rely on. Kept distinct from
    /// [`CoreError::Serialization`] (which covers I/O and JSON syntax) so
    /// the strict trace importer can report *what* is wrong with the data.
    InvalidTrace(String),
    /// A cost-model file or spec is malformed *as a cost model*, even though
    /// it may be valid JSON: unknown format version or backend, float or
    /// negative coefficients, empty history tables, or missing default
    /// entries. The dual of [`CoreError::InvalidTrace`] for the
    /// `dts-cost-model` format; [`CoreError::Serialization`] still covers
    /// I/O and JSON syntax.
    InvalidCostModel(String),
    /// A schedule was found infeasible; the message summarizes the first
    /// violation.
    Infeasible(String),
    /// An I/O or serialization problem (message only, to stay `Eq`).
    Serialization(String),
    /// An internal invariant was violated or a worker crashed — a bug in the
    /// harness, not a property of the input. Kept distinct from
    /// [`CoreError::Infeasible`] so callers never mistake a crash for a
    /// data-dependent modeling outcome.
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyInstance => write!(f, "instance contains no tasks"),
            CoreError::TaskExceedsCapacity { task, name } => write!(
                f,
                "task {task} ({name}) requires more memory than the capacity; instance is infeasible"
            ),
            CoreError::UnknownTask(id) => write!(f, "unknown task id {id}"),
            CoreError::NotAPermutation { expected, got } => write!(
                f,
                "sequence must contain every task exactly once (expected {expected} tasks, got {got})"
            ),
            CoreError::DuplicateTask(id) => {
                write!(f, "sequence mentions task {id} more than once")
            }
            CoreError::InvalidCapacityFactor(factor) => write!(
                f,
                "invalid capacity factor {factor}: must be a finite non-negative number"
            ),
            CoreError::InvalidExecutionModel(msg) => {
                write!(f, "invalid execution model: {msg}")
            }
            CoreError::InvalidTrace(msg) => write!(f, "invalid trace: {msg}"),
            CoreError::InvalidCostModel(msg) => write!(f, "invalid cost model: {msg}"),
            CoreError::Infeasible(msg) => write!(f, "infeasible schedule: {msg}"),
            CoreError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            CoreError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = CoreError::TaskExceedsCapacity {
            task: TaskId(3),
            name: "C".into(),
        };
        assert!(e.to_string().contains("T3"));
        assert!(CoreError::EmptyInstance.to_string().contains("no tasks"));
        let e = CoreError::NotAPermutation {
            expected: 5,
            got: 4,
        };
        assert!(e.to_string().contains("expected 5"));
        assert!(CoreError::DuplicateTask(TaskId(2))
            .to_string()
            .contains("T2"));
        let e = CoreError::InvalidCapacityFactor("NaN".into());
        assert!(e.to_string().contains("invalid capacity factor NaN"));
        let e = CoreError::InvalidExecutionModel("bad spec".into());
        assert!(e.to_string().contains("invalid execution model: bad spec"));
        let e = CoreError::InvalidTrace("duplicate task name `a`".into());
        assert!(e.to_string().contains("invalid trace: duplicate task name"));
    }
}
