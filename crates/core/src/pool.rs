//! Shared work-stealing pool for embarrassingly-parallel solve layers.
//!
//! The capacity sweeps, the batched scheduler and the `lp.k` window-size
//! sweep all have the same shape: `n` independent jobs indexed `0..n`,
//! results needed back in index order, and the error of the
//! lowest-indexed failing job must be reported (that is the error a plain
//! sequential loop reports, since such a loop stops at the first failure).
//! [`run_indexed_pool`] implements that contract once, so the concurrency
//! subtleties — work stealing, abort on failure, panic containment,
//! deterministic merge — live in a single place.

use crate::error::{CoreError, Result};
use crate::sync::{AtomicBool, AtomicUsize, Ordering};

/// Runs `job(0..n_items)` over `threads` workers and returns the results in
/// index order.
///
/// Workers claim indices one at a time from a shared counter, so jobs with
/// very different costs do not stall the pool. With `threads <= 1` (or a
/// single item) the jobs run sequentially on the caller's thread; the
/// results and the reported error are the same either way.
///
/// # Errors
///
/// A failing job stops the pool (workers claim no further indices), and
/// among the failures observed the one with the lowest index is returned.
/// Because indices are claimed in increasing order, every index below a
/// claimed one has been claimed too, so the lowest observed failure is the
/// failure a sequential loop would have stopped at. A panicking job is
/// caught and reported as [`CoreError::Internal`] instead of poisoning the
/// caller — in both the pooled and the sequential paths.
///
/// ```
/// use dts_core::pool::run_indexed_pool;
///
/// let squares = run_indexed_pool(5, 4, |i| Ok(i * i)).unwrap();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_indexed_pool<T, F>(n_items: usize, threads: usize, job: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let run_caught = |index: usize| -> Result<T> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(index)))
            .unwrap_or_else(|payload| Err(panic_error(index, payload)))
    };
    let threads = threads.clamp(1, n_items.max(1));
    if threads <= 1 {
        return (0..n_items).map(run_caught).collect();
    }

    let next_item = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let outcome = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Acquire pairs with the Release store below: a worker
                        // that observes the abort also observes everything the
                        // failing worker published before it. With Relaxed the
                        // model checker's message-passing litmus shows the flag
                        // can be seen without the prior writes (see
                        // `message_passing_litmus_distinguishes_orderings` in
                        // vendor/microloom/tests/self_test.rs).
                        if abort.load(Ordering::Acquire) {
                            break;
                        }
                        // lint: allow(L003) claim counter publishes no data; the
                        // RMW modification order alone makes each index claimed
                        // exactly once (model-checked in tests/pool_model.rs).
                        let index = next_item.fetch_add(1, Ordering::Relaxed);
                        if index >= n_items {
                            break;
                        }
                        // Panics are caught per job so a poisoned job aborts
                        // the pool as promptly as an error does, instead of
                        // surfacing only when the worker is joined.
                        match run_caught(index) {
                            Ok(value) => done.push((index, value)),
                            Err(e) => {
                                abort.store(true, Ordering::Release);
                                return Err((index, e));
                            }
                        }
                    }
                    Ok(done)
                })
            })
            .collect();
        let mut per_item: Vec<(usize, T)> = Vec::with_capacity(n_items);
        let mut first_error: Option<(usize, CoreError)> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(mut part)) => per_item.append(&mut part),
                Ok(Err((index, e))) => {
                    if first_error.as_ref().is_none_or(|(i, _)| index < *i) {
                        first_error = Some((index, e));
                    }
                }
                Err(_) => {
                    // Unreachable (worker bodies catch panics), but joining
                    // must stay panic-free.
                    if first_error.is_none() {
                        first_error = Some((
                            usize::MAX,
                            CoreError::Internal("a pool worker thread panicked".into()),
                        ));
                    }
                }
            }
        }
        if let Some((_, e)) = first_error {
            return Err(e);
        }
        per_item.sort_unstable_by_key(|(index, _)| *index);
        Ok(per_item.into_iter().map(|(_, value)| value).collect())
    });
    match outcome {
        Ok(result) => result,
        Err(_) => Err(CoreError::Internal("the worker pool panicked".into())),
    }
}

fn panic_error(index: usize, payload: Box<dyn std::any::Any + Send>) -> CoreError {
    let detail = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    CoreError::Internal(format!("pool worker panicked on item #{index}: {detail}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 16] {
            let out = run_indexed_pool(20, threads, |i| Ok(i * 2)).unwrap();
            assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = run_indexed_pool(0, 4, |_| Ok(0)).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn lowest_index_error_wins() {
        // Whatever the interleaving, the reported failure must be the one a
        // sequential loop stops at.
        for threads in [1, 3, 8] {
            let err = run_indexed_pool(50, threads, |i| {
                if i % 7 == 3 {
                    Err(CoreError::Internal(format!("job {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, CoreError::Internal("job 3".into()), "{threads}");
        }
    }

    #[test]
    fn panics_become_internal_errors() {
        for threads in [1, 4] {
            let err = run_indexed_pool(8, threads, |i| {
                if i == 2 {
                    panic!("boom");
                }
                Ok(i)
            })
            .unwrap_err();
            match err {
                CoreError::Internal(msg) => {
                    assert!(msg.contains("item #2") && msg.contains("boom"), "{msg}")
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }
}
