//! # dts-core
//!
//! Core data model for the *data-transfer ordering* problem (problem `DT` in
//! Kumar, Eyraud-Dubois & Krishnamoorthy, *Performance Models for Data
//! Transfers: A Case Study with Molecular Chemistry Kernels*, ICPP 2019).
//!
//! A set of independent tasks is executed on a processing unit `P` with local
//! memory `M` of capacity `C`. Each task's input data initially lives on a
//! remote memory node `M'` and has to be moved over a single communication
//! link before the computation can start. A task holds its memory from the
//! **start of its communication** until the **end of its computation**. The
//! objective is to order the transfers (and computations) so that
//! communication is overlapped with computation and the makespan is
//! minimized.
//!
//! This crate provides:
//!
//! * [`Time`] / [`MemSize`] — fixed-point time and byte quantities,
//! * [`exec`] — the execution-model layer (explicit, duplex, k-stream and
//!   implicit-overlap transfer semantics shared by the executors and the
//!   decision engine),
//! * [`Task`], [`Instance`] — the problem input,
//! * [`Schedule`] — a complete solution (per-task communication and
//!   computation start times),
//! * [`index`] — the memory-indexed candidate structure used by the
//!   decision-driven heuristics to select tasks in O(log n) per decision,
//! * [`pool`] — the shared work-stealing pool behind the parallel solve
//!   layers (suite sweeps, batched scheduling, `lp.k` sweeps),
//! * [`hash`] — stable 128-bit content hashing (cache keys that survive
//!   process and platform boundaries),
//! * [`cache`] — the bounded solve-once cache behind the scheduling
//!   daemon (concurrent identical requests solve exactly once),
//! * [`sync`] — the compile-time façade that lets the pool run on either
//!   `std` atomics or the `microloom` model checker's instrumented types,
//! * [`feasibility`] — the feasibility checker for schedules (link and CPU
//!   exclusivity, precedence, memory envelope),
//! * [`memory`] — memory-occupation profiles,
//! * [`perfmodel`] — calibrated cost models (analytic, history-based and
//!   regression backends) with a versioned model-file format and integer
//!   least-squares fitting,
//! * [`simulate`] — the event-driven executors used by all heuristics
//!   (same-order execution under a memory capacity, and the infinite-memory
//!   executor),
//! * [`metrics`] — makespan, idle-time and overlap metrics,
//! * [`gantt`] — ASCII Gantt rendering of schedules,
//! * [`instances`] — the example instances of Tables 2–5 of the paper and
//!   random-instance generators used by tests and benchmarks,
//! * [`testgen`] — shrinkable `microcheck` generators for tasks and
//!   instances, shared by the property tests across the workspace.

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod exec;
pub mod feasibility;
pub mod gantt;
pub mod hash;
pub mod index;
pub mod instance;
pub mod instances;
pub mod memory;
pub mod metrics;
pub mod perfmodel;
pub mod pool;
pub mod schedule;
pub mod simulate;
pub mod sync;
pub mod task;
pub mod testgen;
pub mod time;

pub use cache::SolveCache;
pub use error::{CoreError, Result};
pub use exec::{ExecutionModel, OverlapEfficiency};
pub use hash::{Digest128, StableHasher};
pub use index::CandidateIndex;
pub use instance::{Instance, InstanceBuilder, InstanceStats};
pub use memory::MemSize;
pub use perfmodel::{ComputeBackend, CostModel, CostModelSpec, LinkClass};
pub use schedule::{Schedule, ScheduleEntry};
pub use task::{Task, TaskId, TaskIntensity};
pub use time::Time;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use crate::error::{CoreError, Result};
    pub use crate::exec::{ExecutionModel, OverlapEfficiency};
    pub use crate::feasibility::{validate, Violation};
    pub use crate::instance::{Instance, InstanceBuilder, InstanceStats};
    pub use crate::memory::MemSize;
    pub use crate::metrics::ScheduleMetrics;
    pub use crate::perfmodel::{ComputeBackend, CostModel, CostModelSpec, LinkClass};
    pub use crate::schedule::{Schedule, ScheduleEntry};
    pub use crate::simulate::{
        simulate_sequence, simulate_sequence_infinite, simulate_sequence_infinite_with,
        simulate_sequence_with,
    };
    pub use crate::task::{Task, TaskId, TaskIntensity};
    pub use crate::time::Time;
}
