//! Execution models: how transfers share the communication medium.
//!
//! The paper assumes a single half-duplex link that fully serializes
//! transfers. The CPU–GPU transfer-modeling literature (van Werkhoven et
//! al., CCGrid'14) shows the interesting design space is exactly this
//! *overlap strategy*: explicit serialized copies, duplex links whose two
//! directions do not contend, `k` parallel copy streams, and implicit
//! fine-grained overlap through device-mapped memory. This module lifts
//! that choice out of the executors into a first-class value:
//!
//! * [`ExecutionModel::Explicit`] — the paper's model and the pinned
//!   baseline: one channel, transfers strictly serialized.
//! * [`ExecutionModel::Duplex`] — two directed channels; consecutive
//!   transfers alternate directions round-robin (double-buffered upload /
//!   download pipelining), so a transfer only contends with the
//!   one-before-last.
//! * [`ExecutionModel::Streams`] — `k >= 1` identical channels with
//!   earliest-free assignment (ties to the lowest channel index);
//!   `Streams { k: 1 }` is exactly `Explicit`.
//! * [`ExecutionModel::Implicit`] — transfer and computation of the same
//!   task fuse into one phase occupying link *and* CPU, with a configurable
//!   [`OverlapEfficiency`]: the fused phase lasts
//!   `comm + comp - eff * min(comm, comp)`.
//!
//! All models keep the decisions *issued in order*: transfer `i + 1` never
//! starts before transfer `i` (the runtime discovers tasks one decision at
//! a time). Memory semantics are unchanged — a task holds its memory from
//! the start of its (fused or plain) transfer to the end of its
//! computation.
//!
//! The efficiency is stored in integer parts-per-million so the model (and
//! therefore [`Instance`](crate::instance::Instance), which may carry one)
//! stays `Eq` and hashable, and so fused durations are exact integer-tick
//! arithmetic rather than float rounding.

use crate::error::{CoreError, Result};
use crate::time::Time;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;

/// Fraction of the overlappable window actually overlapped by the
/// [`ExecutionModel::Implicit`] model, stored in parts-per-million
/// (`0..=1_000_000` ⇔ `0.0..=1.0`).
///
/// ```
/// use dts_core::exec::OverlapEfficiency;
/// use dts_core::time::Time;
///
/// let eff = OverlapEfficiency::from_f64(0.75).unwrap();
/// assert_eq!(eff.ppm(), 750_000);
/// assert_eq!(eff.scale(Time::from_ticks(1000)), Time::from_ticks(750));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OverlapEfficiency(u32);

impl Serialize for OverlapEfficiency {
    fn to_value(&self) -> Value {
        Value::UInt(u64::from(self.0))
    }
}

impl Deserialize for OverlapEfficiency {
    // Hand-written so deserialization funnels through the same ppm bound
    // check as every other constructor (the vendored derive has no
    // `try_from` support).
    fn from_value(value: &Value) -> std::result::Result<Self, SerdeError> {
        let ppm = u32::from_value(value)?;
        OverlapEfficiency::from_ppm(ppm).map_err(SerdeError::custom)
    }
}

impl OverlapEfficiency {
    /// Parts-per-million scale: `1_000_000` is an efficiency of `1.0`.
    pub const SCALE: u32 = 1_000_000;
    /// No overlap at all (`0.0`).
    pub const NONE: OverlapEfficiency = OverlapEfficiency(0);
    /// Perfect overlap (`1.0`): the fused phase lasts `max(comm, comp)`.
    pub const FULL: OverlapEfficiency = OverlapEfficiency(Self::SCALE);

    /// Builds an efficiency from parts-per-million; errors above
    /// [`Self::SCALE`].
    pub fn from_ppm(ppm: u32) -> Result<Self> {
        if ppm > Self::SCALE {
            return Err(CoreError::InvalidExecutionModel(format!(
                "overlap efficiency {ppm} ppm exceeds {} (1.0)",
                Self::SCALE
            )));
        }
        Ok(OverlapEfficiency(ppm))
    }

    /// Builds an efficiency from a float in `0.0..=1.0`; NaN, infinities
    /// and out-of-range values are rejected (pre-formatted into the error
    /// so [`CoreError`] stays `Eq`).
    pub fn from_f64(eff: f64) -> Result<Self> {
        if !eff.is_finite() || !(0.0..=1.0).contains(&eff) {
            return Err(CoreError::InvalidExecutionModel(format!(
                "overlap efficiency {eff} must be a finite number in 0..=1"
            )));
        }
        // eff ∈ [0, 1] ⇒ the product is in [0, SCALE]; rounding keeps
        // `from_f64(x).as_f64()` close to `x` for human-entered values.
        Ok(OverlapEfficiency(
            (eff * f64::from(Self::SCALE)).round() as u32
        ))
    }

    /// The raw parts-per-million value.
    #[inline]
    pub fn ppm(self) -> u32 {
        self.0
    }

    /// The efficiency as a float in `0.0..=1.0`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from(self.0) / f64::from(Self::SCALE)
    }

    /// `floor(eff * t)` in exact integer-tick arithmetic. The result never
    /// exceeds `t`, so `comm + comp - eff.scale(min)` cannot underflow.
    #[inline]
    pub fn scale(self, t: Time) -> Time {
        // u128 intermediate: ticks up to u64::MAX times up to 10^6 ppm.
        let scaled = u128::from(t.ticks()) * u128::from(self.0) / u128::from(Self::SCALE);
        // scaled <= ticks <= u64::MAX because self.0 <= SCALE.
        Time::from_ticks(scaled as u64)
    }
}

impl TryFrom<u32> for OverlapEfficiency {
    type Error = CoreError;

    fn try_from(ppm: u32) -> Result<Self> {
        OverlapEfficiency::from_ppm(ppm)
    }
}

impl From<OverlapEfficiency> for u32 {
    fn from(eff: OverlapEfficiency) -> u32 {
        eff.0
    }
}

impl fmt::Display for OverlapEfficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Shortest decimal that round-trips through `from_f64`: ppm is at
        // most 6 fractional digits.
        write!(f, "{}", self.as_f64())
    }
}

/// How transfers share the communication medium (and, for
/// [`Implicit`](ExecutionModel::Implicit), the CPU). See the module docs
/// for the semantics of each strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionModel {
    /// Single half-duplex channel; transfers strictly serialized. The
    /// paper's model and the pinned baseline of the equivalence suites.
    #[default]
    Explicit,
    /// Two directed channels used round-robin by consecutive transfers
    /// (upload and download directions do not contend).
    Duplex,
    /// `k >= 1` identical channels; each transfer takes the earliest-free
    /// channel, ties broken toward the lowest index. `k = 1` is exactly
    /// [`Explicit`](ExecutionModel::Explicit).
    Streams {
        /// Number of parallel transfer channels (must be at least 1).
        k: usize,
    },
    /// Transfer and computation of a task fuse into a single phase holding
    /// link and CPU for `comm + comp - efficiency * min(comm, comp)`.
    Implicit {
        /// Fraction of the overlappable window actually overlapped.
        efficiency: OverlapEfficiency,
    },
}

impl ExecutionModel {
    /// The implicit model at full overlap efficiency, the CLI default for
    /// `--model implicit`.
    pub const IMPLICIT_FULL: ExecutionModel = ExecutionModel::Implicit {
        efficiency: OverlapEfficiency::FULL,
    };

    /// Parses a model spec as accepted by the CLI `--model` flag:
    /// `explicit`, `duplex`, `streams:<k>` or `implicit[:<efficiency>]`
    /// (case-insensitive). Never panics; malformed specs, `streams:0` and
    /// non-finite or out-of-range efficiencies are reported as
    /// [`CoreError::InvalidExecutionModel`].
    ///
    /// ```
    /// use dts_core::exec::ExecutionModel;
    ///
    /// assert_eq!(ExecutionModel::parse("streams:4").unwrap(), ExecutionModel::Streams { k: 4 });
    /// assert!(ExecutionModel::parse("streams:0").is_err());
    /// assert!(ExecutionModel::parse("implicit:NaN").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<Self> {
        let lower = spec.trim().to_ascii_lowercase();
        let (head, arg) = match lower.split_once(':') {
            Some((head, arg)) => (head, Some(arg)),
            None => (lower.as_str(), None),
        };
        let invalid = |msg: String| CoreError::InvalidExecutionModel(msg);
        match (head, arg) {
            ("explicit", None) => Ok(ExecutionModel::Explicit),
            ("duplex", None) => Ok(ExecutionModel::Duplex),
            ("explicit" | "duplex", Some(_)) => Err(invalid(format!(
                "model '{head}' takes no parameter (got '{spec}')"
            ))),
            ("streams", Some(arg)) => {
                let k: usize = arg.parse().map_err(|_| {
                    invalid(format!("stream count '{arg}' is not a positive integer"))
                })?;
                if k == 0 {
                    return Err(invalid(
                        "stream count must be at least 1 (streams:1 is the explicit model)".into(),
                    ));
                }
                Ok(ExecutionModel::Streams { k })
            }
            ("streams", None) => Err(invalid(
                "model 'streams' needs a channel count, e.g. streams:4".into(),
            )),
            ("implicit", None) => Ok(ExecutionModel::IMPLICIT_FULL),
            ("implicit", Some(arg)) => {
                let eff: f64 = arg.parse().map_err(|_| {
                    invalid(format!("overlap efficiency '{arg}' is not a number"))
                })?;
                Ok(ExecutionModel::Implicit {
                    efficiency: OverlapEfficiency::from_f64(eff)?,
                })
            }
            _ => Err(invalid(format!(
                "unknown execution model '{spec}' (expected explicit, duplex, streams:<k> or implicit[:<eff>])"
            ))),
        }
    }

    /// Validates a model that bypassed [`ExecutionModel::parse`] (e.g. one
    /// deserialized from JSON or constructed directly): `Streams` needs at
    /// least one channel.
    pub fn validate(&self) -> Result<()> {
        match self {
            ExecutionModel::Streams { k: 0 } => Err(CoreError::InvalidExecutionModel(
                "stream count must be at least 1".into(),
            )),
            _ => Ok(()),
        }
    }

    /// Number of parallel transfer channels the model provides.
    pub fn channel_count(&self) -> usize {
        match self {
            ExecutionModel::Explicit | ExecutionModel::Implicit { .. } => 1,
            ExecutionModel::Duplex => 2,
            ExecutionModel::Streams { k } => (*k).max(1),
        }
    }

    /// `true` for the paper's single serialized link.
    pub fn is_explicit(&self) -> bool {
        matches!(self, ExecutionModel::Explicit)
    }

    /// Duration of the fused transfer+computation phase of a task under the
    /// [`Implicit`](ExecutionModel::Implicit) model:
    /// `comm + comp - efficiency * min(comm, comp)`. For every other model
    /// this is simply `comm + comp` (the phases do not fuse); callers use
    /// it only on the implicit path.
    pub fn fused_duration(&self, comm: Time, comp: Time) -> Time {
        let total = comm + comp;
        match self {
            ExecutionModel::Implicit { efficiency } => {
                // scale() never exceeds its argument, so the subtraction
                // cannot underflow and the fused phase is at least
                // max(comm, comp).
                total - efficiency.scale(comm.min(comp))
            }
            _ => total,
        }
    }
}

impl fmt::Display for ExecutionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionModel::Explicit => write!(f, "explicit"),
            ExecutionModel::Duplex => write!(f, "duplex"),
            ExecutionModel::Streams { k } => write!(f, "streams:{k}"),
            ExecutionModel::Implicit { efficiency } => write!(f, "implicit:{efficiency}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_documented_spec() {
        assert_eq!(
            ExecutionModel::parse("explicit").unwrap(),
            ExecutionModel::Explicit
        );
        assert_eq!(
            ExecutionModel::parse("DUPLEX").unwrap(),
            ExecutionModel::Duplex
        );
        assert_eq!(
            ExecutionModel::parse("streams:7").unwrap(),
            ExecutionModel::Streams { k: 7 }
        );
        assert_eq!(
            ExecutionModel::parse("implicit").unwrap(),
            ExecutionModel::IMPLICIT_FULL
        );
        assert_eq!(
            ExecutionModel::parse(" implicit:0.5 ").unwrap(),
            ExecutionModel::Implicit {
                efficiency: OverlapEfficiency::from_f64(0.5).unwrap()
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs_cleanly() {
        for bad in [
            "",
            "bogus",
            "streams",
            "streams:",
            "streams:0",
            "streams:-1",
            "streams:two",
            "implicit:",
            "implicit:NaN",
            "implicit:inf",
            "implicit:-0.5",
            "implicit:1.5",
            "explicit:1",
            "duplex:2",
        ] {
            let err = ExecutionModel::parse(bad).unwrap_err();
            assert!(
                matches!(err, CoreError::InvalidExecutionModel(_)),
                "spec {bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        for model in [
            ExecutionModel::Explicit,
            ExecutionModel::Duplex,
            ExecutionModel::Streams { k: 1 },
            ExecutionModel::Streams { k: 16 },
            ExecutionModel::IMPLICIT_FULL,
            ExecutionModel::Implicit {
                efficiency: OverlapEfficiency::from_f64(0.75).unwrap(),
            },
            ExecutionModel::Implicit {
                efficiency: OverlapEfficiency::NONE,
            },
        ] {
            let spec = model.to_string();
            assert_eq!(ExecutionModel::parse(&spec).unwrap(), model, "spec {spec}");
        }
    }

    #[test]
    fn efficiency_bounds_are_enforced_everywhere() {
        assert!(OverlapEfficiency::from_ppm(1_000_000).is_ok());
        assert!(OverlapEfficiency::from_ppm(1_000_001).is_err());
        assert!(OverlapEfficiency::from_f64(f64::NAN).is_err());
        assert!(OverlapEfficiency::from_f64(f64::INFINITY).is_err());
        assert!(OverlapEfficiency::from_f64(-0.001).is_err());
        assert!(OverlapEfficiency::from_f64(1.001).is_err());
        assert_eq!(
            OverlapEfficiency::from_f64(0.0).unwrap(),
            OverlapEfficiency::NONE
        );
        assert_eq!(
            OverlapEfficiency::from_f64(1.0).unwrap(),
            OverlapEfficiency::FULL
        );
        // Serde goes through the same validation.
        assert!(serde_json::from_str::<OverlapEfficiency>("2000000").is_err());
        let eff: OverlapEfficiency = serde_json::from_str("750000").unwrap();
        assert_eq!(eff, OverlapEfficiency::from_f64(0.75).unwrap());
    }

    #[test]
    fn scale_is_exact_integer_arithmetic() {
        let eff = OverlapEfficiency::from_f64(0.75).unwrap();
        assert_eq!(eff.scale(Time::from_ticks(1000)), Time::from_ticks(750));
        assert_eq!(eff.scale(Time::ZERO), Time::ZERO);
        // Never exceeds the argument, even at u64 scale.
        let huge = Time::from_ticks(u64::MAX);
        assert_eq!(OverlapEfficiency::FULL.scale(huge), huge);
        assert!(eff.scale(huge) <= huge);
        assert_eq!(OverlapEfficiency::NONE.scale(huge), Time::ZERO);
    }

    #[test]
    fn fused_duration_interpolates_between_sum_and_max() {
        let comm = Time::units_int(4);
        let comp = Time::units_int(10);
        // eff 0: no overlap at all — the plain sum.
        let none = ExecutionModel::Implicit {
            efficiency: OverlapEfficiency::NONE,
        };
        assert_eq!(none.fused_duration(comm, comp), Time::units_int(14));
        // eff 1: perfect overlap — the max.
        assert_eq!(
            ExecutionModel::IMPLICIT_FULL.fused_duration(comm, comp),
            Time::units_int(10)
        );
        // eff 0.5: halfway.
        let half = ExecutionModel::Implicit {
            efficiency: OverlapEfficiency::from_f64(0.5).unwrap(),
        };
        assert_eq!(half.fused_duration(comm, comp), Time::units_int(12));
        // Non-implicit models never fuse.
        assert_eq!(
            ExecutionModel::Duplex.fused_duration(comm, comp),
            Time::units_int(14)
        );
    }

    #[test]
    fn validate_catches_zero_streams() {
        assert!(ExecutionModel::Streams { k: 0 }.validate().is_err());
        assert!(ExecutionModel::Streams { k: 1 }.validate().is_ok());
        assert!(ExecutionModel::Explicit.validate().is_ok());
    }

    #[test]
    fn channel_counts() {
        assert_eq!(ExecutionModel::Explicit.channel_count(), 1);
        assert_eq!(ExecutionModel::Duplex.channel_count(), 2);
        assert_eq!(ExecutionModel::Streams { k: 5 }.channel_count(), 5);
        assert_eq!(ExecutionModel::IMPLICIT_FULL.channel_count(), 1);
    }

    #[test]
    fn serde_round_trip() {
        for model in [
            ExecutionModel::Explicit,
            ExecutionModel::Duplex,
            ExecutionModel::Streams { k: 3 },
            ExecutionModel::IMPLICIT_FULL,
        ] {
            let json = serde_json::to_string(&model).unwrap();
            let back: ExecutionModel = serde_json::from_str(&json).unwrap();
            assert_eq!(model, back);
        }
    }
}
