//! Fixed-point time quantity.
//!
//! Schedules, feasibility checks and exact solvers all need exact arithmetic
//! and total ordering on time values, which rules out `f64`. [`Time`] is a
//! newtype over `u64` *ticks*; by convention one "unit" of the paper's
//! examples is [`Time::TICKS_PER_UNIT`] ticks, and trace generators use one
//! tick per microsecond. Only ratios of times are ever reported, so the
//! absolute resolution is irrelevant as long as it is consistent within an
//! instance.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in time or a duration, in integer ticks.
///
/// `Time` is used for both instants and durations; the scheduling model of
/// the paper never needs negative values, so saturating subtraction is used
/// (see [`Time::saturating_sub`]) where an underflow would otherwise be a
/// logic error.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(pub u64);

impl Time {
    /// The zero time.
    pub const ZERO: Time = Time(0);
    /// The largest representable time (used as "+infinity" by solvers).
    pub const MAX: Time = Time(u64::MAX);
    /// Number of ticks in one abstract "unit" (used by the paper's examples,
    /// which contain durations such as `0.5`).
    pub const TICKS_PER_UNIT: u64 = 1000;

    /// Creates a time from raw ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Creates a time from a (possibly fractional) number of abstract units,
    /// e.g. `Time::units(0.5)` for the half-unit tasks of Table 2.
    ///
    /// # Panics
    /// Panics if `units` is negative or not finite.
    #[inline]
    pub fn units(units: f64) -> Self {
        assert!(
            units.is_finite() && units >= 0.0,
            "Time::units requires a finite non-negative value, got {units}"
        );
        Time((units * Self::TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Creates a time from an integer number of abstract units.
    #[inline]
    pub const fn units_int(units: u64) -> Self {
        Time(units * Self::TICKS_PER_UNIT)
    }

    /// Creates a time from a number of microseconds (trace-generator
    /// convention: 1 tick = 1 µs).
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us)
    }

    /// Creates a time from seconds, rounding to the nearest microsecond.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "Time::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        Time((secs * 1e6).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Value in abstract units as a float (for reporting only).
    #[inline]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / Self::TICKS_PER_UNIT as f64
    }

    /// Value in seconds under the 1 tick = 1 µs convention.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` iff this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Maximum of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Minimum of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Ratio of two times as `f64`. Returns `f64::INFINITY` when dividing a
    /// positive time by zero and `1.0` for `0 / 0` (both conventions match
    /// how the paper classifies tasks: a task with zero communication time is
    /// infinitely compute-intensive, and a task with zero cost contributes
    /// ratio 1).
    #[inline]
    pub fn ratio(self, denom: Time) -> f64 {
        if denom.0 == 0 {
            if self.0 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// Exact subtraction. Panics (in debug builds) on underflow: a schedule
    /// where this underflows is already inconsistent.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Time> for Time {
    fn sum<I: Iterator<Item = &'a Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + *b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let units = self.as_units();
        if (units - units.round()).abs() < 1e-9 {
            write!(f, "{}", units.round() as i64)
        } else {
            write!(f, "{units:.3}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_round_trip() {
        assert_eq!(Time::units(3.0), Time::from_ticks(3000));
        assert_eq!(Time::units(0.5), Time::from_ticks(500));
        assert_eq!(Time::units_int(7), Time::from_ticks(7000));
        assert!((Time::units(2.25).as_units() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Time::units_int(3);
        let b = Time::units_int(2);
        assert_eq!(a + b, Time::units_int(5));
        assert_eq!(a - b, Time::units_int(1));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a * 2, Time::units_int(6));
        assert_eq!(a / 3, Time::units_int(1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_iterator() {
        let times = vec![Time::units_int(1), Time::units_int(2), Time::units_int(3)];
        let total: Time = times.iter().sum();
        assert_eq!(total, Time::units_int(6));
        let total2: Time = times.into_iter().sum();
        assert_eq!(total2, Time::units_int(6));
    }

    #[test]
    fn ratio_conventions() {
        assert_eq!(Time::units_int(6).ratio(Time::units_int(3)), 2.0);
        assert_eq!(Time::units_int(5).ratio(Time::ZERO), f64::INFINITY);
        assert_eq!(Time::ZERO.ratio(Time::ZERO), 1.0);
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(Time::units_int(12).to_string(), "12");
        assert_eq!(Time::units(0.5).to_string(), "0.500");
    }

    #[test]
    fn seconds_conversion() {
        let t = Time::from_secs_f64(1.5);
        assert_eq!(t.ticks(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn negative_units_panics() {
        let _ = Time::units(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Time::units_int(3), Time::ZERO, Time::units_int(1)];
        v.sort();
        assert_eq!(v, vec![Time::ZERO, Time::units_int(1), Time::units_int(3)]);
    }
}
