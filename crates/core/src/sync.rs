//! Compile-time façade over the sync primitives the pool is built on.
//!
//! Normal builds re-export the real `std::sync::atomic` types, so the
//! façade costs nothing. Building with `RUSTFLAGS="--cfg microloom"`
//! swaps in the vendored `microloom` model checker's instrumented types,
//! under which every atomic operation becomes a recorded scheduling
//! decision and the checker explores all interleavings (including stale
//! values a `Relaxed` load is allowed to observe). [`crate::pool`] is
//! written against this module only, so the code that is model checked
//! is byte-for-byte the code that ships.
//!
//! Run the model suite with:
//!
//! ```text
//! RUSTFLAGS="--cfg microloom" cargo test -p dts_core --test pool_model
//! ```

#[cfg(not(microloom))]
pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

#[cfg(microloom)]
pub use microloom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

// The mutex facade follows the same pattern for [`crate::cache`]: the
// vendored `parking_lot` stub in normal builds (its `lock()` returns the
// guard directly, recovering poisoned locks), microloom's instrumented
// mutex — same `lock()` shape — under the model checker, so the
// solve-once cache is model checked byte-for-byte as shipped.

#[cfg(not(microloom))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(microloom)]
pub use microloom::sync::{Mutex, MutexGuard};
