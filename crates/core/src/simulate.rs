//! Event-driven executors.
//!
//! The heuristics of the paper (except the MILP) all produce a *sequence* of
//! tasks which is then executed in the same order on the communication link
//! and on the processing unit. This module contains the two executors that
//! turn a sequence into a concrete [`Schedule`]:
//!
//! * [`simulate_sequence_infinite`] ignores the memory capacity; with the
//!   Johnson order it produces the `OMIM` lower bound (Algorithm 1 of the
//!   paper);
//! * [`simulate_sequence`] enforces the memory capacity: a task's
//!   communication is delayed until enough previously-acquired memory has
//!   been released by finished computations. This is the executor used by
//!   all the static heuristics of Section 4.1.

use crate::error::{CoreError, Result};
use crate::instance::Instance;
use crate::schedule::{Schedule, ScheduleEntry};
use crate::task::TaskId;
use crate::time::Time;

/// Checks that `order` is a permutation of the instance's task set.
pub fn check_permutation(instance: &Instance, order: &[TaskId]) -> Result<()> {
    if order.len() != instance.len() {
        return Err(CoreError::NotAPermutation {
            expected: instance.len(),
            got: order.len(),
        });
    }
    let mut seen = vec![false; instance.len()];
    for id in order {
        if id.index() >= instance.len() {
            return Err(CoreError::UnknownTask(*id));
        }
        if seen[id.index()] {
            return Err(CoreError::NotAPermutation {
                expected: instance.len(),
                got: order.len(),
            });
        }
        seen[id.index()] = true;
    }
    Ok(())
}

/// Executes `order` on both resources assuming unlimited memory
/// (Algorithm 1, lines 5–13). The resulting makespan for the Johnson order
/// is the `OMIM` lower bound used throughout the paper's evaluation.
pub fn simulate_sequence_infinite(instance: &Instance, order: &[TaskId]) -> Result<Schedule> {
    check_permutation(instance, order)?;
    let mut schedule = Schedule::with_capacity(order.len());
    let mut link_free = Time::ZERO;
    let mut cpu_free = Time::ZERO;
    for &id in order {
        let task = instance.task(id);
        let comm_start = link_free;
        let comm_end = comm_start + task.comm_time;
        let comp_start = comm_end.max(cpu_free);
        link_free = comm_end;
        cpu_free = comp_start + task.comp_time;
        schedule.push(ScheduleEntry {
            task: id,
            comm_start,
            comp_start,
        });
    }
    Ok(schedule)
}

/// Executes `order` on both resources under the instance's memory capacity.
///
/// The executor keeps the set of *active* tasks (communication started,
/// computation not yet finished). The next task's communication starts at the
/// earliest instant `t >= link_free` such that the memory still held at `t`
/// plus the task's requirement fits in the capacity; releases happening
/// exactly at `t` are counted as already freed (matching the schedules of
/// Figs. 4–6 of the paper, where a transfer may start at the very instant a
/// computation releases its memory). Computations run in the same order,
/// each starting as soon as its transfer is done and the processing unit is
/// free.
pub fn simulate_sequence(instance: &Instance, order: &[TaskId]) -> Result<Schedule> {
    check_permutation(instance, order)?;
    let capacity = instance.capacity();
    let mut schedule = Schedule::with_capacity(order.len());
    let mut link_free = Time::ZERO;
    let mut cpu_free = Time::ZERO;
    // Active tasks as (computation end, memory held). Computation ends are
    // non-decreasing because computations run in sequence order on a single
    // processing unit, so this behaves like a FIFO of pending releases.
    let mut active: Vec<(Time, u64)> = Vec::new();
    let mut held: u64 = 0;

    for &id in order {
        let task = instance.task(id);
        let need = task.mem.bytes();
        debug_assert!(
            need <= capacity.bytes(),
            "instance invariant: every task fits in the capacity"
        );

        // Earliest start on the link.
        let mut start = link_free;
        // Release everything that completes no later than `start`.
        while let Some(&(release, mem)) = active.first() {
            if release <= start {
                held -= mem;
                active.remove(0);
            } else {
                break;
            }
        }
        // If the task still does not fit, wait for further releases. Memory
        // only decreases until we acquire, so stepping through release
        // instants finds the earliest feasible start.
        while held + need > capacity.bytes() {
            let (release, mem) = active.remove(0);
            held -= mem;
            start = start.max(release);
        }

        let comm_start = start;
        let comm_end = comm_start + task.comm_time;
        let comp_start = comm_end.max(cpu_free);
        let comp_end = comp_start + task.comp_time;
        link_free = comm_end;
        cpu_free = comp_end;
        held += need;
        active.push((comp_end, need));
        schedule.push(ScheduleEntry {
            task: id,
            comm_start,
            comp_start,
        });
    }
    Ok(schedule)
}

/// Makespan of [`simulate_sequence`] without materializing the schedule.
/// Convenience for solvers that evaluate many orders.
pub fn sequence_makespan(instance: &Instance, order: &[TaskId]) -> Result<Time> {
    Ok(simulate_sequence(instance, order)?.makespan(instance))
}

/// Makespan of [`simulate_sequence_infinite`] without materializing the
/// schedule.
pub fn sequence_makespan_infinite(instance: &Instance, order: &[TaskId]) -> Result<Time> {
    Ok(simulate_sequence_infinite(instance, order)?.makespan(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use crate::instance::InstanceBuilder;
    use crate::memory::MemSize;

    /// Table 3 of the paper: A(3,2,3), B(1,3,1), C(4,4,4), D(2,1,2), C = 6.
    fn table3() -> Instance {
        InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .task_units("A", 3.0, 2.0, 3)
            .task_units("B", 1.0, 3.0, 1)
            .task_units("C", 4.0, 4.0, 4)
            .task_units("D", 2.0, 1.0, 2)
            .build()
            .unwrap()
    }

    fn ids(v: &[usize]) -> Vec<TaskId> {
        v.iter().map(|&i| TaskId(i)).collect()
    }

    #[test]
    fn infinite_memory_johnson_order_matches_fig4a() {
        // Johnson order for Table 3 is B, C, A, D with OMIM = 12 (Fig. 4a).
        let inst = table3();
        let sched = simulate_sequence_infinite(&inst, &ids(&[1, 2, 0, 3])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(12));
    }

    #[test]
    fn constrained_oosim_matches_fig4b() {
        // Same order under capacity 6 gives makespan 15 (Fig. 4b, OOSIM).
        let inst = table3();
        let sched = simulate_sequence(&inst, &ids(&[1, 2, 0, 3])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(15));
        assert!(is_feasible(&inst, &sched));
        // A's transfer is delayed until C's computation releases memory at 9.
        let a = sched.entry(TaskId(0)).unwrap();
        assert_eq!(a.comm_start, Time::units_int(9));
    }

    #[test]
    fn constrained_iocms_matches_fig4b() {
        // IOCMS order B, D, A, C gives makespan 16 (Fig. 4b).
        let inst = table3();
        let sched = simulate_sequence(&inst, &ids(&[1, 3, 0, 2])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(16));
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn constrained_docps_matches_fig4b() {
        // DOCPS order C, B, A, D gives makespan 14 (Fig. 4b).
        let inst = table3();
        let sched = simulate_sequence(&inst, &ids(&[2, 1, 0, 3])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(14));
    }

    #[test]
    fn constrained_doccs_matches_fig4b() {
        // DOCCS order C, A, B, D gives makespan 17 (Fig. 4b).
        let inst = table3();
        let sched = simulate_sequence(&inst, &ids(&[2, 0, 1, 3])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(17));
    }

    #[test]
    fn constrained_never_beats_infinite() {
        let inst = table3();
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut order = inst.task_ids();
        for _ in 0..50 {
            order.shuffle(&mut rng);
            let finite = sequence_makespan(&inst, &order).unwrap();
            let infinite = sequence_makespan_infinite(&inst, &order).unwrap();
            assert!(finite >= infinite);
        }
    }

    #[test]
    fn produced_schedules_are_feasible_and_permutation_ordered() {
        let inst = table3();
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut order = inst.task_ids();
        for _ in 0..50 {
            order.shuffle(&mut rng);
            let sched = simulate_sequence(&inst, &order).unwrap();
            assert!(is_feasible(&inst, &sched), "{:?}", order);
            assert_eq!(sched.comm_order(), order);
            assert!(sched.is_permutation_schedule());
        }
    }

    #[test]
    fn bad_sequences_rejected() {
        let inst = table3();
        assert!(matches!(
            simulate_sequence(&inst, &ids(&[0, 1])),
            Err(CoreError::NotAPermutation { .. })
        ));
        assert!(matches!(
            simulate_sequence(&inst, &ids(&[0, 1, 2, 2])),
            Err(CoreError::NotAPermutation { .. })
        ));
        assert!(matches!(
            simulate_sequence(&inst, &ids(&[0, 1, 2, 9])),
            Err(CoreError::UnknownTask(_))
        ));
    }

    #[test]
    fn single_task_instance() {
        let inst = InstanceBuilder::new()
            .capacity(MemSize::from_bytes(5))
            .task_units("only", 2.0, 3.0, 5)
            .build()
            .unwrap();
        let sched = simulate_sequence(&inst, &[TaskId(0)]).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(5));
    }
}
