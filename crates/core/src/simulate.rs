//! Event-driven executors.
//!
//! The heuristics of the paper (except the MILP) all produce a *sequence* of
//! tasks which is then executed in the same order on the communication link
//! and on the processing unit. This module contains the two executors that
//! turn a sequence into a concrete [`Schedule`]:
//!
//! * [`simulate_sequence_infinite`] ignores the memory capacity; with the
//!   Johnson order it produces the `OMIM` lower bound (Algorithm 1 of the
//!   paper);
//! * [`simulate_sequence`] enforces the memory capacity: a task's
//!   communication is delayed until enough previously-acquired memory has
//!   been released by finished computations. This is the executor used by
//!   all the static heuristics of Section 4.1.
//!
//! Both executors honor the instance's [`ExecutionModel`] (the paper's
//! half-duplex [`ExecutionModel::Explicit`] unless one was attached), and
//! both have `_with` variants taking the model explicitly. Under the
//! multi-channel models (duplex, streams) transfers are still *issued* in
//! sequence order — transfer `i + 1` never starts before transfer `i` —
//! but may proceed concurrently on different channels; under the implicit
//! model each task's transfer and computation fuse into a single phase.

use crate::error::{CoreError, Result};
use crate::exec::ExecutionModel;
use crate::instance::Instance;
use crate::schedule::{Schedule, ScheduleEntry};
use crate::task::TaskId;
use crate::time::Time;

/// Index of the earliest-free channel, ties broken toward the lowest
/// index (the deterministic stream-assignment rule).
fn earliest_free_channel(channels: &[Time]) -> usize {
    let mut best = 0;
    for (i, &free) in channels.iter().enumerate().skip(1) {
        if free < channels[best] {
            best = i;
        }
    }
    best
}

/// Transfer-channel occupancy under a (non-explicit) execution model:
/// per-channel free instants plus the round-robin cursor of the duplex
/// model and the instant the last transfer was issued (transfers are
/// issued in sequence order, so the next one never starts earlier).
struct Channels {
    free: Vec<Time>,
    next_duplex: usize,
    last_issue: Time,
}

impl Channels {
    fn new(model: ExecutionModel) -> Self {
        Channels {
            free: vec![Time::ZERO; model.channel_count()],
            next_duplex: 0,
            last_issue: Time::ZERO,
        }
    }

    /// Picks the channel the next transfer uses and returns it with the
    /// earliest instant the transfer may start on it.
    fn next_slot(&mut self, model: ExecutionModel) -> (usize, Time) {
        let channel = match model {
            // Consecutive transfers alternate directions.
            ExecutionModel::Duplex => {
                let c = self.next_duplex;
                self.next_duplex = (self.next_duplex + 1) % self.free.len();
                c
            }
            _ => earliest_free_channel(&self.free),
        };
        (channel, self.last_issue.max(self.free[channel]))
    }

    /// Records a transfer occupying `channel` from `start` to `end`.
    fn commit(&mut self, channel: usize, start: Time, end: Time) {
        self.last_issue = start;
        self.free[channel] = end;
    }
}

/// Checks that `order` is a permutation of the instance's task set.
///
/// A wrong-length order is reported as [`CoreError::NotAPermutation`], an
/// out-of-range id as [`CoreError::UnknownTask`] and a repeated id as
/// [`CoreError::DuplicateTask`], so callers can tell the failure modes
/// apart.
pub fn check_permutation(instance: &Instance, order: &[TaskId]) -> Result<()> {
    if order.len() != instance.len() {
        return Err(CoreError::NotAPermutation {
            expected: instance.len(),
            got: order.len(),
        });
    }
    let mut seen = vec![false; instance.len()];
    for id in order {
        if id.index() >= instance.len() {
            return Err(CoreError::UnknownTask(*id));
        }
        if seen[id.index()] {
            return Err(CoreError::DuplicateTask(*id));
        }
        seen[id.index()] = true;
    }
    Ok(())
}

/// Executes `order` on both resources assuming unlimited memory
/// (Algorithm 1, lines 5–13) under the instance's execution model. The
/// resulting makespan for the Johnson order under the explicit model is
/// the `OMIM` lower bound used throughout the paper's evaluation.
pub fn simulate_sequence_infinite(instance: &Instance, order: &[TaskId]) -> Result<Schedule> {
    simulate_sequence_infinite_with(instance, order, instance.model())
}

/// [`simulate_sequence_infinite`] under an explicit [`ExecutionModel`]
/// (overriding whatever the instance carries).
pub fn simulate_sequence_infinite_with(
    instance: &Instance,
    order: &[TaskId],
    model: ExecutionModel,
) -> Result<Schedule> {
    check_permutation(instance, order)?;
    model.validate()?;
    let mut schedule = Schedule::with_capacity(order.len());
    if model.is_explicit() {
        let mut link_free = Time::ZERO;
        let mut cpu_free = Time::ZERO;
        for &id in order {
            let task = instance.task(id);
            let comm_start = link_free;
            let comm_end = comm_start + task.comm_time;
            let comp_start = comm_end.max(cpu_free);
            link_free = comm_end;
            cpu_free = comp_start + task.comp_time;
            schedule.push(ScheduleEntry {
                task: id,
                comm_start,
                comp_start,
            });
        }
        return Ok(schedule);
    }
    let mut channels = Channels::new(model);
    let mut cpu_free = Time::ZERO;
    for &id in order {
        let task = instance.task(id);
        let entry = if let ExecutionModel::Implicit { .. } = model {
            // The fused phase holds link and CPU together.
            let start = channels.last_issue.max(cpu_free);
            let end = start + model.fused_duration(task.comm_time, task.comp_time);
            channels.commit(0, start, end);
            cpu_free = end;
            ScheduleEntry {
                task: id,
                comm_start: start,
                comp_start: end - task.comp_time,
            }
        } else {
            let (channel, start) = channels.next_slot(model);
            let comm_end = start + task.comm_time;
            channels.commit(channel, start, comm_end);
            let comp_start = comm_end.max(cpu_free);
            cpu_free = comp_start + task.comp_time;
            ScheduleEntry {
                task: id,
                comm_start: start,
                comp_start,
            }
        };
        schedule.push(entry);
    }
    Ok(schedule)
}

/// Executes `order` on both resources under the instance's memory capacity.
///
/// The executor keeps the set of *active* tasks (communication started,
/// computation not yet finished). The next task's communication starts at the
/// earliest instant `t >= link_free` such that the memory still held at `t`
/// plus the task's requirement fits in the capacity; releases happening
/// exactly at `t` are counted as already freed (matching the schedules of
/// Figs. 4–6 of the paper, where a transfer may start at the very instant a
/// computation releases its memory). Computations run in the same order,
/// each starting as soon as its transfer is done and the processing unit is
/// free.
///
/// # Errors
///
/// Returns [`CoreError::NotAPermutation`], [`CoreError::DuplicateTask`] or
/// [`CoreError::UnknownTask`] for an invalid order, and
/// [`CoreError::TaskExceedsCapacity`] if a task can never fit in the
/// instance's memory (possible only for instances that bypassed
/// [`Instance::new`] validation, e.g. deserialized ones).
pub fn simulate_sequence(instance: &Instance, order: &[TaskId]) -> Result<Schedule> {
    simulate_sequence_with(instance, order, instance.model())
}

/// [`simulate_sequence`] under an explicit [`ExecutionModel`] (overriding
/// whatever the instance carries). Memory semantics are shared by all
/// models — a task holds its memory from the start of its (fused or
/// plain) transfer to the end of its computation, and a transfer waits
/// for releases until it fits.
pub fn simulate_sequence_with(
    instance: &Instance,
    order: &[TaskId],
    model: ExecutionModel,
) -> Result<Schedule> {
    check_permutation(instance, order)?;
    model.validate()?;
    // A task larger than the whole memory can never fit; waiting for
    // releases would drain the queue and underflow. Construction enforces
    // this, but deserialized instances can violate it.
    instance.check_tasks_fit()?;
    let capacity = instance.capacity();
    let mut schedule = Schedule::with_capacity(order.len());
    let explicit = model.is_explicit();
    let implicit = matches!(model, ExecutionModel::Implicit { .. });
    let mut channels = Channels::new(model);
    let mut link_free = Time::ZERO;
    let mut cpu_free = Time::ZERO;
    // Active tasks as (computation end, memory held). Computation ends are
    // non-decreasing because computations run in sequence order on a single
    // processing unit (fused phases likewise end in issue order), so this
    // behaves like a FIFO of pending releases.
    let mut active: std::collections::VecDeque<(Time, u64)> = std::collections::VecDeque::new();
    let mut held: u64 = 0;

    for &id in order {
        let task = instance.task(id);
        let need = task.mem.bytes();

        // Earliest start on the transfer medium.
        let (channel, floor) = if explicit {
            (0, link_free)
        } else if implicit {
            // The fused phase needs the CPU too.
            (0, channels.last_issue.max(cpu_free))
        } else {
            channels.next_slot(model)
        };
        let mut start = floor;
        // Release everything that completes no later than `start`.
        while let Some(&(release, mem)) = active.front() {
            if release <= start {
                held -= mem;
                active.pop_front();
            } else {
                break;
            }
        }
        // If the task still does not fit, wait for further releases. Memory
        // only decreases until we acquire, so stepping through release
        // instants finds the earliest feasible start. The queue cannot run
        // dry: `need <= capacity` was checked above, so a non-fitting task
        // implies some memory is still held. An overflowing u64 sum cannot
        // fit either (`capacity <= u64::MAX`), so treat it as over capacity;
        // `held` then stays an exact sum, acquisitions are bounded by the
        // capacity, and the release subtractions below cannot underflow.
        while held
            .checked_add(need)
            .is_none_or(|total| total > capacity.bytes())
        {
            let (release, mem) = active.pop_front().ok_or_else(|| {
                CoreError::Internal("memory accounting desynchronized from the active set".into())
            })?;
            held -= mem;
            start = start.max(release);
        }

        let comm_start = start;
        let (comp_start, comp_end) = if implicit {
            let end = comm_start + model.fused_duration(task.comm_time, task.comp_time);
            channels.commit(0, comm_start, end);
            cpu_free = end;
            (end - task.comp_time, end)
        } else {
            let comm_end = comm_start + task.comm_time;
            channels.commit(channel, comm_start, comm_end);
            link_free = comm_end;
            let comp_start = comm_end.max(cpu_free);
            let comp_end = comp_start + task.comp_time;
            cpu_free = comp_end;
            (comp_start, comp_end)
        };
        held += need;
        active.push_back((comp_end, need));
        schedule.push(ScheduleEntry {
            task: id,
            comm_start,
            comp_start,
        });
    }
    Ok(schedule)
}

/// Makespan of [`simulate_sequence`] without materializing the schedule.
/// Convenience for solvers that evaluate many orders.
pub fn sequence_makespan(instance: &Instance, order: &[TaskId]) -> Result<Time> {
    Ok(simulate_sequence(instance, order)?.makespan(instance))
}

/// Makespan of [`simulate_sequence_infinite`] without materializing the
/// schedule.
pub fn sequence_makespan_infinite(instance: &Instance, order: &[TaskId]) -> Result<Time> {
    Ok(simulate_sequence_infinite(instance, order)?.makespan(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use crate::instance::InstanceBuilder;
    use crate::memory::MemSize;

    /// Table 3 of the paper: A(3,2,3), B(1,3,1), C(4,4,4), D(2,1,2), C = 6.
    fn table3() -> Instance {
        InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .task_units("A", 3.0, 2.0, 3)
            .task_units("B", 1.0, 3.0, 1)
            .task_units("C", 4.0, 4.0, 4)
            .task_units("D", 2.0, 1.0, 2)
            .build()
            .unwrap()
    }

    fn ids(v: &[usize]) -> Vec<TaskId> {
        v.iter().map(|&i| TaskId(i)).collect()
    }

    #[test]
    fn infinite_memory_johnson_order_matches_fig4a() {
        // Johnson order for Table 3 is B, C, A, D with OMIM = 12 (Fig. 4a).
        let inst = table3();
        let sched = simulate_sequence_infinite(&inst, &ids(&[1, 2, 0, 3])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(12));
    }

    #[test]
    fn constrained_oosim_matches_fig4b() {
        // Same order under capacity 6 gives makespan 15 (Fig. 4b, OOSIM).
        let inst = table3();
        let sched = simulate_sequence(&inst, &ids(&[1, 2, 0, 3])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(15));
        assert!(is_feasible(&inst, &sched));
        // A's transfer is delayed until C's computation releases memory at 9.
        let a = sched.entry(TaskId(0)).unwrap();
        assert_eq!(a.comm_start, Time::units_int(9));
    }

    #[test]
    fn constrained_iocms_matches_fig4b() {
        // IOCMS order B, D, A, C gives makespan 16 (Fig. 4b).
        let inst = table3();
        let sched = simulate_sequence(&inst, &ids(&[1, 3, 0, 2])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(16));
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn constrained_docps_matches_fig4b() {
        // DOCPS order C, B, A, D gives makespan 14 (Fig. 4b).
        let inst = table3();
        let sched = simulate_sequence(&inst, &ids(&[2, 1, 0, 3])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(14));
    }

    #[test]
    fn constrained_doccs_matches_fig4b() {
        // DOCCS order C, A, B, D gives makespan 17 (Fig. 4b).
        let inst = table3();
        let sched = simulate_sequence(&inst, &ids(&[2, 0, 1, 3])).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(17));
    }

    #[test]
    fn constrained_never_beats_infinite() {
        let inst = table3();
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut order = inst.task_ids();
        for _ in 0..50 {
            order.shuffle(&mut rng);
            let finite = sequence_makespan(&inst, &order).unwrap();
            let infinite = sequence_makespan_infinite(&inst, &order).unwrap();
            assert!(finite >= infinite);
        }
    }

    #[test]
    fn produced_schedules_are_feasible_and_permutation_ordered() {
        let inst = table3();
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut order = inst.task_ids();
        for _ in 0..50 {
            order.shuffle(&mut rng);
            let sched = simulate_sequence(&inst, &order).unwrap();
            assert!(is_feasible(&inst, &sched), "{:?}", order);
            assert_eq!(sched.comm_order(), order);
            assert!(sched.is_permutation_schedule());
        }
    }

    #[test]
    fn bad_sequences_rejected() {
        let inst = table3();
        assert!(matches!(
            simulate_sequence(&inst, &ids(&[0, 1])),
            Err(CoreError::NotAPermutation { .. })
        ));
        assert!(matches!(
            simulate_sequence(&inst, &ids(&[0, 1, 2, 2])),
            Err(CoreError::DuplicateTask(TaskId(2)))
        ));
        assert!(matches!(
            simulate_sequence(&inst, &ids(&[0, 1, 2, 9])),
            Err(CoreError::UnknownTask(_))
        ));
    }

    #[test]
    fn duplicates_rejected_by_every_entry_point() {
        // The duplicated id (not the wrong length) must be reported by every
        // public function that validates an order.
        let inst = table3();
        let dup = ids(&[0, 1, 1, 3]);
        assert_eq!(
            simulate_sequence(&inst, &dup).unwrap_err(),
            CoreError::DuplicateTask(TaskId(1))
        );
        assert_eq!(
            simulate_sequence_infinite(&inst, &dup).unwrap_err(),
            CoreError::DuplicateTask(TaskId(1))
        );
        assert_eq!(
            sequence_makespan(&inst, &dup).unwrap_err(),
            CoreError::DuplicateTask(TaskId(1))
        );
        assert_eq!(
            sequence_makespan_infinite(&inst, &dup).unwrap_err(),
            CoreError::DuplicateTask(TaskId(1))
        );
        assert_eq!(
            check_permutation(&inst, &dup).unwrap_err(),
            CoreError::DuplicateTask(TaskId(1))
        );
    }

    #[test]
    fn oversized_task_returns_error_instead_of_panicking() {
        // `Instance::new` rejects tasks larger than the capacity, but an
        // instance deserialized from untrusted JSON can carry one; the
        // executor must fail cleanly rather than drain the release queue and
        // panic.
        let json = r#"{
            "tasks": [
                {"name": "small", "comm_time": 1000, "comp_time": 1000, "mem": 2},
                {"name": "huge", "comm_time": 2000, "comp_time": 1000, "mem": 9}
            ],
            "capacity": 4,
            "label": "malformed"
        }"#;
        let inst: Instance = serde_json::from_str(json).unwrap();
        let order = inst.task_ids();
        assert_eq!(
            simulate_sequence(&inst, &order).unwrap_err(),
            CoreError::TaskExceedsCapacity {
                task: TaskId(1),
                name: "huge".into(),
            }
        );
        assert_eq!(
            sequence_makespan(&inst, &order).unwrap_err(),
            CoreError::TaskExceedsCapacity {
                task: TaskId(1),
                name: "huge".into(),
            }
        );
        // The infinite-memory executor ignores the capacity by design.
        assert!(simulate_sequence_infinite(&inst, &order).is_ok());
    }

    #[test]
    fn u64_scale_memory_does_not_overflow_the_accounting() {
        // Each task fits the capacity on its own, but their sum overflows
        // u64. The overflowing sum must count as "does not fit" (an exact
        // sum would exceed any u64 capacity), so the executor serializes the
        // tasks instead of panicking or wrapping into a full-memory-is-free
        // schedule; the release bookkeeping must then drain exactly.
        let huge = u64::MAX;
        let json = format!(
            r#"{{
                "tasks": [
                    {{"name": "a", "comm_time": 1000, "comp_time": 1000, "mem": {huge}}},
                    {{"name": "b", "comm_time": 1000, "comp_time": 1000, "mem": 2}},
                    {{"name": "c", "comm_time": 1000, "comp_time": 1000, "mem": 2}}
                ],
                "capacity": {huge},
                "label": "u64-scale"
            }}"#
        );
        let inst: Instance = serde_json::from_str(&json).unwrap();
        let sched = simulate_sequence(&inst, &inst.task_ids()).unwrap();
        assert_eq!(sched.len(), 3);
        // b must wait for a's computation to release the whole memory.
        assert_eq!(
            sched.entry(TaskId(1)).unwrap().comm_start,
            Time::from_ticks(2000)
        );
        // b and c (2 bytes each) overlap fine afterwards.
        assert_eq!(
            sched.entry(TaskId(2)).unwrap().comm_start,
            Time::from_ticks(3000)
        );
    }

    #[test]
    fn streams_one_is_exactly_explicit() {
        use crate::exec::ExecutionModel;
        let inst = table3();
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut order = inst.task_ids();
        for _ in 0..20 {
            order.shuffle(&mut rng);
            let explicit = simulate_sequence_with(&inst, &order, ExecutionModel::Explicit).unwrap();
            let one =
                simulate_sequence_with(&inst, &order, ExecutionModel::Streams { k: 1 }).unwrap();
            assert_eq!(explicit, one);
            let explicit_inf =
                simulate_sequence_infinite_with(&inst, &order, ExecutionModel::Explicit).unwrap();
            let one_inf =
                simulate_sequence_infinite_with(&inst, &order, ExecutionModel::Streams { k: 1 })
                    .unwrap();
            assert_eq!(explicit_inf, one_inf);
        }
    }

    #[test]
    fn duplex_pipelines_table3_by_hand() {
        use crate::exec::ExecutionModel;
        // Order B, C, A, D under duplex round-robin (B→ch0, C→ch1, A→ch0,
        // D→ch1): B comm [0,1) comp [1,4); C comm [0,4) (other direction,
        // no contention) comp [4,8). A needs 3 bytes: after B's release at
        // 4 the held 4 (C) + 3 > 6, so A waits for C's release at 8 —
        // comm [8,11), comp [11,13). D issues at max(issue 8, ch1 free 4)
        // = 8: comm [8,10), comp [13,14). Makespan 14 < explicit's 15
        // (Fig. 4b, OOSIM).
        let inst = table3();
        let order = ids(&[1, 2, 0, 3]);
        let sched = simulate_sequence_with(&inst, &order, ExecutionModel::Duplex).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(14));
        assert_eq!(
            sched.entry(TaskId(2)).unwrap().comm_start,
            Time::units_int(0)
        );
        assert_eq!(
            sched.entry(TaskId(0)).unwrap().comm_start,
            Time::units_int(8)
        );
        assert_eq!(
            sched.entry(TaskId(3)).unwrap().comm_start,
            Time::units_int(8)
        );
        let explicit = simulate_sequence(&inst, &order).unwrap();
        assert_eq!(explicit.makespan(&inst), Time::units_int(15));
        assert!(sched.makespan(&inst) <= explicit.makespan(&inst));
    }

    #[test]
    fn implicit_full_overlap_fuses_phases() {
        use crate::exec::ExecutionModel;
        // Under full-efficiency implicit overlap each task occupies both
        // resources for max(comm, comp): A 3, B 3, C 4, D 2 ⇒ makespan 12
        // for any order that never waits on memory.
        let inst = table3();
        let sched =
            simulate_sequence_with(&inst, &ids(&[1, 2, 0, 3]), ExecutionModel::IMPLICIT_FULL)
                .unwrap();
        // B [0,3), C [3,7) (B releases at 3), A [7,10), D [10,12).
        assert_eq!(sched.makespan(&inst), Time::units_int(12));
        // Each entry's computation ends when its fused phase does.
        for (id, task) in inst.iter() {
            let entry = sched.entry(id).unwrap();
            assert!(entry.comp_start >= entry.comm_start);
            let fused =
                ExecutionModel::IMPLICIT_FULL.fused_duration(task.comm_time, task.comp_time);
            assert_eq!(entry.comp_start + task.comp_time, entry.comm_start + fused);
        }
    }

    #[test]
    fn model_carried_by_the_instance_is_honored() {
        use crate::exec::ExecutionModel;
        let inst = table3();
        let duplex_inst = inst.with_model(ExecutionModel::Duplex).unwrap();
        let order = ids(&[1, 2, 0, 3]);
        assert_eq!(
            simulate_sequence(&duplex_inst, &order).unwrap(),
            simulate_sequence_with(&inst, &order, ExecutionModel::Duplex).unwrap()
        );
        assert_eq!(
            simulate_sequence_infinite(&duplex_inst, &order).unwrap(),
            simulate_sequence_infinite_with(&inst, &order, ExecutionModel::Duplex).unwrap()
        );
    }

    #[test]
    fn invalid_model_rejected_not_panicking() {
        use crate::exec::ExecutionModel;
        let inst = table3();
        let order = inst.task_ids();
        assert!(matches!(
            simulate_sequence_with(&inst, &order, ExecutionModel::Streams { k: 0 }),
            Err(CoreError::InvalidExecutionModel(_))
        ));
        assert!(matches!(
            simulate_sequence_infinite_with(&inst, &order, ExecutionModel::Streams { k: 0 }),
            Err(CoreError::InvalidExecutionModel(_))
        ));
    }

    #[test]
    fn single_task_instance() {
        let inst = InstanceBuilder::new()
            .capacity(MemSize::from_bytes(5))
            .task_units("only", 2.0, 3.0, 5)
            .build()
            .unwrap();
        let sched = simulate_sequence(&inst, &[TaskId(0)]).unwrap();
        assert_eq!(sched.makespan(&inst), Time::units_int(5));
    }
}
