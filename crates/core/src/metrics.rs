//! Makespan, idle-time and overlap metrics for schedules.

use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Summary metrics of a schedule.
///
/// The paper's headline metric is the *ratio to optimal*
/// `r(H) = makespan(H) / OMIM`; [`ScheduleMetrics::ratio_to`] computes it
/// given the `OMIM` bound. The other fields quantify how much
/// communication/computation overlap the schedule achieves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Completion time of the last computation.
    pub makespan: Time,
    /// Total time the communication link is busy (sum of transfer times).
    pub comm_busy: Time,
    /// Total time the processing unit is busy (sum of computation times).
    pub comp_busy: Time,
    /// Time during which both resources are busy simultaneously — the
    /// achieved communication/computation overlap.
    pub overlap: Time,
    /// Idle time on the communication link before its last transfer ends.
    pub comm_idle: Time,
    /// Idle time on the processing unit before the makespan.
    pub comp_idle: Time,
}

impl ScheduleMetrics {
    /// Computes the metrics of `schedule` on `instance`.
    ///
    /// The schedule is assumed feasible (exclusive resources); overlapping
    /// intervals would make the busy-time accounting meaningless.
    pub fn of(instance: &Instance, schedule: &Schedule) -> Self {
        let makespan = schedule.makespan(instance);
        let comm_busy: Time = schedule
            .entries()
            .iter()
            .map(|e| instance.task(e.task).comm_time)
            .sum();
        let comp_busy: Time = schedule
            .entries()
            .iter()
            .map(|e| instance.task(e.task).comp_time)
            .sum();

        // Overlap: total measure of instants where a transfer and a
        // computation are simultaneously in progress. Computed by sweeping
        // the merged interval boundaries.
        let mut comm_intervals: Vec<(Time, Time)> = schedule
            .entries()
            .iter()
            .map(|e| {
                let t = instance.task(e.task);
                (e.comm_start, e.comm_start + t.comm_time)
            })
            .filter(|(s, e)| e > s)
            .collect();
        let mut comp_intervals: Vec<(Time, Time)> = schedule
            .entries()
            .iter()
            .map(|e| {
                let t = instance.task(e.task);
                (e.comp_start, e.comp_start + t.comp_time)
            })
            .filter(|(s, e)| e > s)
            .collect();
        comm_intervals.sort();
        comp_intervals.sort();
        let overlap = interval_intersection(&comm_intervals, &comp_intervals);

        let comm_finish = schedule.comm_finish(instance);
        let comm_idle = comm_finish.saturating_sub(comm_busy);
        let comp_idle = makespan.saturating_sub(comp_busy);

        ScheduleMetrics {
            makespan,
            comm_busy,
            comp_busy,
            overlap,
            comm_idle,
            comp_idle,
        }
    }

    /// Ratio of this schedule's makespan to a reference makespan (usually
    /// `OMIM`). Returns `1.0` when both are zero.
    pub fn ratio_to(&self, reference: Time) -> f64 {
        self.makespan.ratio(reference)
    }

    /// Fraction of the total communication time that is overlapped with
    /// computation, in `[0, 1]`.
    pub fn overlap_fraction(&self) -> f64 {
        if self.comm_busy.is_zero() {
            0.0
        } else {
            self.overlap.ticks() as f64 / self.comm_busy.ticks() as f64
        }
    }
}

/// Total measure of the intersection of two sorted lists of disjoint
/// half-open intervals.
fn interval_intersection(a: &[(Time, Time)], b: &[(Time, Time)]) -> Time {
    let mut total = Time::ZERO;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let start = a[i].0.max(b[j].0);
        let end = a[i].1.min(b[j].1);
        if end > start {
            total += end - start;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::memory::MemSize;
    use crate::simulate::{simulate_sequence, simulate_sequence_infinite};
    use crate::task::TaskId;

    fn table3() -> Instance {
        InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .task_units("A", 3.0, 2.0, 3)
            .task_units("B", 1.0, 3.0, 1)
            .task_units("C", 4.0, 4.0, 4)
            .task_units("D", 2.0, 1.0, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn metrics_on_omim_schedule() {
        let inst = table3();
        let order = [TaskId(1), TaskId(2), TaskId(0), TaskId(3)];
        let sched = simulate_sequence_infinite(&inst, &order).unwrap();
        let m = ScheduleMetrics::of(&inst, &sched);
        assert_eq!(m.makespan, Time::units_int(12));
        assert_eq!(m.comm_busy, Time::units_int(10));
        assert_eq!(m.comp_busy, Time::units_int(10));
        // Fig. 4a: comm [0,10), comp busy [1,12) except idle [4,5):
        // overlap = comm time after t=1 minus the comp idle slot [4,5).
        assert_eq!(m.overlap, Time::units_int(8));
        assert_eq!(m.comm_idle, Time::ZERO);
        assert_eq!(m.comp_idle, Time::units_int(2));
        assert!((m.ratio_to(Time::units_int(12)) - 1.0).abs() < 1e-12);
        assert!((m.overlap_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn ratio_to_reference() {
        let inst = table3();
        let order = [TaskId(1), TaskId(2), TaskId(0), TaskId(3)];
        let sched = simulate_sequence(&inst, &order).unwrap();
        let m = ScheduleMetrics::of(&inst, &sched);
        assert_eq!(m.makespan, Time::units_int(15));
        assert!((m.ratio_to(Time::units_int(12)) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn interval_intersection_basic() {
        let a = vec![(Time::units_int(0), Time::units_int(5))];
        let b = vec![
            (Time::units_int(1), Time::units_int(2)),
            (Time::units_int(4), Time::units_int(9)),
        ];
        assert_eq!(interval_intersection(&a, &b), Time::units_int(2));
        assert_eq!(interval_intersection(&b, &a), Time::units_int(2));
        assert_eq!(interval_intersection(&a, &[]), Time::ZERO);
    }

    #[test]
    fn sequential_schedule_has_zero_overlap() {
        let inst = InstanceBuilder::new()
            .capacity(MemSize::from_bytes(1))
            .task_units("A", 2.0, 3.0, 1)
            .task_units("B", 4.0, 1.0, 1)
            .build()
            .unwrap();
        // Capacity 1 forces fully sequential execution.
        let sched = simulate_sequence(&inst, &[TaskId(0), TaskId(1)]).unwrap();
        let m = ScheduleMetrics::of(&inst, &sched);
        assert_eq!(m.overlap, Time::ZERO);
        assert_eq!(m.makespan, Time::units_int(10));
        assert_eq!(m.overlap_fraction(), 0.0);
    }
}
