//! [`microcheck`] generators for the core domain types.
//!
//! Property tests across the workspace draw task lists and whole instances
//! from these generators instead of hand-rolling seeded loops. Shrinking
//! follows the shape of the domain: task lists **halve their task count**
//! before removing single tasks, and the per-task communication,
//! computation and memory values shrink toward the low end of their ranges
//! (memory conventionally toward 1), so a failing schedule-level property
//! minimizes to a near-trivial instance whose defect is readable by eye.
//!
//! ```
//! use dts_core::testgen;
//! use microcheck::{Config, Gen};
//! use rand::prelude::*;
//!
//! let gen = testgen::instance_gen(1..=20);
//! let mut rng = StdRng::seed_from_u64(7);
//! let spec = gen.generate(&mut rng);
//! let instance = spec.build();
//! assert_eq!(instance.len(), spec.tasks.len());
//! // Capacity always covers the largest task, so the instance is valid.
//! assert!(instance.tasks().iter().all(|t| t.mem <= instance.capacity()));
//! ```

use crate::instance::{Instance, InstanceBuilder};
use crate::memory::MemSize;
use crate::task::Task;
use crate::time::Time;
use microcheck::gens::{self, IntRange, VecOf};
use microcheck::Gen;
use rand::prelude::*;
use std::ops::RangeInclusive;

/// The raw integers a generated task is built from: communication and
/// computation times in whole [`Time`] units and the memory requirement in
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpec {
    /// Communication time, whole units.
    pub comm: u64,
    /// Computation time, whole units.
    pub comp: u64,
    /// Memory requirement, bytes.
    pub mem: u64,
}

impl TaskSpec {
    /// Materializes the spec as a [`Task`] named `name`.
    pub fn to_task(self, name: impl Into<String>) -> Task {
        Task::new(
            name,
            Time::units_int(self.comm),
            Time::units_int(self.comp),
            MemSize::from_bytes(self.mem),
        )
    }
}

/// Generator of single [`TaskSpec`]s; see [`task_gen`].
#[derive(Debug, Clone)]
pub struct TaskGen {
    comm: IntRange<u64>,
    comp: IntRange<u64>,
    mem: IntRange<u64>,
}

/// Tasks with communication/computation times and memory drawn uniformly
/// from the given inclusive ranges. Each field shrinks toward its range's
/// low end independently.
pub fn task_gen(
    comm: RangeInclusive<u64>,
    comp: RangeInclusive<u64>,
    mem: RangeInclusive<u64>,
) -> TaskGen {
    TaskGen {
        comm: gens::u64_in(comm),
        comp: gens::u64_in(comp),
        mem: gens::u64_in(mem),
    }
}

/// The default task domain of the paper-style random tests: times in
/// `0..=30` units, memory in `1..=16` bytes.
pub fn small_task_gen() -> TaskGen {
    task_gen(0..=30, 0..=30, 1..=16)
}

/// A tie-heavy task domain: tiny value ranges force many equal
/// communication times, ratios and memory footprints, the cases where
/// id-based tie-breaking is all that separates candidates.
pub fn tie_heavy_task_gen() -> TaskGen {
    task_gen(0..=2, 0..=2, 0..=4)
}

/// A transfer-bound task domain: communication dominates computation, so
/// under the explicit model the link is the bottleneck and the overlap
/// models (duplex, streams) genuinely reshape the timeline — and, through
/// earlier releases, the decisions of the dynamic heuristics. The
/// adversarial domain of the execution-model properties.
pub fn transfer_bound_task_gen() -> TaskGen {
    task_gen(8..=30, 0..=6, 1..=16)
}

/// Transfer-bound *and* tie-heavy: communication still dominates but is
/// drawn from a tiny range, so channel assignments and id tie-breaks
/// decide everything.
pub fn transfer_bound_tie_heavy_task_gen() -> TaskGen {
    task_gen(3..=5, 0..=1, 1..=3)
}

/// A memory-cliff task domain: every task needs more than half of the
/// largest task's memory, so with tight capacity slack (see
/// [`memory_cliff_instance_gen`]) almost no two tasks coexist in memory —
/// the schedule degenerates to near-sequential execution punctuated by
/// memory-blocked decisions, the regime where the candidate index's
/// memory filtering does all the work.
pub fn memory_cliff_task_gen() -> TaskGen {
    task_gen(0..=30, 0..=30, 8..=16)
}

/// Instances from the [`memory_cliff_task_gen`] domain with at most one
/// byte of capacity slack: since every task needs 8–16 bytes and the
/// capacity is the largest task plus the slack (at most 17), two tasks fit
/// together only when both sit near the domain's low end while the
/// largest task sits at its top.
pub fn memory_cliff_instance_gen(len: RangeInclusive<usize>) -> InstanceGen {
    instance_gen_with(memory_cliff_task_gen(), len, 0..=1)
}

/// A continuous-communication task domain: communication times are drawn
/// from a range vastly wider than any generated task count, so almost
/// every task sits in its own equal-communication run — the regime where
/// the candidate index's ratio query must rely on its bucketed search
/// instead of run-granular probing (one probe per run is a linear scan
/// here).
pub fn continuous_comm_task_gen() -> TaskGen {
    task_gen(0..=100_000, 0..=30, 8..=16)
}

/// Instances combining [`continuous_comm_task_gen`] with the memory
/// cliff of [`memory_cliff_instance_gen`]: at most one byte of capacity
/// slack over tasks needing 8–16 bytes, so run champions are routinely
/// memory-blocked while nearly every run is distinct — the adversarial
/// domain of the bucketed ratio query.
pub fn continuous_comm_memory_cliff_instance_gen(len: RangeInclusive<usize>) -> InstanceGen {
    instance_gen_with(continuous_comm_task_gen(), len, 0..=1)
}

/// Instances from the [`transfer_bound_task_gen`] domain with tight
/// capacity slack, so memory waits interleave with channel contention.
pub fn transfer_bound_instance_gen(len: RangeInclusive<usize>) -> InstanceGen {
    instance_gen_with(transfer_bound_task_gen(), len, 0..=6)
}

/// Instances from the [`transfer_bound_tie_heavy_task_gen`] domain with
/// tight capacity slack.
pub fn transfer_bound_tie_heavy_instance_gen(len: RangeInclusive<usize>) -> InstanceGen {
    instance_gen_with(transfer_bound_tie_heavy_task_gen(), len, 0..=4)
}

impl Gen for TaskGen {
    type Value = TaskSpec;

    fn generate(&self, rng: &mut StdRng) -> TaskSpec {
        TaskSpec {
            comm: self.comm.generate(rng),
            comp: self.comp.generate(rng),
            mem: self.mem.generate(rng),
        }
    }

    fn shrink(&self, value: &TaskSpec) -> Vec<TaskSpec> {
        let mut out = Vec::new();
        for comm in self.comm.shrink(&value.comm) {
            out.push(TaskSpec { comm, ..*value });
        }
        for comp in self.comp.shrink(&value.comp) {
            out.push(TaskSpec { comp, ..*value });
        }
        for mem in self.mem.shrink(&value.mem) {
            out.push(TaskSpec { mem, ..*value });
        }
        out
    }
}

/// Task lists of `len` tasks drawn from `task`. Shrinking halves the list
/// before removing single tasks, then shrinks individual task values.
pub fn task_list_gen(task: TaskGen, len: RangeInclusive<usize>) -> VecOf<TaskGen> {
    gens::vec_of(task, len)
}

/// A shrinkable recipe for a whole [`Instance`]; produced by
/// [`instance_gen`], materialized with [`InstanceSpec::build`].
///
/// The capacity is stored as *slack above the largest task* rather than as
/// an absolute number so that every shrink of the task list keeps the
/// instance valid (capacity always covers the largest remaining task).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceSpec {
    /// The task list.
    pub tasks: Vec<TaskSpec>,
    /// Extra capacity in bytes on top of the largest task's memory.
    pub slack: u64,
}

impl InstanceSpec {
    /// The memory capacity this spec implies.
    pub fn capacity(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| t.mem)
            .max()
            .unwrap_or(0)
            .saturating_add(self.slack)
            .max(1)
    }

    /// Builds the instance (tasks named `t0`, `t1`, ... in order).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no tasks (generators built by
    /// [`instance_gen`] always draw at least one).
    pub fn build(&self) -> Instance {
        assert!(
            !self.tasks.is_empty(),
            "InstanceSpec::build needs at least one task"
        );
        let mut builder = InstanceBuilder::new().capacity(MemSize::from_bytes(self.capacity()));
        for (i, task) in self.tasks.iter().enumerate() {
            builder = builder.task(task.to_task(format!("t{i}")));
        }
        match builder.build() {
            Ok(instance) => instance,
            // `capacity()` covers the largest task by construction and
            // emptiness is asserted above, so no builder error remains.
            Err(e) => unreachable!("spec capacity covers every task: {e}"),
        }
    }
}

/// Generator of [`InstanceSpec`]s; see [`instance_gen`] /
/// [`instance_gen_with`].
#[derive(Debug, Clone)]
pub struct InstanceGen {
    tasks: VecOf<TaskGen>,
    slack: IntRange<u64>,
}

/// Instances of `len` tasks from the [`small_task_gen`] domain, with a
/// small random capacity slack (0–8 bytes above the largest task).
pub fn instance_gen(len: RangeInclusive<usize>) -> InstanceGen {
    instance_gen_with(small_task_gen(), len, 0..=8)
}

/// Instances with an explicit task domain and capacity slack range. The
/// length range must not include 0 — empty instances are rejected by
/// [`InstanceBuilder`].
pub fn instance_gen_with(
    task: TaskGen,
    len: RangeInclusive<usize>,
    slack: RangeInclusive<u64>,
) -> InstanceGen {
    assert!(*len.start() >= 1, "instances need at least one task");
    InstanceGen {
        tasks: task_list_gen(task, len),
        slack: gens::u64_in(slack),
    }
}

impl Gen for InstanceGen {
    type Value = InstanceSpec;

    fn generate(&self, rng: &mut StdRng) -> InstanceSpec {
        InstanceSpec {
            tasks: self.tasks.generate(rng),
            slack: self.slack.generate(rng),
        }
    }

    fn shrink(&self, value: &InstanceSpec) -> Vec<InstanceSpec> {
        let mut out: Vec<InstanceSpec> = self
            .tasks
            .shrink(&value.tasks)
            .into_iter()
            .map(|tasks| InstanceSpec {
                tasks,
                slack: value.slack,
            })
            .collect();
        out.extend(
            self.slack
                .shrink(&value.slack)
                .into_iter()
                .map(|slack| InstanceSpec {
                    tasks: value.tasks.clone(),
                    slack,
                }),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instances_are_valid_and_in_domain() {
        let gen = instance_gen(1..=25);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let spec = gen.generate(&mut rng);
            assert!((1..=25).contains(&spec.tasks.len()));
            let instance = spec.build();
            assert_eq!(instance.len(), spec.tasks.len());
            for task in instance.tasks() {
                assert!(task.mem <= instance.capacity());
                assert!(task.comm_time <= Time::units_int(30));
                assert!(task.comp_time <= Time::units_int(30));
            }
        }
    }

    #[test]
    fn instance_shrinks_never_lose_validity_or_grow() {
        let gen = instance_gen(1..=25);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let spec = gen.generate(&mut rng);
            for candidate in gen.shrink(&spec) {
                assert!(!candidate.tasks.is_empty());
                assert!(candidate.tasks.len() <= spec.tasks.len());
                // Building must succeed for every shrink candidate.
                let instance = candidate.build();
                assert!(instance
                    .tasks()
                    .iter()
                    .all(|t| t.mem <= instance.capacity()));
            }
        }
    }

    #[test]
    fn memory_cliff_instances_rarely_fit_two_tasks() {
        let gen = memory_cliff_instance_gen(2..=12);
        let mut rng = StdRng::seed_from_u64(11);
        let (mut pairs, mut blocked) = (0u64, 0u64);
        for _ in 0..50 {
            let spec = gen.generate(&mut rng);
            let capacity = spec.capacity();
            for window in spec.tasks.windows(2) {
                pairs += 1;
                let pair = window[0].mem.checked_add(window[1].mem);
                if pair.is_none_or(|sum| sum > capacity) {
                    blocked += 1;
                }
            }
        }
        // The cliff shape: the strong majority of adjacent pairs cannot
        // coexist in memory (both tasks need > half the capacity unless
        // both sit at the domain's low end).
        assert!(
            blocked * 10 >= pairs * 6,
            "only {blocked}/{pairs} pairs were memory-blocked"
        );
    }

    #[test]
    fn task_spec_shrinks_move_toward_the_range_lows() {
        let gen = small_task_gen();
        let spec = TaskSpec {
            comm: 20,
            comp: 10,
            mem: 8,
        };
        for candidate in gen.shrink(&spec) {
            assert!(
                candidate.comm <= spec.comm
                    && candidate.comp <= spec.comp
                    && candidate.mem <= spec.mem
            );
            assert!(candidate != spec);
            assert!(candidate.mem >= 1, "memory shrinks toward 1, not 0");
        }
    }
}
