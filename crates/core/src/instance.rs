//! Problem instances: a set of tasks plus a memory capacity.

use crate::error::{CoreError, Result};
use crate::exec::ExecutionModel;
use crate::memory::MemSize;
use crate::perfmodel::{ComputeBackend, CostModel, CostModelSpec, LinkClass};
use crate::task::{Task, TaskId, TaskIntensity};
use crate::time::Time;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// An instance of problem `DT`: independent tasks, a single communication
/// link, a single processing unit and a local memory of capacity
/// [`capacity`](Instance::capacity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    tasks: Vec<Task>,
    capacity: MemSize,
    /// Optional label (trace file name, table number, ...).
    pub label: String,
    /// Execution model the instance is meant to run under; absent (the
    /// common case, and every pre-existing serialized instance) means the
    /// paper's [`ExecutionModel::Explicit`].
    model: Option<ExecutionModel>,
    /// Cost model the task durations were materialized under; absent means
    /// the analytic default (the durations are the trace's own numbers).
    cost_model: Option<CostModelSpec>,
}

// Hand-written (de)serialization so the `model` key is omitted when absent
// and optional when read: every instance serialized before the
// execution-model layer existed keeps loading (and printing) unchanged.
impl Serialize for Instance {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("tasks".to_string(), self.tasks.to_value()),
            ("capacity".to_string(), self.capacity.to_value()),
            ("label".to_string(), self.label.to_value()),
        ];
        if let Some(model) = &self.model {
            fields.push(("model".to_string(), model.to_value()));
        }
        if let Some(cost_model) = &self.cost_model {
            fields.push(("cost_model".to_string(), cost_model.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Instance {
    fn from_value(value: &Value) -> std::result::Result<Self, SerdeError> {
        let model = match value.field("model") {
            Ok(v) => Option::<ExecutionModel>::from_value(v)?,
            Err(_) => None,
        };
        let cost_model = match value.field("cost_model") {
            Ok(v) => Option::<CostModelSpec>::from_value(v)?.filter(|m| !m.is_analytic()),
            Err(_) => None,
        };
        Ok(Instance {
            tasks: Deserialize::from_value(value.field("tasks")?)?,
            capacity: Deserialize::from_value(value.field("capacity")?)?,
            label: Deserialize::from_value(value.field("label")?)?,
            model,
            cost_model,
        })
    }
}

impl Instance {
    /// Creates an instance, validating that it is non-empty and that every
    /// task individually fits in the capacity (otherwise no schedule exists).
    pub fn new(tasks: Vec<Task>, capacity: MemSize) -> Result<Self> {
        Self::with_label(tasks, capacity, String::new())
    }

    /// [`Instance::new`] with an explicit label.
    pub fn with_label(tasks: Vec<Task>, capacity: MemSize, label: String) -> Result<Self> {
        if tasks.is_empty() {
            return Err(CoreError::EmptyInstance);
        }
        let instance = Instance {
            tasks,
            capacity,
            label,
            model: None,
            cost_model: None,
        };
        instance.check_tasks_fit()?;
        Ok(instance)
    }

    /// The execution model the instance runs under;
    /// [`ExecutionModel::Explicit`] unless one was attached with
    /// [`Instance::with_model`] (or carried by the serialized form).
    #[inline]
    pub fn model(&self) -> ExecutionModel {
        self.model.unwrap_or_default()
    }

    /// Returns a copy of this instance carrying the given execution model;
    /// every executor and heuristic entry point honors it by default.
    /// Rejects invalid models (zero stream count) that bypassed
    /// [`ExecutionModel::parse`].
    pub fn with_model(&self, model: ExecutionModel) -> Result<Self> {
        model.validate()?;
        let mut instance = self.clone();
        instance.model = (!model.is_explicit()).then_some(model);
        Ok(instance)
    }

    /// The cost model the task durations were materialized under;
    /// [`CostModelSpec::Analytic`] unless one was applied with
    /// [`Instance::with_cost_model`] (or carried by the serialized form).
    #[inline]
    pub fn cost_model(&self) -> CostModelSpec {
        self.cost_model.clone().unwrap_or_default()
    }

    /// Returns a copy of this instance with every task's communication and
    /// computation time **materialized once** from `spec`. Downstream
    /// consumers — executors, heuristics, the O(log n) candidate index —
    /// keep reading plain task fields and never query a model per decision.
    ///
    /// Applying [`CostModelSpec::Analytic`] is the identity (and keeps the
    /// copy `Eq` to the original). A fitted model can only be applied to an
    /// instance still carrying its analytic durations: re-modeling an
    /// already-materialized instance would silently stack predictions on
    /// predictions, so it is a typed error — re-apply to the source trace
    /// instead.
    pub fn with_cost_model(&self, spec: &CostModelSpec) -> Result<Self> {
        spec.validate()?;
        if spec.is_analytic() {
            return Ok(self.clone());
        }
        if let Some(applied) = &self.cost_model {
            return Err(CoreError::InvalidCostModel(format!(
                "instance already carries a {applied} cost model; \
                 apply the new model to the source trace instead"
            )));
        }
        let mut instance = self.clone();
        let mut sum_comm = Time::ZERO;
        let mut sum_comp = Time::ZERO;
        for task in &mut instance.tasks {
            task.comm_time = spec.transfer_time(task, LinkClass::HostToDevice);
            task.comp_time = spec.compute_time(task, ComputeBackend::Cpu);
            sum_comm = sum_comm.checked_add(task.comm_time).ok_or_else(|| {
                CoreError::InvalidCostModel(
                    "modeled communication times overflow the u64 tick range".into(),
                )
            })?;
            sum_comp = sum_comp.checked_add(task.comp_time).ok_or_else(|| {
                CoreError::InvalidCostModel(
                    "modeled computation times overflow the u64 tick range".into(),
                )
            })?;
        }
        instance.cost_model = Some(spec.clone());
        Ok(instance)
    }

    /// Checks that every task individually fits in the capacity, returning
    /// [`CoreError::TaskExceedsCapacity`] for the lowest-id violator.
    /// Construction enforces this invariant, but instances deserialized from
    /// untrusted sources bypass it, so executors re-validate before running —
    /// an oversized task can never be scheduled, only waited on forever.
    pub fn check_tasks_fit(&self) -> Result<()> {
        for (id, task) in self.iter() {
            if task.mem > self.capacity {
                return Err(CoreError::TaskExceedsCapacity {
                    task: id,
                    name: task.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff the instance has no tasks (never true for constructed
    /// instances; kept for the conventional `len`/`is_empty` pair).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Memory capacity `C` of the target node.
    #[inline]
    pub fn capacity(&self) -> MemSize {
        self.capacity
    }

    /// All tasks, indexable by [`TaskId`].
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range; ids are only produced by this
    /// instance, so an out-of-range id is a logic error.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Fallible lookup of a task.
    pub fn get_task(&self, id: TaskId) -> Result<&Task> {
        self.tasks.get(id.0).ok_or(CoreError::UnknownTask(id))
    }

    /// Iterator over `(TaskId, &Task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// All task ids, in index order (this is the paper's *order of
    /// submission*, `OS`).
    pub fn task_ids(&self) -> Vec<TaskId> {
        (0..self.tasks.len()).map(TaskId).collect()
    }

    /// Returns a copy of this instance with a different memory capacity.
    /// Used by capacity sweeps (`mc`, `1.125·mc`, ..., `2·mc`).
    pub fn with_capacity(&self, capacity: MemSize) -> Result<Self> {
        let mut instance = Instance::with_label(self.tasks.clone(), capacity, self.label.clone())?;
        instance.model = self.model;
        instance.cost_model = self.cost_model.clone();
        Ok(instance)
    }

    /// Returns the sub-instance made of the given tasks (used for batched
    /// scheduling, Section 6.3 of the paper). Task ids in the returned
    /// instance are renumbered `0..batch.len()`; the mapping back to the
    /// original ids is the order of `batch`.
    pub fn sub_instance(&self, batch: &[TaskId]) -> Result<Self> {
        let mut tasks = Vec::with_capacity(batch.len());
        for id in batch {
            tasks.push(self.get_task(*id)?.clone());
        }
        let mut instance = Instance::with_label(tasks, self.capacity, self.label.clone())?;
        instance.model = self.model;
        instance.cost_model = self.cost_model.clone();
        Ok(instance)
    }

    /// Minimum memory capacity `mc` required to run every task: the largest
    /// single-task memory requirement (tasks can always be run one at a
    /// time).
    pub fn min_capacity(&self) -> MemSize {
        self.tasks
            .iter()
            .map(|t| t.mem)
            .max()
            .unwrap_or(MemSize::ZERO)
    }

    /// Aggregate workload statistics (Fig. 8 of the paper).
    pub fn stats(&self) -> InstanceStats {
        let sum_comm: Time = self.tasks.iter().map(|t| t.comm_time).sum();
        let sum_comp: Time = self.tasks.iter().map(|t| t.comp_time).sum();
        let total_mem: MemSize = self.tasks.iter().map(|t| t.mem).sum();
        let compute_intensive = self
            .tasks
            .iter()
            .filter(|t| t.intensity() == TaskIntensity::ComputeIntensive)
            .count();
        InstanceStats {
            n_tasks: self.tasks.len(),
            sum_comm,
            sum_comp,
            max_comm: self
                .tasks
                .iter()
                .map(|t| t.comm_time)
                .max()
                .unwrap_or(Time::ZERO),
            max_comp: self
                .tasks
                .iter()
                .map(|t| t.comp_time)
                .max()
                .unwrap_or(Time::ZERO),
            min_capacity: self.min_capacity(),
            total_mem,
            compute_intensive,
            communication_intensive: self.tasks.len() - compute_intensive,
        }
    }
}

/// Aggregate characteristics of an instance, matching the quantities plotted
/// in Fig. 8 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Total communication time (lower bound on link busy time).
    pub sum_comm: Time,
    /// Total computation time (lower bound on CPU busy time).
    pub sum_comp: Time,
    /// Largest single communication time.
    pub max_comm: Time,
    /// Largest single computation time.
    pub max_comp: Time,
    /// Minimum feasible capacity `mc` (largest single-task memory).
    pub min_capacity: MemSize,
    /// Sum of all task memory requirements.
    pub total_mem: MemSize,
    /// Number of compute-intensive tasks (`CP >= CM`).
    pub compute_intensive: usize,
    /// Number of communication-intensive tasks (`CP < CM`).
    pub communication_intensive: usize,
}

impl InstanceStats {
    /// `max(sum_comm, sum_comp)` — a lower bound on any makespan.
    pub fn resource_lower_bound(&self) -> Time {
        self.sum_comm.max(self.sum_comp)
    }

    /// `sum_comm + sum_comp` — the makespan of the fully sequential schedule
    /// with zero overlap (an upper bound for reasonable schedules).
    pub fn sequential_upper_bound(&self) -> Time {
        self.sum_comm + self.sum_comp
    }

    /// Fraction of tasks that are compute intensive.
    pub fn compute_intensive_fraction(&self) -> f64 {
        if self.n_tasks == 0 {
            0.0
        } else {
            self.compute_intensive as f64 / self.n_tasks as f64
        }
    }
}

/// Fluent builder for [`Instance`].
///
/// ```
/// use dts_core::prelude::*;
///
/// let instance = InstanceBuilder::new()
///     .capacity(MemSize::from_bytes(6))
///     .task_units("A", 3.0, 2.0, 3)
///     .task_units("B", 1.0, 3.0, 1)
///     .build()
///     .unwrap();
/// assert_eq!(instance.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    tasks: Vec<Task>,
    capacity: Option<MemSize>,
    label: String,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the memory capacity. Defaults to [`MemSize::UNBOUNDED`].
    pub fn capacity(mut self, capacity: MemSize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets the instance label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Adds an already-built task.
    pub fn task(mut self, task: Task) -> Self {
        self.tasks.push(task);
        self
    }

    /// Adds a task given in the paper's example convention (times in units,
    /// memory in bytes equal to the communication volume).
    pub fn task_units(self, name: &str, comm: f64, comp: f64, mem_bytes: u64) -> Self {
        self.task(Task::from_units(name, comm, comp, mem_bytes))
    }

    /// Adds many tasks at once.
    pub fn tasks(mut self, tasks: impl IntoIterator<Item = Task>) -> Self {
        self.tasks.extend(tasks);
        self
    }

    /// Builds the instance.
    pub fn build(self) -> Result<Instance> {
        Instance::with_label(
            self.tasks,
            self.capacity.unwrap_or(MemSize::UNBOUNDED),
            self.label,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .label("table3")
            .task_units("A", 3.0, 2.0, 3)
            .task_units("B", 1.0, 3.0, 1)
            .task_units("C", 4.0, 4.0, 4)
            .task_units("D", 2.0, 1.0, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds() {
        let inst = sample();
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.capacity(), MemSize::from_bytes(6));
        assert_eq!(inst.label, "table3");
        assert_eq!(inst.task(TaskId(2)).name, "C");
        assert_eq!(inst.task_ids().len(), 4);
    }

    #[test]
    fn empty_instance_rejected() {
        let err = InstanceBuilder::new().build().unwrap_err();
        assert_eq!(err, CoreError::EmptyInstance);
    }

    #[test]
    fn oversized_task_rejected() {
        let err = InstanceBuilder::new()
            .capacity(MemSize::from_bytes(2))
            .task_units("big", 5.0, 1.0, 5)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::TaskExceedsCapacity { .. }));
    }

    #[test]
    fn stats_match_hand_computation() {
        let stats = sample().stats();
        assert_eq!(stats.n_tasks, 4);
        assert_eq!(stats.sum_comm, Time::units_int(10));
        assert_eq!(stats.sum_comp, Time::units_int(10));
        assert_eq!(stats.max_comm, Time::units_int(4));
        assert_eq!(stats.max_comp, Time::units_int(4));
        assert_eq!(stats.min_capacity, MemSize::from_bytes(4));
        assert_eq!(stats.total_mem, MemSize::from_bytes(10));
        assert_eq!(stats.compute_intensive, 2); // B and C
        assert_eq!(stats.communication_intensive, 2); // A and D
        assert_eq!(stats.resource_lower_bound(), Time::units_int(10));
        assert_eq!(stats.sequential_upper_bound(), Time::units_int(20));
        assert!((stats.compute_intensive_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn with_capacity_rescales() {
        let inst = sample();
        let bigger = inst.with_capacity(MemSize::from_bytes(12)).unwrap();
        assert_eq!(bigger.capacity(), MemSize::from_bytes(12));
        assert_eq!(bigger.len(), inst.len());
        // Shrinking below the largest task is rejected.
        assert!(inst.with_capacity(MemSize::from_bytes(3)).is_err());
    }

    #[test]
    fn sub_instance_renumbers() {
        let inst = sample();
        let sub = inst.sub_instance(&[TaskId(2), TaskId(0)]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.task(TaskId(0)).name, "C");
        assert_eq!(sub.task(TaskId(1)).name, "A");
        assert!(inst.sub_instance(&[TaskId(9)]).is_err());
    }

    #[test]
    fn min_capacity_is_largest_task() {
        let inst = sample();
        assert_eq!(inst.min_capacity(), MemSize::from_bytes(4));
    }

    #[test]
    fn serde_round_trip() {
        let inst = sample();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn model_defaults_to_explicit_and_round_trips() {
        use crate::exec::ExecutionModel;
        let inst = sample();
        assert_eq!(inst.model(), ExecutionModel::Explicit);
        // Plain instances serialize without a model key, so pre-existing
        // JSON fixtures keep deserializing (and comparing) unchanged.
        let json = serde_json::to_string(&inst).unwrap();
        assert!(!json.contains("model"));

        let duplex = inst.with_model(ExecutionModel::Duplex).unwrap();
        assert_eq!(duplex.model(), ExecutionModel::Duplex);
        let back: Instance =
            serde_json::from_str(&serde_json::to_string(&duplex).unwrap()).unwrap();
        assert_eq!(back.model(), ExecutionModel::Duplex);
        // Attaching Explicit is a no-op that keeps equality with the plain
        // instance.
        assert_eq!(inst.with_model(ExecutionModel::Explicit).unwrap(), inst);
        // Invalid models are rejected, not stored.
        assert!(inst.with_model(ExecutionModel::Streams { k: 0 }).is_err());
    }

    fn sample_regression_spec() -> CostModelSpec {
        use crate::perfmodel::{LinearFit, RegressionModel, PS_PER_MICRO};
        CostModelSpec::Regression(
            RegressionModel::new(
                vec![(
                    LinkClass::HostToDevice,
                    LinearFit {
                        alpha_us: 100,
                        beta_ps_per_byte: PS_PER_MICRO,
                        samples: 4,
                    },
                )],
                vec![(
                    ComputeBackend::Cpu,
                    LinearFit {
                        alpha_us: 50,
                        beta_ps_per_byte: 0,
                        samples: 4,
                    },
                )],
            )
            .unwrap(),
        )
    }

    #[test]
    fn cost_model_materializes_times_once() {
        let inst = sample();
        assert!(inst.cost_model().is_analytic());
        // Analytic is the identity and keeps equality.
        let same = inst.with_cost_model(&CostModelSpec::Analytic).unwrap();
        assert_eq!(same, inst);

        let spec = sample_regression_spec();
        let modeled = inst.with_cost_model(&spec).unwrap();
        assert_eq!(modeled.cost_model(), spec);
        // Task A: mem 3 bytes → comm 100 + 3 µs, comp 50 µs.
        assert_eq!(modeled.task(TaskId(0)).comm_time, Time::from_micros(103));
        assert_eq!(modeled.task(TaskId(0)).comp_time, Time::from_micros(50));
        // Memory footprints (and hence feasibility) are untouched.
        assert_eq!(modeled.task(TaskId(0)).mem, inst.task(TaskId(0)).mem);
        // Re-modeling a materialized instance is a typed error, not a
        // silent prediction-on-prediction stack.
        assert!(matches!(
            modeled.with_cost_model(&spec),
            Err(CoreError::InvalidCostModel(_))
        ));
    }

    #[test]
    fn cost_model_round_trips_and_stays_absent_by_default() {
        let inst = sample();
        let json = serde_json::to_string(&inst).unwrap();
        assert!(!json.contains("cost_model"));

        let modeled = inst.with_cost_model(&sample_regression_spec()).unwrap();
        let back: Instance =
            serde_json::from_str(&serde_json::to_string(&modeled).unwrap()).unwrap();
        assert_eq!(back, modeled);
        assert_eq!(back.cost_model(), sample_regression_spec());
    }

    #[test]
    fn cost_model_survives_capacity_changes_and_sub_instances() {
        let spec = sample_regression_spec();
        let inst = sample().with_cost_model(&spec).unwrap();
        let resized = inst.with_capacity(MemSize::from_bytes(12)).unwrap();
        assert_eq!(resized.cost_model(), spec);
        let sub = inst.sub_instance(&[TaskId(2), TaskId(0)]).unwrap();
        assert_eq!(sub.cost_model(), spec);
    }

    #[test]
    fn model_survives_capacity_changes_and_sub_instances() {
        use crate::exec::ExecutionModel;
        let inst = sample()
            .with_model(ExecutionModel::Streams { k: 3 })
            .unwrap();
        let resized = inst.with_capacity(MemSize::from_bytes(12)).unwrap();
        assert_eq!(resized.model(), ExecutionModel::Streams { k: 3 });
        let sub = inst.sub_instance(&[TaskId(2), TaskId(0)]).unwrap();
        assert_eq!(sub.model(), ExecutionModel::Streams { k: 3 });
    }
}
