//! Memory quantities and memory-occupation profiles.

use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An amount of memory in bytes.
///
/// In the paper's small examples the memory requirement of a task equals its
/// communication time expressed in units; trace-based instances use real byte
/// counts. Either way the checker only compares sums against the capacity, so
/// a plain integer newtype suffices.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct MemSize(pub u64);

impl MemSize {
    /// Zero bytes.
    pub const ZERO: MemSize = MemSize(0);
    /// The largest representable size, used as "unbounded capacity".
    pub const UNBOUNDED: MemSize = MemSize(u64::MAX);

    /// Creates a size from a raw byte count.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        MemSize(bytes)
    }

    /// Creates a size from kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        MemSize(kib * 1024)
    }

    /// Creates a size from mebibytes.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        MemSize(mib * 1024 * 1024)
    }

    /// Creates a size from gibibytes.
    #[inline]
    pub const fn from_gib(gib: u64) -> Self {
        MemSize(gib * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// `true` iff the size is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: MemSize) -> MemSize {
        MemSize(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition (capacities can legitimately be `UNBOUNDED`).
    #[inline]
    pub const fn saturating_add(self, rhs: MemSize) -> MemSize {
        MemSize(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the size by a float factor, rounding to the nearest byte.
    /// Used for capacity sweeps such as `1.125 * mc`.
    #[inline]
    pub fn scale(self, factor: f64) -> MemSize {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "MemSize::scale requires a finite non-negative factor, got {factor}"
        );
        MemSize((self.0 as f64 * factor).round() as u64)
    }

    /// Maximum of two sizes.
    #[inline]
    pub fn max(self, other: MemSize) -> MemSize {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for MemSize {
    type Output = MemSize;
    #[inline]
    fn add(self, rhs: MemSize) -> MemSize {
        MemSize(self.0 + rhs.0)
    }
}

impl AddAssign for MemSize {
    #[inline]
    fn add_assign(&mut self, rhs: MemSize) {
        self.0 += rhs.0;
    }
}

impl Sub for MemSize {
    type Output = MemSize;
    #[inline]
    fn sub(self, rhs: MemSize) -> MemSize {
        MemSize(self.0 - rhs.0)
    }
}

impl SubAssign for MemSize {
    #[inline]
    fn sub_assign(&mut self, rhs: MemSize) {
        self.0 -= rhs.0;
    }
}

impl Sum for MemSize {
    fn sum<I: Iterator<Item = MemSize>>(iter: I) -> MemSize {
        iter.fold(MemSize::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a MemSize> for MemSize {
    fn sum<I: Iterator<Item = &'a MemSize>>(iter: I) -> MemSize {
        iter.fold(MemSize::ZERO, |a, b| a + *b)
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 == u64::MAX {
            write!(f, "unbounded")
        } else if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A step in a memory-occupation profile: the amount of memory in use from
/// `time` (inclusive) until the next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStep {
    /// Instant at which the occupation changes to `used`.
    pub time: Time,
    /// Memory in use from `time` onwards.
    pub used: MemSize,
}

/// Piecewise-constant memory-occupation profile of a schedule.
///
/// A task occupies its memory from the start of its communication to the end
/// of its computation (problem `DT`'s memory model). The profile is the sum
/// of these occupation intervals, represented as a sorted list of steps.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryProfile {
    steps: Vec<MemoryStep>,
}

impl MemoryProfile {
    /// Builds the memory profile of `schedule` on `instance`.
    pub fn of_schedule(instance: &Instance, schedule: &Schedule) -> Self {
        // Event-sweep: +mem at comm start, -mem at comp end.
        let mut events: Vec<(Time, i64)> = Vec::with_capacity(schedule.len() * 2);
        for entry in schedule.entries() {
            let task = instance.task(entry.task);
            let acquire = entry.comm_start;
            // Malformed schedules (rejected separately by the feasibility
            // checker) can place a computation's end before its own
            // communication start; clamp so the profile stays well-formed
            // and the checker can keep reporting the other violations.
            let release = (entry.comp_start + task.comp_time).max(acquire);
            events.push((acquire, task.mem.bytes() as i64));
            events.push((release, -(task.mem.bytes() as i64)));
        }
        // Releases are processed before acquisitions at the same instant: the
        // paper's examples (e.g. OOSIM on Table 3) start a communication at
        // the exact instant a previous computation frees its memory.
        events.sort_by_key(|&(t, delta)| (t, delta));
        let mut steps = Vec::new();
        let mut used: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                used += events[i].1;
                i += 1;
            }
            debug_assert!(used >= 0, "memory profile went negative at {t}");
            steps.push(MemoryStep {
                time: t,
                used: MemSize(used.max(0) as u64),
            });
        }
        MemoryProfile { steps }
    }

    /// The individual steps (sorted by time).
    pub fn steps(&self) -> &[MemoryStep] {
        &self.steps
    }

    /// Peak memory occupation over the whole schedule.
    pub fn peak(&self) -> MemSize {
        self.steps
            .iter()
            .map(|s| s.used)
            .max()
            .unwrap_or(MemSize::ZERO)
    }

    /// Memory in use at instant `t` (steps are left-closed).
    pub fn usage_at(&self, t: Time) -> MemSize {
        match self.steps.binary_search_by_key(&t, |s| s.time) {
            Ok(i) => self.steps[i].used,
            Err(0) => MemSize::ZERO,
            Err(i) => self.steps[i - 1].used,
        }
    }

    /// First instant at which occupation exceeds `capacity`, if any.
    pub fn first_violation(&self, capacity: MemSize) -> Option<Time> {
        self.steps
            .iter()
            .find(|s| s.used > capacity)
            .map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::schedule::Schedule;

    fn tiny_instance() -> Instance {
        // Two tasks: X (comm 2, comp 2, mem 4), Y (comm 1, comp 3, mem 2).
        InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .task_units("X", 2.0, 2.0, 4)
            .task_units("Y", 1.0, 3.0, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn memsize_display_scales() {
        assert_eq!(MemSize::from_bytes(512).to_string(), "512 B");
        assert_eq!(MemSize::from_kib(176).to_string(), "176.00 KiB");
        assert_eq!(MemSize::from_gib(2).to_string(), "2.00 GiB");
        assert_eq!(MemSize::UNBOUNDED.to_string(), "unbounded");
    }

    #[test]
    fn memsize_scale_rounds() {
        let mc = MemSize::from_bytes(1000);
        assert_eq!(mc.scale(1.125), MemSize::from_bytes(1125));
        assert_eq!(mc.scale(2.0), MemSize::from_bytes(2000));
        assert_eq!(mc.scale(0.0), MemSize::ZERO);
    }

    #[test]
    fn profile_tracks_acquire_and_release() {
        let inst = tiny_instance();
        let mut sched = Schedule::new();
        // X: comm [0,2), comp [2,4). Y: comm [2,3), comp [4,7).
        sched.push(ScheduleEntryHelper::entry(0, 0.0, 2.0));
        sched.push(ScheduleEntryHelper::entry(1, 2.0, 4.0));
        let profile = MemoryProfile::of_schedule(&inst, &sched);
        assert_eq!(profile.usage_at(Time::units(0.0)), MemSize::from_bytes(4));
        assert_eq!(profile.usage_at(Time::units(2.5)), MemSize::from_bytes(6));
        // X releases at t=4, Y still holds 2 until 7.
        assert_eq!(profile.usage_at(Time::units(4.0)), MemSize::from_bytes(2));
        assert_eq!(profile.usage_at(Time::units(7.0)), MemSize::ZERO);
        assert_eq!(profile.peak(), MemSize::from_bytes(6));
        assert_eq!(profile.first_violation(MemSize::from_bytes(6)), None);
        assert_eq!(
            profile.first_violation(MemSize::from_bytes(5)),
            Some(Time::units(2.0))
        );
    }

    #[test]
    fn release_processed_before_acquire_at_same_instant() {
        // Y's comm starts exactly when X's comp ends: peak must be max(4, 2),
        // not 6.
        let inst = tiny_instance();
        let mut sched = Schedule::new();
        sched.push(ScheduleEntryHelper::entry(0, 0.0, 2.0)); // X comp ends at 4
        sched.push(ScheduleEntryHelper::entry(1, 4.0, 5.0)); // Y comm starts at 4
        let profile = MemoryProfile::of_schedule(&inst, &sched);
        assert_eq!(profile.peak(), MemSize::from_bytes(4));
    }

    /// Small helper so tests can write entries in units.
    struct ScheduleEntryHelper;
    impl ScheduleEntryHelper {
        fn entry(task: usize, comm_start: f64, comp_start: f64) -> crate::schedule::ScheduleEntry {
            crate::schedule::ScheduleEntry {
                task: crate::task::TaskId(task),
                comm_start: Time::units(comm_start),
                comp_start: Time::units(comp_start),
            }
        }
    }
}
