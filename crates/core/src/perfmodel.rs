//! Calibrated performance models for transfer and computation times.
//!
//! The paper treats every task's communication and computation duration as
//! a fixed analytic input. Its own argument, though, is that *better
//! performance models change scheduling decisions* — and the related work
//! (StarPU's history/regression models, the Cray XE piecewise-linear
//! communication fits) builds those models from measurements. This module
//! is that layer:
//!
//! * [`CostModel`] — the trait every backend implements:
//!   `transfer_time(task, link)` and `compute_time(task, backend)`.
//! * [`Analytic`] — the paper's numbers verbatim: the task's own
//!   `comm_time` / `comp_time` fields. This is the **normalized default**:
//!   an instance or trace carrying an explicit `Analytic` spec serializes
//!   exactly like one carrying none, so every pre-existing golden file,
//!   digest and `Eq` comparison is untouched by this layer's existence.
//! * [`HistoryModel`] — StarPU-style per-(link class, size bucket) tables
//!   of observed mean durations.
//! * [`RegressionModel`] — a least-squares `t = α + β·bytes` fit per link
//!   class, fitted and evaluated in pure integer arithmetic (the slope is
//!   stored in picoseconds per byte) so predictions are bit-identical
//!   across platforms and libm versions.
//!
//! Model files are versioned JSON with the same strict dual-direction
//! validation discipline as the dts-trace format: unknown keys, unknown
//! versions, float/negative coefficients and empty history tables are
//! typed [`CoreError::InvalidCostModel`] errors on import, export refuses
//! to render a model that would not re-import, and export → import →
//! export is byte-identical.
//!
//! Times are **materialized once per instance**, at model-application
//! time ([`crate::instance::Instance::with_cost_model`]): the model
//! rewrites each task's `comm_time` / `comp_time`, and every simulator,
//! heuristic and candidate-index query downstream keeps reading plain
//! task fields. The O(log n) decision paths never query a model.

use crate::error::{CoreError, Result};
use crate::task::Task;
use crate::time::Time;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;
use std::path::Path;

/// `format` field of a cost-model file.
pub const FORMAT_NAME: &str = "dts-cost-model";

/// Version this build writes and the only version it reads.
pub const FORMAT_VERSION: u64 = 1;

/// Scale of regression slopes: β is stored in picoseconds per byte, so
/// `β·bytes / PS_PER_MICRO` is microseconds — integer all the way.
pub const PS_PER_MICRO: u64 = 1_000_000;

/// Relative-error scale of [`FitReport`]: basis points (1/100 of a %).
pub const REL_ERR_SCALE_BP: u64 = 10_000;

/// R² scale of [`FitReport`]: parts per million.
pub const R2_SCALE_PPM: u64 = 1_000_000;

fn invalid(msg: impl Into<String>) -> CoreError {
    CoreError::InvalidCostModel(msg.into())
}

/// The link class a transfer runs on. The pipeline of the paper has a
/// single host-to-device input link; the device-to-host class exists so
/// model files stay forward-compatible with output transfers, and
/// predictions for it fall back to the host-to-device fit when a model
/// carries no explicit entry (symmetric-link assumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkClass {
    /// Input transfers into device memory (the paper's only link).
    HostToDevice,
    /// Output transfers back to the host.
    DeviceToHost,
}

impl LinkClass {
    /// Every link class, in canonical model-file order.
    pub const ALL: [LinkClass; 2] = [LinkClass::HostToDevice, LinkClass::DeviceToHost];

    /// Model-file name of the link class.
    pub fn name(self) -> &'static str {
        match self {
            LinkClass::HostToDevice => "h2d",
            LinkClass::DeviceToHost => "d2h",
        }
    }

    /// Parses a model-file link name (case-insensitive).
    pub fn from_name(name: &str) -> Option<LinkClass> {
        let lower = name.to_ascii_lowercase();
        LinkClass::ALL.iter().copied().find(|l| l.name() == lower)
    }
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The compute backend a computation runs on. The paper's node model has
/// one processing unit; the enum keeps the model-file schema explicit
/// about what was calibrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComputeBackend {
    /// The single processing unit of the paper's node model.
    Cpu,
}

impl ComputeBackend {
    /// Every compute backend, in canonical model-file order.
    pub const ALL: [ComputeBackend; 1] = [ComputeBackend::Cpu];

    /// Model-file name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            ComputeBackend::Cpu => "cpu",
        }
    }

    /// Parses a model-file backend name (case-insensitive).
    pub fn from_name(name: &str) -> Option<ComputeBackend> {
        let lower = name.to_ascii_lowercase();
        ComputeBackend::ALL
            .iter()
            .copied()
            .find(|b| b.name() == lower)
    }
}

impl fmt::Display for ComputeBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A performance model: predicts the transfer and computation duration of
/// a task. Fitted backends ([`HistoryModel`], [`RegressionModel`]) read
/// only the task's memory footprint (`bytes → time`); [`Analytic`] reads
/// the task's own recorded durations.
pub trait CostModel {
    /// Predicted duration of the task's input transfer on `link`.
    fn transfer_time(&self, task: &Task, link: LinkClass) -> Time;

    /// Predicted duration of the task's computation on `backend`.
    fn compute_time(&self, task: &Task, backend: ComputeBackend) -> Time;
}

/// The paper's analytic model: every duration is the task's own recorded
/// value. This backend is the identity of the cost-model layer — applying
/// it never changes an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Analytic;

impl CostModel for Analytic {
    fn transfer_time(&self, task: &Task, _link: LinkClass) -> Time {
        task.comm_time
    }

    fn compute_time(&self, task: &Task, _backend: ComputeBackend) -> Time {
        task.comp_time
    }
}

/// One least-squares line `t_us = alpha_us + beta·bytes`, with the slope
/// in picoseconds per byte so evaluation is exact integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinearFit {
    /// Intercept, microseconds.
    pub alpha_us: u64,
    /// Slope, picoseconds per byte.
    pub beta_ps_per_byte: u64,
    /// Number of observations the fit was computed from.
    pub samples: u64,
}

impl LinearFit {
    /// Evaluates the line at `bytes`, rounding the slope term half up and
    /// saturating at `u64::MAX` microseconds.
    pub fn predict_us(&self, bytes: u64) -> u64 {
        let scaled = u128::from(bytes) * u128::from(self.beta_ps_per_byte);
        let beta_us = (scaled + u128::from(PS_PER_MICRO / 2)) / u128::from(PS_PER_MICRO);
        u128::from(self.alpha_us)
            .saturating_add(beta_us)
            .min(u128::from(u64::MAX)) as u64
    }
}

/// Fits `t_us = α + β·bytes` to observations by integer least squares.
///
/// All sums and the normal-equation solve run in `i128`/`u128`; negative
/// fitted slopes or intercepts (possible on adversarial data) clamp to
/// zero, so the returned coefficients always pass model-file validation.
/// Returns [`CoreError::InvalidCostModel`] for an empty observation list
/// or sums beyond 128-bit range.
pub fn fit_linear(samples: &[(u64, u64)]) -> Result<LinearFit> {
    if samples.is_empty() {
        return Err(invalid("cannot fit a regression to zero observations"));
    }
    let n = samples.len() as i128;
    let overflow = || invalid("calibration sums exceed 128-bit range");
    let mut sx: i128 = 0;
    let mut sy: i128 = 0;
    let mut sxx: i128 = 0;
    let mut sxy: i128 = 0;
    for &(bytes, micros) in samples {
        let x = bytes as i128;
        let y = micros as i128;
        sx = sx.checked_add(x).ok_or_else(overflow)?;
        sy = sy.checked_add(y).ok_or_else(overflow)?;
        sxx = x
            .checked_mul(x)
            .and_then(|xx| sxx.checked_add(xx))
            .ok_or_else(overflow)?;
        sxy = x
            .checked_mul(y)
            .and_then(|xy| sxy.checked_add(xy))
            .ok_or_else(overflow)?;
    }
    let den = n
        .checked_mul(sxx)
        .and_then(|nsxx| sx.checked_mul(sx).map(|sx2| nsxx - sx2))
        .ok_or_else(overflow)?;
    let round_div = |num: i128, den: i128| -> i128 {
        // Round half away from zero; callers clamp negatives to 0 anyway.
        if num >= 0 {
            (num + den / 2) / den
        } else {
            (num - den / 2) / den
        }
    };
    let beta_ps_per_byte = if den == 0 {
        // Every observation shares one size: the line degenerates to the
        // mean duration.
        0
    } else {
        let num = n
            .checked_mul(sxy)
            .and_then(|nsxy| sx.checked_mul(sy).map(|sxsy| nsxy - sxsy))
            .and_then(|slope_num| slope_num.checked_mul(PS_PER_MICRO as i128))
            .ok_or_else(overflow)?;
        round_div(num, den).max(0)
    };
    // α = mean(y) − β·mean(x), at ps scale to keep the division exact-ish.
    let alpha_num = sy
        .checked_mul(PS_PER_MICRO as i128)
        .and_then(|sy_ps| beta_ps_per_byte.checked_mul(sx).map(|bx| sy_ps - bx))
        .ok_or_else(overflow)?;
    let alpha_us = round_div(alpha_num, n * PS_PER_MICRO as i128).max(0);
    Ok(LinearFit {
        alpha_us: alpha_us.min(u64::MAX as i128) as u64,
        beta_ps_per_byte: beta_ps_per_byte.min(u64::MAX as i128) as u64,
        samples: samples.len() as u64,
    })
}

/// The power-of-two size bucket of a byte count: `floor(log2(bytes))`,
/// with zero-byte transfers in bucket 0.
pub fn size_bucket(bytes: u64) -> u32 {
    if bytes == 0 {
        0
    } else {
        63 - bytes.leading_zeros()
    }
}

/// One observed-duration bucket of a history table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryBucket {
    /// Power-of-two size bucket, `floor(log2(bytes))`, 0–63.
    pub bucket: u32,
    /// Mean observed duration of the bucket, microseconds.
    pub mean_us: u64,
    /// Number of observations behind the mean (≥ 1).
    pub samples: u64,
}

/// A per-link-class (or per-backend) history table: mean observed
/// durations by power-of-two size bucket, strictly ascending and
/// non-empty by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HistoryTable {
    buckets: Vec<HistoryBucket>,
}

impl HistoryTable {
    /// Builds a table, enforcing the model-file invariants: at least one
    /// bucket, buckets strictly ascending, every bucket ≤ 63 with at
    /// least one sample.
    pub fn new(buckets: Vec<HistoryBucket>) -> Result<Self> {
        if buckets.is_empty() {
            return Err(invalid("history tables must hold at least one bucket"));
        }
        for pair in buckets.windows(2) {
            if pair[1].bucket <= pair[0].bucket {
                return Err(invalid(format!(
                    "history buckets must be strictly ascending, got {} after {}",
                    pair[1].bucket, pair[0].bucket
                )));
            }
        }
        for b in &buckets {
            if b.bucket > 63 {
                return Err(invalid(format!(
                    "history bucket {} is out of range (log2 of a u64 is at most 63)",
                    b.bucket
                )));
            }
            if b.samples == 0 {
                return Err(invalid(format!(
                    "history bucket {} carries zero samples",
                    b.bucket
                )));
            }
        }
        Ok(HistoryTable { buckets })
    }

    /// The buckets, strictly ascending.
    pub fn buckets(&self) -> &[HistoryBucket] {
        &self.buckets
    }

    /// Predicts the duration of a `bytes`-sized item: the mean of its
    /// exact size bucket, or of the nearest recorded bucket (ties toward
    /// the smaller one) when the exact bucket was never observed.
    pub fn predict_us(&self, bytes: u64) -> u64 {
        let target = size_bucket(bytes);
        let mut best = &self.buckets[0];
        for b in &self.buckets {
            let dist = b.bucket.abs_diff(target);
            if dist < best.bucket.abs_diff(target) {
                best = b;
            }
        }
        best.mean_us
    }

    /// Merges new observations into the table, combining per-bucket means
    /// weighted by sample count (the `dts calibrate --update` path).
    pub fn merged_with(&self, other: &HistoryTable) -> HistoryTable {
        let mut buckets = self.buckets.clone();
        for add in &other.buckets {
            match buckets.binary_search_by_key(&add.bucket, |b| b.bucket) {
                Ok(i) => {
                    let old = buckets[i];
                    let total = old.samples.saturating_add(add.samples);
                    let weighted = u128::from(old.mean_us) * u128::from(old.samples)
                        + u128::from(add.mean_us) * u128::from(add.samples);
                    buckets[i] = HistoryBucket {
                        bucket: old.bucket,
                        mean_us: ((weighted + u128::from(total) / 2) / u128::from(total.max(1)))
                            .min(u128::from(u64::MAX)) as u64,
                        samples: total,
                    };
                }
                Err(i) => buckets.insert(i, *add),
            }
        }
        HistoryTable { buckets }
    }
}

/// Fits a history table to observations: observations are grouped by
/// [`size_bucket`] and each bucket records its rounded mean duration.
pub fn fit_history(samples: &[(u64, u64)]) -> Result<HistoryTable> {
    if samples.is_empty() {
        return Err(invalid("cannot fit a history table to zero observations"));
    }
    let mut sums: Vec<(u32, u128, u64)> = Vec::new();
    for &(bytes, micros) in samples {
        let bucket = size_bucket(bytes);
        match sums.binary_search_by_key(&bucket, |&(b, _, _)| b) {
            Ok(i) => {
                sums[i].1 += u128::from(micros);
                sums[i].2 += 1;
            }
            Err(i) => sums.insert(i, (bucket, u128::from(micros), 1)),
        }
    }
    HistoryTable::new(
        sums.into_iter()
            .map(|(bucket, sum, count)| HistoryBucket {
                bucket,
                mean_us: ((sum + u128::from(count) / 2) / u128::from(count))
                    .min(u128::from(u64::MAX)) as u64,
                samples: count,
            })
            .collect(),
    )
}

/// Checks the per-link / per-backend entry lists shared by both fitted
/// backends: non-empty, unique, in canonical declaration order, and
/// carrying the required default entry (`h2d` for transfers, `cpu` for
/// compute) so predictions are total.
fn check_entries<K: Copy + Eq + fmt::Display>(
    entries: &[(K, impl Sized)],
    all: &[K],
    required: K,
    section: &str,
) -> Result<()> {
    if entries.is_empty() {
        return Err(invalid(format!("model {section} section is empty")));
    }
    let position = |k: K| all.iter().position(|&a| a == k).unwrap_or(usize::MAX);
    for pair in entries.windows(2) {
        if position(pair[1].0) <= position(pair[0].0) {
            return Err(invalid(format!(
                "model {section} entries must be unique and in canonical order, \
                 got {} after {}",
                pair[1].0, pair[0].0
            )));
        }
    }
    if !entries.iter().any(|(k, _)| *k == required) {
        return Err(invalid(format!(
            "model {section} section must cover `{required}`"
        )));
    }
    Ok(())
}

/// A history-based cost model: one [`HistoryTable`] per link class and
/// compute backend.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HistoryModel {
    transfer: Vec<(LinkClass, HistoryTable)>,
    compute: Vec<(ComputeBackend, HistoryTable)>,
}

/// A regression cost model: one [`LinearFit`] per link class and compute
/// backend.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegressionModel {
    transfer: Vec<(LinkClass, LinearFit)>,
    compute: Vec<(ComputeBackend, LinearFit)>,
}

macro_rules! fitted_model_impl {
    ($model:ident, $entry:ty) => {
        impl $model {
            /// Builds the model, enforcing the entry invariants:
            /// canonical order, uniqueness, and the required `h2d` /
            /// `cpu` default entries.
            pub fn new(
                transfer: Vec<(LinkClass, $entry)>,
                compute: Vec<(ComputeBackend, $entry)>,
            ) -> Result<Self> {
                check_entries(
                    &transfer,
                    &LinkClass::ALL,
                    LinkClass::HostToDevice,
                    "transfer",
                )?;
                check_entries(
                    &compute,
                    &ComputeBackend::ALL,
                    ComputeBackend::Cpu,
                    "compute",
                )?;
                Ok($model { transfer, compute })
            }

            /// The per-link transfer entries, in canonical order.
            pub fn transfer_entries(&self) -> &[(LinkClass, $entry)] {
                &self.transfer
            }

            /// The per-backend compute entries, in canonical order.
            pub fn compute_entries(&self) -> &[(ComputeBackend, $entry)] {
                &self.compute
            }

            /// The entry for `link`, falling back to the guaranteed
            /// host-to-device entry (symmetric-link assumption).
            pub fn transfer_entry(&self, link: LinkClass) -> &$entry {
                self.transfer
                    .iter()
                    .find(|(l, _)| *l == link)
                    .or_else(|| {
                        self.transfer
                            .iter()
                            .find(|(l, _)| *l == LinkClass::HostToDevice)
                    })
                    .map(|(_, e)| e)
                    // lint: allow(L001) check_entries enforces the h2d entry at construction
                    .expect("construction guarantees an h2d entry")
            }

            /// The entry for `backend` (guaranteed by construction).
            pub fn compute_entry(&self, backend: ComputeBackend) -> &$entry {
                self.compute
                    .iter()
                    .find(|(b, _)| *b == backend)
                    .or_else(|| self.compute.iter().find(|(b, _)| *b == ComputeBackend::Cpu))
                    .map(|(_, e)| e)
                    // lint: allow(L001) check_entries enforces the cpu entry at construction
                    .expect("construction guarantees a cpu entry")
            }
        }
    };
}

fitted_model_impl!(HistoryModel, HistoryTable);
fitted_model_impl!(RegressionModel, LinearFit);

impl CostModel for HistoryModel {
    fn transfer_time(&self, task: &Task, link: LinkClass) -> Time {
        Time::from_micros(self.transfer_entry(link).predict_us(task.mem.bytes()))
    }

    fn compute_time(&self, task: &Task, backend: ComputeBackend) -> Time {
        Time::from_micros(self.compute_entry(backend).predict_us(task.mem.bytes()))
    }
}

impl CostModel for RegressionModel {
    fn transfer_time(&self, task: &Task, link: LinkClass) -> Time {
        Time::from_micros(self.transfer_entry(link).predict_us(task.mem.bytes()))
    }

    fn compute_time(&self, task: &Task, backend: ComputeBackend) -> Time {
        Time::from_micros(self.compute_entry(backend).predict_us(task.mem.bytes()))
    }
}

/// The cost-model spec an instance, trace or solve request carries: the
/// analytic default or one of the fitted backends. Mirrors
/// [`crate::exec::ExecutionModel`]: `Analytic` is the normalized default
/// that never appears in serialized form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum CostModelSpec {
    /// The paper's fixed analytic durations (the default).
    #[default]
    Analytic,
    /// A history-based model.
    History(HistoryModel),
    /// A regression model.
    Regression(RegressionModel),
}

impl CostModelSpec {
    /// The model-file backend name: `analytic`, `history` or `regression`.
    pub fn backend_name(&self) -> &'static str {
        match self {
            CostModelSpec::Analytic => "analytic",
            CostModelSpec::History(_) => "history",
            CostModelSpec::Regression(_) => "regression",
        }
    }

    /// `true` iff the spec is the analytic default. Analytic specs are
    /// normalized away (`Option<CostModelSpec>::None`) wherever a spec is
    /// carried, so legacy serialized forms stay byte- and `Eq`-identical.
    pub fn is_analytic(&self) -> bool {
        matches!(self, CostModelSpec::Analytic)
    }

    /// Re-checks the structural invariants (constructed models always
    /// pass; specs assembled by hand or through serde funnels are
    /// re-validated before use).
    pub fn validate(&self) -> Result<()> {
        match self {
            CostModelSpec::Analytic => Ok(()),
            CostModelSpec::History(m) => {
                HistoryModel::new(m.transfer.clone(), m.compute.clone()).map(|_| ())
            }
            CostModelSpec::Regression(m) => {
                RegressionModel::new(m.transfer.clone(), m.compute.clone()).map(|_| ())
            }
        }
    }
}

impl CostModel for CostModelSpec {
    fn transfer_time(&self, task: &Task, link: LinkClass) -> Time {
        match self {
            CostModelSpec::Analytic => Analytic.transfer_time(task, link),
            CostModelSpec::History(m) => m.transfer_time(task, link),
            CostModelSpec::Regression(m) => m.transfer_time(task, link),
        }
    }

    fn compute_time(&self, task: &Task, backend: ComputeBackend) -> Time {
        match self {
            CostModelSpec::Analytic => Analytic.compute_time(task, backend),
            CostModelSpec::History(m) => m.compute_time(task, backend),
            CostModelSpec::Regression(m) => m.compute_time(task, backend),
        }
    }
}

impl fmt::Display for CostModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.backend_name())
    }
}

// ---------------------------------------------------------------------------
// Model-file rendering (the export half of the dual-direction validation).
// ---------------------------------------------------------------------------

fn linear_fit_value(fit: &LinearFit, key: &str, name: &str) -> Value {
    Value::Object(vec![
        (key.to_string(), Value::Str(name.to_string())),
        ("alpha_us".to_string(), Value::UInt(fit.alpha_us)),
        (
            "beta_ps_per_byte".to_string(),
            Value::UInt(fit.beta_ps_per_byte),
        ),
        ("samples".to_string(), Value::UInt(fit.samples)),
    ])
}

fn history_table_value(table: &HistoryTable, key: &str, name: &str) -> Value {
    Value::Object(vec![
        (key.to_string(), Value::Str(name.to_string())),
        (
            "buckets".to_string(),
            Value::Array(
                table
                    .buckets
                    .iter()
                    .map(|b| {
                        Value::Object(vec![
                            ("bucket".to_string(), Value::UInt(u64::from(b.bucket))),
                            ("mean_us".to_string(), Value::UInt(b.mean_us)),
                            ("samples".to_string(), Value::UInt(b.samples)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders a fitted model as its versioned file [`Value`].
///
/// Returns [`CoreError::InvalidCostModel`] for the analytic spec (it has
/// no file form — absence *is* its serialized form) or a spec that fails
/// [`CostModelSpec::validate`]: a file that would not re-import is never
/// rendered.
pub fn model_value(spec: &CostModelSpec) -> Result<Value> {
    spec.validate()?;
    let (transfer, compute) = match spec {
        CostModelSpec::Analytic => {
            return Err(invalid(
                "the analytic model has no file form; pass `analytic` instead of a path",
            ))
        }
        CostModelSpec::History(m) => (
            m.transfer
                .iter()
                .map(|(l, t)| history_table_value(t, "link", l.name()))
                .collect::<Vec<_>>(),
            m.compute
                .iter()
                .map(|(b, t)| history_table_value(t, "backend", b.name()))
                .collect::<Vec<_>>(),
        ),
        CostModelSpec::Regression(m) => (
            m.transfer
                .iter()
                .map(|(l, f)| linear_fit_value(f, "link", l.name()))
                .collect::<Vec<_>>(),
            m.compute
                .iter()
                .map(|(b, f)| linear_fit_value(f, "backend", b.name()))
                .collect::<Vec<_>>(),
        ),
    };
    Ok(Value::Object(vec![
        ("format".to_string(), Value::Str(FORMAT_NAME.to_string())),
        ("version".to_string(), Value::UInt(FORMAT_VERSION)),
        (
            "backend".to_string(),
            Value::Str(spec.backend_name().to_string()),
        ),
        ("transfer".to_string(), Value::Array(transfer)),
        ("compute".to_string(), Value::Array(compute)),
    ]))
}

/// Renders a fitted model as its canonical model-file JSON text.
pub fn export_model(spec: &CostModelSpec) -> Result<String> {
    let value = model_value(spec)?;
    serde_json::to_string_pretty(&value)
        .map(|s| s + "\n")
        .map_err(|e| CoreError::Serialization(e.to_string()))
}

/// Writes a model file ([`export_model`] to disk).
pub fn export_model_file(spec: &CostModelSpec, path: &Path) -> Result<()> {
    let rendered = export_model(spec)?;
    std::fs::write(path, rendered).map_err(|e| CoreError::Serialization(e.to_string()))
}

// ---------------------------------------------------------------------------
// Model-file parsing (the import half).
// ---------------------------------------------------------------------------

fn expect_object<'v>(value: &'v Value, what: &str) -> Result<&'v [(String, Value)]> {
    match value {
        Value::Object(fields) => Ok(fields),
        other => Err(invalid(format!(
            "{what} must be an object, got {}",
            other.kind()
        ))),
    }
}

fn lookup<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require<'v>(fields: &'v [(String, Value)], key: &str, what: &str) -> Result<&'v Value> {
    lookup(fields, key).ok_or_else(|| invalid(format!("{what} is missing the `{key}` field")))
}

/// Rejects unknown and duplicate keys, naming the offender and the
/// context.
fn check_keys(fields: &[(String, Value)], allowed: &[&str], what: &str) -> Result<()> {
    for (i, (key, _)) in fields.iter().enumerate() {
        if !allowed.contains(&key.as_str()) {
            return Err(invalid(format!("{what} has an unknown field `{key}`")));
        }
        if fields[..i].iter().any(|(k, _)| k == key) {
            return Err(invalid(format!("{what} repeats the field `{key}`")));
        }
    }
    Ok(())
}

/// Extracts a non-negative integer, distinguishing the failure classes a
/// fuzzer produces: negative integers, float syntax and non-numbers each
/// get a message naming the path.
fn uint_field(fields: &[(String, Value)], key: &str, what: &str) -> Result<u64> {
    match require(fields, key, what)? {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) => Err(invalid(format!("{what} field `{key}` is negative ({n})"))),
        Value::Float(x) => Err(invalid(format!(
            "{what} field `{key}` must be an integer, got the non-integer number {x}"
        ))),
        other => Err(invalid(format!(
            "{what} field `{key}` must be a non-negative integer, got {}",
            other.kind()
        ))),
    }
}

fn str_field<'v>(fields: &'v [(String, Value)], key: &str, what: &str) -> Result<&'v str> {
    match require(fields, key, what)? {
        Value::Str(s) => Ok(s),
        other => Err(invalid(format!(
            "{what} field `{key}` must be a string, got {}",
            other.kind()
        ))),
    }
}

fn import_linear_entry(value: &Value, key: &str, what: &str) -> Result<(String, LinearFit)> {
    let fields = expect_object(value, what)?;
    check_keys(
        fields,
        &[key, "alpha_us", "beta_ps_per_byte", "samples"],
        what,
    )?;
    let name = str_field(fields, key, what)?.to_string();
    Ok((
        name,
        LinearFit {
            alpha_us: uint_field(fields, "alpha_us", what)?,
            beta_ps_per_byte: uint_field(fields, "beta_ps_per_byte", what)?,
            samples: uint_field(fields, "samples", what)?,
        },
    ))
}

fn import_history_entry(value: &Value, key: &str, what: &str) -> Result<(String, HistoryTable)> {
    let fields = expect_object(value, what)?;
    check_keys(fields, &[key, "buckets"], what)?;
    let name = str_field(fields, key, what)?.to_string();
    let buckets = match require(fields, "buckets", what)? {
        Value::Array(items) => items,
        other => {
            return Err(invalid(format!(
                "{what} field `buckets` must be an array, got {}",
                other.kind()
            )))
        }
    };
    let mut imported = Vec::with_capacity(buckets.len());
    for (i, item) in buckets.iter().enumerate() {
        let bucket_what = format!("{what} bucket #{i}");
        let bfields = expect_object(item, &bucket_what)?;
        check_keys(bfields, &["bucket", "mean_us", "samples"], &bucket_what)?;
        let bucket = uint_field(bfields, "bucket", &bucket_what)?;
        imported.push(HistoryBucket {
            bucket: u32::try_from(bucket)
                .map_err(|_| invalid(format!("{bucket_what} index {bucket} is out of range")))?,
            mean_us: uint_field(bfields, "mean_us", &bucket_what)?,
            samples: uint_field(bfields, "samples", &bucket_what)?,
        });
    }
    Ok((name, HistoryTable::new(imported)?))
}

fn section<'v>(fields: &'v [(String, Value)], key: &str) -> Result<&'v [Value]> {
    match require(fields, key, "cost-model file")? {
        Value::Array(items) => Ok(items),
        other => Err(invalid(format!(
            "cost-model `{key}` section must be an array, got {}",
            other.kind()
        ))),
    }
}

fn link_of(name: &str, what: &str) -> Result<LinkClass> {
    LinkClass::from_name(name).ok_or_else(|| {
        invalid(format!(
            "{what} names unknown link class `{name}` (known: h2d, d2h)"
        ))
    })
}

fn backend_of(name: &str, what: &str) -> Result<ComputeBackend> {
    ComputeBackend::from_name(name).ok_or_else(|| {
        invalid(format!(
            "{what} names unknown compute backend `{name}` (known: cpu)"
        ))
    })
}

/// Parses a model-file [`Value`] with the full strict validation: exact
/// format/version envelope, no unknown or duplicate keys anywhere,
/// integer-only coefficients, canonical entry order, non-empty history
/// tables. Every failure is a typed [`CoreError::InvalidCostModel`].
pub fn model_from_value(value: &Value) -> Result<CostModelSpec> {
    let fields = expect_object(value, "cost-model file")?;
    check_keys(
        fields,
        &["format", "version", "backend", "transfer", "compute"],
        "cost-model file",
    )?;
    let format = str_field(fields, "format", "cost-model file")?;
    if format != FORMAT_NAME {
        return Err(invalid(format!(
            "not a cost-model file: format is `{format}`, expected `{FORMAT_NAME}`"
        )));
    }
    let version = uint_field(fields, "version", "cost-model file")?;
    if version != FORMAT_VERSION {
        return Err(invalid(format!(
            "unsupported cost-model version {version}; this build reads version \
             {FORMAT_VERSION} only"
        )));
    }
    let backend = str_field(fields, "backend", "cost-model file")?;
    let transfer = section(fields, "transfer")?;
    let compute = section(fields, "compute")?;
    let spec = match backend {
        "regression" => {
            let mut t = Vec::with_capacity(transfer.len());
            for (i, item) in transfer.iter().enumerate() {
                let what = format!("transfer entry #{i}");
                let (name, fit) = import_linear_entry(item, "link", &what)?;
                t.push((link_of(&name, &what)?, fit));
            }
            let mut c = Vec::with_capacity(compute.len());
            for (i, item) in compute.iter().enumerate() {
                let what = format!("compute entry #{i}");
                let (name, fit) = import_linear_entry(item, "backend", &what)?;
                c.push((backend_of(&name, &what)?, fit));
            }
            CostModelSpec::Regression(RegressionModel::new(t, c)?)
        }
        "history" => {
            let mut t = Vec::with_capacity(transfer.len());
            for (i, item) in transfer.iter().enumerate() {
                let what = format!("transfer entry #{i}");
                let (name, table) = import_history_entry(item, "link", &what)?;
                t.push((link_of(&name, &what)?, table));
            }
            let mut c = Vec::with_capacity(compute.len());
            for (i, item) in compute.iter().enumerate() {
                let what = format!("compute entry #{i}");
                let (name, table) = import_history_entry(item, "backend", &what)?;
                c.push((backend_of(&name, &what)?, table));
            }
            CostModelSpec::History(HistoryModel::new(t, c)?)
        }
        other => {
            return Err(invalid(format!(
                "unknown cost-model backend `{other}` (known: history, regression)"
            )))
        }
    };
    Ok(spec)
}

/// Parses model-file JSON text ([`model_from_value`] after JSON parsing;
/// syntax errors are [`CoreError::Serialization`]).
pub fn import_model(json: &str) -> Result<CostModelSpec> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| CoreError::Serialization(e.to_string()))?;
    model_from_value(&value)
}

/// Reads a model file from disk.
pub fn import_model_file(path: &Path) -> Result<CostModelSpec> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| CoreError::InvalidCostModel(format!("cannot load {}: {e}", path.display())))?;
    import_model(&json)
}

// The spec serializes as its file Value (or the literal string
// "analytic"), so instances, traces and solve requests can embed it with
// the exact same strict validation as the standalone file.
impl Serialize for CostModelSpec {
    fn to_value(&self) -> Value {
        match model_value(self) {
            Ok(value) => value,
            // Analytic is the only infallible-at-validate spec without a
            // file form; broken hand-assembled specs are caught at
            // validate() before any serialization path reaches here.
            Err(_) => Value::Str("analytic".to_string()),
        }
    }
}

impl Deserialize for CostModelSpec {
    fn from_value(value: &Value) -> std::result::Result<Self, SerdeError> {
        match value {
            Value::Str(s) if s.eq_ignore_ascii_case("analytic") => Ok(CostModelSpec::Analytic),
            Value::Str(other) => Err(SerdeError::custom(format!(
                "unknown cost-model keyword `{other}` (only `analytic`, or an inline model file)"
            ))),
            other => model_from_value(other).map_err(SerdeError::custom),
        }
    }
}

// ---------------------------------------------------------------------------
// Fit quality.
// ---------------------------------------------------------------------------

/// Fit quality of a model against a set of observations, in integer
/// fixed-point: relative error in basis points, R² in parts per million.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitReport {
    /// Observations evaluated.
    pub samples: u64,
    /// Observations skipped because the observed duration was zero
    /// (relative error is undefined there).
    pub skipped_zero: u64,
    /// Mean relative error over the evaluated observations, basis points
    /// (100 bp = 1 %).
    pub mean_rel_err_bp: u64,
    /// Coefficient of determination, parts per million (1 000 000 = a
    /// perfect fit). Defined as 0 when every observation is identical but
    /// mispredicted.
    pub r2_ppm: u64,
}

/// Evaluates predictions against observations. `predict` maps a byte
/// count to a predicted duration in microseconds.
pub fn fit_quality(samples: &[(u64, u64)], predict: impl Fn(u64) -> u64) -> FitReport {
    let n = samples.len() as u128;
    if n == 0 {
        return FitReport {
            samples: 0,
            skipped_zero: 0,
            mean_rel_err_bp: 0,
            r2_ppm: 0,
        };
    }
    let sy: u128 = samples.iter().map(|&(_, y)| u128::from(y)).sum();
    let mut err_bp_sum: u128 = 0;
    let mut evaluated: u128 = 0;
    let mut skipped: u64 = 0;
    let mut ss_res: u128 = 0;
    let mut ss_tot: u128 = 0;
    for &(bytes, y) in samples {
        let p = predict(bytes);
        let abs_err = u128::from(p.abs_diff(y));
        ss_res = ss_res.saturating_add(abs_err.saturating_mul(abs_err).saturating_mul(n * n));
        // (n·y − Σy)² keeps the mean exact without leaving integers.
        let dev = (n * u128::from(y)).abs_diff(sy);
        ss_tot = ss_tot.saturating_add(dev.saturating_mul(dev).saturating_mul(n));
        if y == 0 {
            skipped += 1;
        } else {
            err_bp_sum += abs_err * u128::from(REL_ERR_SCALE_BP) / u128::from(y);
            evaluated += 1;
        }
    }
    let mean_rel_err_bp = err_bp_sum
        .checked_div(evaluated)
        .map_or(0, |mean| mean.min(u128::from(u64::MAX)) as u64);
    let r2_ppm = match ss_res
        .saturating_mul(u128::from(R2_SCALE_PPM))
        .checked_div(ss_tot)
    {
        Some(scaled) => u128::from(R2_SCALE_PPM).saturating_sub(scaled) as u64,
        // Constant observations: perfect iff residual-free.
        None if ss_res == 0 => R2_SCALE_PPM,
        None => 0,
    };
    FitReport {
        samples: samples.len() as u64,
        skipped_zero: skipped,
        mean_rel_err_bp,
        r2_ppm,
    }
}

/// The calibration observations an instance yields: per task, the
/// `(bytes, duration_us)` pairs of its transfer and its computation. The
/// durations are the instance's materialized times — under the analytic
/// default these are exactly the simulated per-task durations every
/// execution model charges for link occupancy and compute.
pub fn observations_of(instance: &crate::instance::Instance) -> CalibrationObservations {
    let mut transfer = Vec::with_capacity(instance.len());
    let mut compute = Vec::with_capacity(instance.len());
    for task in instance.tasks() {
        transfer.push((task.mem.bytes(), task.comm_time.ticks()));
        compute.push((task.mem.bytes(), task.comp_time.ticks()));
    }
    CalibrationObservations { transfer, compute }
}

/// The observation sets calibration fits from; see [`observations_of`].
#[derive(Debug, Clone, Default)]
pub struct CalibrationObservations {
    /// `(bytes, observed transfer duration in µs)` per task.
    pub transfer: Vec<(u64, u64)>,
    /// `(bytes, observed computation duration in µs)` per task.
    pub compute: Vec<(u64, u64)>,
}

impl CalibrationObservations {
    /// Appends another instance's observations (multi-trace calibration).
    pub fn extend(&mut self, other: CalibrationObservations) {
        self.transfer.extend(other.transfer);
        self.compute.extend(other.compute);
    }

    /// Fits a [`RegressionModel`] spec to the observations.
    pub fn fit_regression(&self) -> Result<CostModelSpec> {
        let model = RegressionModel::new(
            vec![(LinkClass::HostToDevice, fit_linear(&self.transfer)?)],
            vec![(ComputeBackend::Cpu, fit_linear(&self.compute)?)],
        )?;
        Ok(CostModelSpec::Regression(model))
    }

    /// Fits a [`HistoryModel`] spec to the observations.
    pub fn fit_history(&self) -> Result<CostModelSpec> {
        let model = HistoryModel::new(
            vec![(LinkClass::HostToDevice, fit_history(&self.transfer)?)],
            vec![(ComputeBackend::Cpu, fit_history(&self.compute)?)],
        )?;
        Ok(CostModelSpec::History(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemSize;

    fn task(bytes: u64, comm_us: u64, comp_us: u64) -> Task {
        Task::new(
            "t",
            Time::from_micros(comm_us),
            Time::from_micros(comp_us),
            MemSize::from_bytes(bytes),
        )
    }

    fn regression_spec() -> CostModelSpec {
        CostModelSpec::Regression(
            RegressionModel::new(
                vec![(
                    LinkClass::HostToDevice,
                    LinearFit {
                        alpha_us: 5,
                        beta_ps_per_byte: 2 * PS_PER_MICRO,
                        samples: 10,
                    },
                )],
                vec![(
                    ComputeBackend::Cpu,
                    LinearFit {
                        alpha_us: 1,
                        beta_ps_per_byte: 0,
                        samples: 10,
                    },
                )],
            )
            .unwrap(),
        )
    }

    fn history_spec() -> CostModelSpec {
        CostModelSpec::History(
            HistoryModel::new(
                vec![(
                    LinkClass::HostToDevice,
                    HistoryTable::new(vec![
                        HistoryBucket {
                            bucket: 2,
                            mean_us: 40,
                            samples: 3,
                        },
                        HistoryBucket {
                            bucket: 5,
                            mean_us: 300,
                            samples: 2,
                        },
                    ])
                    .unwrap(),
                )],
                vec![(
                    ComputeBackend::Cpu,
                    HistoryTable::new(vec![HistoryBucket {
                        bucket: 0,
                        mean_us: 7,
                        samples: 1,
                    }])
                    .unwrap(),
                )],
            )
            .unwrap(),
        )
    }

    #[test]
    fn analytic_is_the_identity() {
        let t = task(100, 30, 20);
        assert_eq!(
            Analytic.transfer_time(&t, LinkClass::HostToDevice),
            Time::from_micros(30)
        );
        assert_eq!(
            Analytic.compute_time(&t, ComputeBackend::Cpu),
            Time::from_micros(20)
        );
        assert!(CostModelSpec::default().is_analytic());
    }

    #[test]
    fn regression_predicts_the_line_exactly() {
        let spec = regression_spec();
        // 5 + 2·bytes µs.
        let t = task(100, 0, 0);
        assert_eq!(
            spec.transfer_time(&t, LinkClass::HostToDevice),
            Time::from_micros(205)
        );
        assert_eq!(
            spec.compute_time(&t, ComputeBackend::Cpu),
            Time::from_micros(1)
        );
        // The d2h class falls back to the h2d fit.
        assert_eq!(
            spec.transfer_time(&t, LinkClass::DeviceToHost),
            Time::from_micros(205)
        );
    }

    #[test]
    fn sub_microsecond_slopes_round_half_up() {
        let fit = LinearFit {
            alpha_us: 0,
            beta_ps_per_byte: 1, // 1 ps/byte
            samples: 1,
        };
        assert_eq!(fit.predict_us(499_999), 0);
        assert_eq!(fit.predict_us(500_000), 1);
        assert_eq!(fit.predict_us(1_500_000), 2);
        // Saturation instead of overflow.
        let huge = LinearFit {
            alpha_us: u64::MAX,
            beta_ps_per_byte: u64::MAX,
            samples: 1,
        };
        assert_eq!(huge.predict_us(u64::MAX), u64::MAX);
    }

    #[test]
    fn history_uses_nearest_bucket() {
        let spec = history_spec();
        // bytes 4..7 → bucket 2 exactly.
        assert_eq!(
            spec.transfer_time(&task(5, 0, 0), LinkClass::HostToDevice),
            Time::from_micros(40)
        );
        // bucket 3 is unrecorded; nearest is 2.
        assert_eq!(
            spec.transfer_time(&task(10, 0, 0), LinkClass::HostToDevice),
            Time::from_micros(40)
        );
        // bucket 4 → nearest is 5.
        assert_eq!(
            spec.transfer_time(&task(20, 0, 0), LinkClass::HostToDevice),
            Time::from_micros(300)
        );
        // bucket 6 → nearest is 5.
        assert_eq!(
            spec.transfer_time(&task(100, 0, 0), LinkClass::HostToDevice),
            Time::from_micros(300)
        );
        // bucket 3 ties between 2 and 4; ties go to the smaller bucket.
        let tie = HistoryTable::new(vec![
            HistoryBucket {
                bucket: 2,
                mean_us: 11,
                samples: 1,
            },
            HistoryBucket {
                bucket: 4,
                mean_us: 99,
                samples: 1,
            },
        ])
        .unwrap();
        assert_eq!(tie.predict_us(8), 11);
    }

    #[test]
    fn size_buckets_are_log2_floors() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 0);
        assert_eq!(size_bucket(2), 1);
        assert_eq!(size_bucket(3), 1);
        assert_eq!(size_bucket(1024), 10);
        assert_eq!(size_bucket(u64::MAX), 63);
    }

    #[test]
    fn fit_linear_recovers_an_exact_line() {
        // y = 7 + 3·x, exact integer observations.
        let samples: Vec<(u64, u64)> = (1..=50).map(|x| (x, 7 + 3 * x)).collect();
        let fit = fit_linear(&samples).unwrap();
        assert_eq!(fit.alpha_us, 7);
        assert_eq!(fit.beta_ps_per_byte, 3 * PS_PER_MICRO);
        assert_eq!(fit.samples, 50);
        let report = fit_quality(&samples, |x| fit.predict_us(x));
        assert_eq!(report.mean_rel_err_bp, 0);
        assert_eq!(report.r2_ppm, R2_SCALE_PPM);
    }

    #[test]
    fn fit_linear_handles_degenerate_data() {
        // Constant x: slope 0, intercept the mean.
        let fit = fit_linear(&[(5, 10), (5, 20), (5, 30)]).unwrap();
        assert_eq!(fit.beta_ps_per_byte, 0);
        assert_eq!(fit.alpha_us, 20);
        // Decreasing data clamps the slope at zero rather than going
        // negative (negative coefficients are unrepresentable by design).
        let fit = fit_linear(&[(1, 100), (2, 50), (3, 1)]).unwrap();
        assert_eq!(fit.beta_ps_per_byte, 0);
        // Empty observation lists are a typed error.
        assert!(matches!(
            fit_linear(&[]),
            Err(CoreError::InvalidCostModel(_))
        ));
    }

    #[test]
    fn fit_history_groups_by_bucket_and_averages() {
        let table = fit_history(&[(4, 10), (5, 20), (1024, 100)]).unwrap();
        assert_eq!(table.buckets().len(), 2);
        assert_eq!(table.buckets()[0].bucket, 2);
        assert_eq!(table.buckets()[0].mean_us, 15);
        assert_eq!(table.buckets()[0].samples, 2);
        assert_eq!(table.buckets()[1].bucket, 10);
        assert_eq!(table.buckets()[1].mean_us, 100);
    }

    #[test]
    fn history_merge_weights_by_samples() {
        let a = fit_history(&[(4, 10), (4, 10)]).unwrap();
        let b = fit_history(&[(4, 40), (1024, 9)]).unwrap();
        let merged = a.merged_with(&b);
        assert_eq!(merged.buckets().len(), 2);
        // (10·2 + 40·1) / 3 = 20.
        assert_eq!(merged.buckets()[0].mean_us, 20);
        assert_eq!(merged.buckets()[0].samples, 3);
        assert_eq!(merged.buckets()[1].mean_us, 9);
    }

    #[test]
    fn model_files_round_trip_byte_identically() {
        for spec in [regression_spec(), history_spec()] {
            let rendered = export_model(&spec).unwrap();
            let back = import_model(&rendered).unwrap();
            assert_eq!(back, spec);
            assert_eq!(export_model(&back).unwrap(), rendered);
        }
    }

    #[test]
    fn analytic_has_no_file_form() {
        assert!(matches!(
            export_model(&CostModelSpec::Analytic),
            Err(CoreError::InvalidCostModel(_))
        ));
    }

    fn reject(json: &str, needle: &str) {
        match import_model(json) {
            Err(CoreError::InvalidCostModel(msg)) => assert!(
                msg.contains(needle),
                "message `{msg}` does not mention `{needle}` for {json}"
            ),
            other => panic!("malformed file accepted or mis-typed: {other:?} for {json}"),
        }
    }

    #[test]
    fn importer_rejects_malformed_files_with_typed_errors() {
        let valid = export_model(&regression_spec()).unwrap();
        // Unknown version.
        reject(
            &valid.replace("\"version\": 1", "\"version\": 99"),
            "version 99",
        );
        // Wrong format name.
        reject(&valid.replace("dts-cost-model", "dts-trace"), "format");
        // Unknown top-level key.
        reject(&valid.replace("\"backend\"", "\"banana\""), "unknown field");
        // Unknown backend.
        reject(
            &valid.replace("\"regression\"", "\"neural\""),
            "unknown cost-model backend",
        );
        // Negative coefficient.
        reject(
            &valid.replace("\"alpha_us\": 5", "\"alpha_us\": -5"),
            "negative",
        );
        // Float coefficient.
        reject(
            &valid.replace("\"alpha_us\": 5", "\"alpha_us\": 5.5"),
            "non-integer",
        );
        // Unknown link class.
        reject(&valid.replace("\"h2d\"", "\"pcie9\""), "unknown link class");
        // JSON syntax errors are Serialization, not InvalidCostModel.
        assert!(matches!(
            import_model("{ nope"),
            Err(CoreError::Serialization(_))
        ));
    }

    #[test]
    fn importer_rejects_empty_history_tables() {
        let json = r#"{
  "format": "dts-cost-model",
  "version": 1,
  "backend": "history",
  "transfer": [ { "link": "h2d", "buckets": [] } ],
  "compute": [ { "backend": "cpu", "buckets": [ { "bucket": 0, "mean_us": 1, "samples": 1 } ] } ]
}"#;
        reject(json, "at least one bucket");
    }

    #[test]
    fn importer_rejects_empty_sections() {
        let json = r#"{
  "format": "dts-cost-model",
  "version": 1,
  "backend": "regression",
  "transfer": [],
  "compute": [ { "backend": "cpu", "alpha_us": 1, "beta_ps_per_byte": 1, "samples": 1 } ]
}"#;
        reject(json, "transfer section is empty");
    }

    #[test]
    fn importer_requires_the_default_entries() {
        let json = r#"{
  "format": "dts-cost-model",
  "version": 1,
  "backend": "regression",
  "transfer": [ { "link": "d2h", "alpha_us": 1, "beta_ps_per_byte": 1, "samples": 1 } ],
  "compute": [ { "backend": "cpu", "alpha_us": 1, "beta_ps_per_byte": 1, "samples": 1 } ]
}"#;
        reject(json, "must cover `h2d`");
    }

    #[test]
    fn spec_serde_round_trips_and_accepts_the_analytic_keyword() {
        let spec = regression_spec();
        let value = spec.to_value();
        assert_eq!(CostModelSpec::from_value(&value).unwrap(), spec);
        assert_eq!(
            CostModelSpec::from_value(&Value::Str("analytic".into())).unwrap(),
            CostModelSpec::Analytic
        );
        assert_eq!(
            CostModelSpec::from_value(&Value::Str("Analytic".into())).unwrap(),
            CostModelSpec::Analytic
        );
        assert!(CostModelSpec::from_value(&Value::Str("bogus".into())).is_err());
    }

    #[test]
    fn fit_quality_reports_skipped_zeroes_and_bounded_r2() {
        let report = fit_quality(&[(1, 0), (2, 100)], |_| 50);
        assert_eq!(report.samples, 2);
        assert_eq!(report.skipped_zero, 1);
        // |50−100|/100 = 50 % = 5000 bp.
        assert_eq!(report.mean_rel_err_bp, 5000);
        assert!(report.r2_ppm <= R2_SCALE_PPM);
        // Constant observations, perfect prediction.
        let perfect = fit_quality(&[(1, 9), (2, 9)], |_| 9);
        assert_eq!(perfect.r2_ppm, R2_SCALE_PPM);
        assert_eq!(perfect.mean_rel_err_bp, 0);
    }
}
