//! Memory-indexed candidate selection for decision-driven schedulers.
//!
//! The dynamic and corrected heuristics of the paper (Sections 4.2–4.3) make
//! one decision per scheduled task: among the not-yet-scheduled tasks that
//! fit in the free memory, keep those inducing minimum idle time on the
//! processing unit, then break the tie with a criterion (largest/smallest
//! communication time, maximum acceleration ratio). Evaluating that rule by
//! scanning every remaining task makes each decision O(n) and the whole run
//! O(n²).
//!
//! [`CandidateIndex`] answers the same selection queries in O(log n) /
//! O(log² n) per decision. It keeps the tasks of an instance sorted by
//! `(communication time, id)` and maintains two structures over that order:
//!
//! * a **min-memory segment tree**: each node stores the smallest memory
//!   requirement among its still-present tasks, which lets directed descents
//!   find the leftmost/rightmost fitting task of any communication-time
//!   range in O(log n);
//! * a **ratio range tree** (a merge-sort tree): each node additionally
//!   stores its tasks sorted by memory requirement together with an inner
//!   segment tree of acceleration ratios, which lets a prefix of the
//!   communication order be searched for the best-ratio fitting task in
//!   O(log² n).
//!
//! Three queries cover all of the paper's selection rules (see
//! [`min_comm_candidate`](CandidateIndex::min_comm_candidate),
//! [`max_comm_candidate_within`](CandidateIndex::max_comm_candidate_within)
//! and
//! [`best_ratio_candidate_within`](CandidateIndex::best_ratio_candidate_within)):
//! the key observation is that a task fits at a decision instant iff its
//! memory requirement is at most the free memory, so "fits" is a pure
//! threshold on the indexed quantity and never requires rescanning.
//!
//! ```
//! use dts_core::index::CandidateIndex;
//! use dts_core::instances::table4;
//! use dts_core::{MemSize, TaskId, Time};
//!
//! let instance = table4(); // A..D with comm times 3, 1, 4, 5 and mem 3, 1, 4, 5
//! let mut index = CandidateIndex::new(&instance);
//! // Smallest communication time among tasks needing at most 4 bytes: B.
//! assert_eq!(index.min_comm_candidate(MemSize::from_bytes(4)), Some(TaskId(1)));
//! // Largest communication time <= 4 units among the same tasks: C.
//! let bound = Time::units_int(4);
//! assert_eq!(
//!     index.max_comm_candidate_within(MemSize::from_bytes(4), bound),
//!     Some(TaskId(2))
//! );
//! index.remove(TaskId(2));
//! assert_eq!(
//!     index.max_comm_candidate_within(MemSize::from_bytes(4), bound),
//!     Some(TaskId(0))
//! );
//! ```

use crate::instance::Instance;
use crate::memory::MemSize;
use crate::task::TaskId;
use crate::time::Time;

/// Aggregate of the ratio range tree: the best `(acceleration ratio, id)`
/// pair of a set of tasks, where "best" is the largest ratio and ties prefer
/// the smallest id — exactly the MAMR/OOMAMR choice rule.
/// [`Time::ratio`] never produces NaN, so `f64` comparisons are total here.
type RatioBest = (f64, u32);

/// Neutral element of [`RatioBest`]: worse than every real task (real ratios
/// are non-negative) and losing every id tie.
const RATIO_NEUTRAL: RatioBest = (f64::NEG_INFINITY, u32::MAX);

#[inline]
fn ratio_combine(a: RatioBest, b: RatioBest) -> RatioBest {
    if a.0 > b.0 {
        a
    } else if b.0 > a.0 {
        b
    } else if a.1 <= b.1 {
        a
    } else {
        b
    }
}

/// Sentinel stored in the min-memory tree for removed tasks and padding
/// leaves. `u128` so that it compares above every real memory requirement,
/// including a legitimate `u64::MAX`-byte task.
const MEM_ABSENT: u128 = u128::MAX;

/// One node of the ratio range tree: the tasks of the node's communication
/// range sorted by `(memory, position)`, plus an iterative segment tree of
/// [`RatioBest`] aggregates over that order (removed tasks are set to
/// [`RATIO_NEUTRAL`], the sorted list itself is immutable).
#[derive(Debug, Clone, Default)]
struct RatioNode {
    by_mem: Vec<(u64, u32)>,
    inner: Vec<RatioBest>,
}

impl RatioNode {
    fn build(by_mem: Vec<(u64, u32)>, key_of: impl Fn(u32) -> RatioBest) -> Self {
        let len = by_mem.len();
        let mut inner = vec![RATIO_NEUTRAL; 2 * len];
        for (i, &(_, pos)) in by_mem.iter().enumerate() {
            inner[len + i] = key_of(pos);
        }
        for i in (1..len).rev() {
            inner[i] = ratio_combine(inner[2 * i], inner[2 * i + 1]);
        }
        RatioNode { by_mem, inner }
    }

    /// Best ratio among the first `k` tasks of the by-memory order.
    fn prefix_best(&self, k: usize) -> RatioBest {
        let len = self.by_mem.len();
        let mut best = RATIO_NEUTRAL;
        let (mut l, mut r) = (len, len + k);
        while l < r {
            if l & 1 == 1 {
                best = ratio_combine(best, self.inner[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                best = ratio_combine(best, self.inner[r]);
            }
            l >>= 1;
            r >>= 1;
        }
        best
    }

    /// Sets the aggregate key of the task stored at `(mem, pos)`:
    /// [`RATIO_NEUTRAL`] on removal, the task's `(ratio, id)` on restore.
    fn set(&mut self, mem: u64, pos: u32, key: RatioBest) {
        let idx = self
            .by_mem
            .binary_search(&(mem, pos))
            .expect("task is present in every range-tree node covering it");
        let len = self.by_mem.len();
        let mut i = len + idx;
        self.inner[i] = key;
        while i > 1 {
            i >>= 1;
            self.inner[i] = ratio_combine(self.inner[2 * i], self.inner[2 * i + 1]);
        }
    }
}

/// An index over the not-yet-scheduled tasks of an instance, ordered by
/// `(communication time, id)` and searchable by memory threshold.
///
/// Construction is O(n log n); [`remove`](CandidateIndex::remove) is
/// O(log² n); the candidate queries are O(log n) except the ratio query,
/// which is O(log² n). See the [module documentation](self) for how the
/// queries map onto the paper's selection rules.
///
/// The ratio range tree dominates the construction time and memory
/// (O(n log n) entries, vs O(n) for everything else); selection rules that
/// never ask ratio queries — the largest/smallest-communication criteria —
/// should build the index with
/// [`comm_only`](CandidateIndex::comm_only), which skips that tree and
/// makes [`remove`](CandidateIndex::remove) O(log n).
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    /// Communication time at each position of the `(comm, id)` order
    /// (non-decreasing; includes removed tasks — positions are static).
    comm: Vec<Time>,
    /// Task id at each position.
    id_at: Vec<TaskId>,
    /// Memory requirement at each position.
    mem: Vec<u64>,
    /// Position of each task id.
    pos_of: Vec<u32>,
    /// Which positions still hold a task.
    present: Vec<bool>,
    /// Number of tasks still present.
    len: usize,
    /// Leaf offset of the two trees (`next_power_of_two` of the task count).
    base: usize,
    /// Min-memory segment tree over positions (`2 * base` slots, node `i`
    /// covers the same span in both trees).
    min_mem: Vec<u128>,
    /// Ratio range tree, indexed like `min_mem`; `None` for
    /// [`comm_only`](CandidateIndex::comm_only) indexes.
    ratio_tree: Option<Vec<RatioNode>>,
    /// Acceleration ratio at each position (empty for
    /// [`comm_only`](CandidateIndex::comm_only) indexes); needed to rebuild
    /// a leaf's aggregate key on [`restore`](CandidateIndex::restore).
    ratio: Vec<f64>,
}

impl CandidateIndex {
    /// Builds the full index over every task of `instance`, including the
    /// ratio range tree behind
    /// [`best_ratio_candidate_within`](CandidateIndex::best_ratio_candidate_within).
    ///
    /// # Panics
    ///
    /// Panics if the instance has more than `u32::MAX` tasks (positions and
    /// ids are stored as `u32`; such an instance could not be scheduled in
    /// memory anyway).
    pub fn new(instance: &Instance) -> Self {
        Self::build(instance, true)
    }

    /// Builds the index without the ratio range tree: half the memory and
    /// build time, O(log n) removals — for selection rules that only need
    /// the communication-time queries.
    ///
    /// # Panics
    ///
    /// Same construction limits as [`new`](CandidateIndex::new); in
    /// addition, calling
    /// [`best_ratio_candidate_within`](CandidateIndex::best_ratio_candidate_within)
    /// on the resulting index panics.
    pub fn comm_only(instance: &Instance) -> Self {
        Self::build(instance, false)
    }

    fn build(instance: &Instance, with_ratio_tree: bool) -> Self {
        let n = instance.len();
        assert!(
            u32::try_from(n).is_ok(),
            "CandidateIndex supports at most u32::MAX tasks"
        );
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| (instance.task(TaskId(i as usize)).comm_time, i));

        let mut comm = Vec::with_capacity(n);
        let mut id_at = Vec::with_capacity(n);
        let mut mem = Vec::with_capacity(n);
        let mut pos_of = vec![0u32; n];
        for (pos, &i) in order.iter().enumerate() {
            let task = instance.task(TaskId(i as usize));
            comm.push(task.comm_time);
            id_at.push(TaskId(i as usize));
            mem.push(task.mem.bytes());
            pos_of[i as usize] = pos as u32;
        }

        let base = n.next_power_of_two().max(1);
        let mut min_mem = vec![MEM_ABSENT; 2 * base];
        for (pos, &m) in mem.iter().enumerate() {
            min_mem[base + pos] = u128::from(m);
        }
        for i in (1..base).rev() {
            min_mem[i] = min_mem[2 * i].min(min_mem[2 * i + 1]);
        }

        // Bottom-up merge of the by-memory lists (a merge sort over the
        // leaves), building each node's inner ratio tree as it forms. Only
        // this tree consumes the acceleration ratios, so they are computed
        // here and not at all for `comm_only` indexes.
        let ratio: Vec<f64> = if with_ratio_tree {
            id_at
                .iter()
                .map(|&id| instance.task(id).acceleration_ratio())
                .collect()
        } else {
            Vec::new()
        };
        let ratio_tree = with_ratio_tree.then(|| {
            let mut tree = vec![RatioNode::default(); 2 * base];
            let key_of = |pos: u32| -> RatioBest {
                (ratio[pos as usize], id_at[pos as usize].index() as u32)
            };
            for (pos, &m) in mem.iter().enumerate() {
                tree[base + pos] = RatioNode::build(vec![(m, pos as u32)], key_of);
            }
            for i in (1..base).rev() {
                let merged = merge_by_mem(&tree[2 * i].by_mem, &tree[2 * i + 1].by_mem);
                tree[i] = RatioNode::build(merged, key_of);
            }
            tree
        });

        CandidateIndex {
            comm,
            id_at,
            mem,
            pos_of,
            present: vec![true; n],
            len: n,
            base,
            min_mem,
            ratio_tree,
            ratio,
        }
    }

    /// Number of tasks still present.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff every task has been removed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` iff `id` has not been removed yet.
    #[inline]
    pub fn contains(&self, id: TaskId) -> bool {
        self.present[self.pos_of[id.index()] as usize]
    }

    /// Removes a task from the index (it has been scheduled).
    ///
    /// # Panics
    ///
    /// Panics if the task was already removed.
    pub fn remove(&mut self, id: TaskId) {
        let pos = self.pos_of[id.index()] as usize;
        assert!(self.present[pos], "task {id} removed twice");
        self.present[pos] = false;
        self.len -= 1;
        self.write_leaf(pos, MEM_ABSENT, RATIO_NEUTRAL);
    }

    /// Puts a previously [`remove`](CandidateIndex::remove)d task back into
    /// the index — the inverse operation, used when a speculative scheduling
    /// decision is rolled back. O(log² n) (O(log n) without the ratio
    /// tree), like removal.
    ///
    /// # Panics
    ///
    /// Panics if the task is still present.
    pub fn restore(&mut self, id: TaskId) {
        let pos = self.pos_of[id.index()] as usize;
        assert!(!self.present[pos], "task {id} restored while present");
        self.present[pos] = true;
        self.len += 1;
        let key = (
            self.ratio.get(pos).copied().unwrap_or(f64::NEG_INFINITY),
            self.id_at[pos].index() as u32,
        );
        self.write_leaf(pos, u128::from(self.mem[pos]), key);
    }

    /// Writes a position's leaf values — the memory sentinel/value and the
    /// ratio-tree key — and re-aggregates both trees along the root path.
    /// The single update ladder behind both
    /// [`remove`](CandidateIndex::remove) and
    /// [`restore`](CandidateIndex::restore). `key` is ignored for
    /// [`comm_only`](CandidateIndex::comm_only) indexes.
    fn write_leaf(&mut self, pos: usize, mem_leaf: u128, key: RatioBest) {
        let mut i = self.base + pos;
        self.min_mem[i] = mem_leaf;
        while i > 1 {
            i >>= 1;
            self.min_mem[i] = self.min_mem[2 * i].min(self.min_mem[2 * i + 1]);
        }

        if let Some(tree) = self.ratio_tree.as_mut() {
            let (m, pos32) = (self.mem[pos], pos as u32);
            let mut i = self.base + pos;
            while i >= 1 {
                tree[i].set(m, pos32, key);
                if i == 1 {
                    break;
                }
                i >>= 1;
            }
        }
    }

    /// The present task with the smallest `(communication time, id)` among
    /// those whose memory requirement is at most `free` — the SCMR choice,
    /// and the probe every selection starts from (it determines whether any
    /// task fits at all and what the minimum induced CPU idle time is).
    pub fn min_comm_candidate(&self, free: MemSize) -> Option<TaskId> {
        let limit = u128::from(free.bytes());
        if self.min_mem[1] > limit {
            return None;
        }
        let mut i = 1;
        while i < self.base {
            i = if self.min_mem[2 * i] <= limit {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(self.id_at[i - self.base])
    }

    /// Among present tasks with memory requirement at most `free` and
    /// communication time at most `comm_bound`, the one with the largest
    /// communication time, ties broken by smallest id — the LCMR choice when
    /// some fitting task induces no CPU idle time.
    pub fn max_comm_candidate_within(&self, free: MemSize, comm_bound: Time) -> Option<TaskId> {
        let limit = u128::from(free.bytes());
        let hi = self.comm.partition_point(|&c| c <= comm_bound);
        let pos = self.rightmost_fitting(hi, limit)?;
        // `pos` has the maximum communication time, but among equal
        // communication times the rightmost position is the largest id; the
        // chosen task is the leftmost fitting one of the equal-comm block.
        let c = self.comm[pos];
        let lo_block = self.comm.partition_point(|&x| x < c);
        let leftmost = self
            .leftmost_fitting(lo_block, pos + 1, limit)
            .expect("the block contains at least the task just found");
        Some(self.id_at[leftmost])
    }

    /// Among present tasks with memory requirement at most `free` and
    /// communication time at most `comm_bound`, the one with the largest
    /// acceleration ratio, ties broken by smallest id — the MAMR choice.
    /// When no fitting task avoids CPU idle time, calling this with
    /// `comm_bound` equal to the minimum fitting communication time restricts
    /// the query to exactly the minimum-idle candidates.
    ///
    /// # Panics
    ///
    /// Panics if the index was built with
    /// [`comm_only`](CandidateIndex::comm_only).
    pub fn best_ratio_candidate_within(&self, free: MemSize, comm_bound: Time) -> Option<TaskId> {
        let tree = self
            .ratio_tree
            .as_ref()
            .expect("ratio query on an index built with CandidateIndex::comm_only");
        let free = free.bytes();
        let hi = self.comm.partition_point(|&c| c <= comm_bound);
        let mut best = RATIO_NEUTRAL;
        let (mut l, mut r) = (self.base, self.base + hi);
        while l < r {
            if l & 1 == 1 {
                best = ratio_combine(best, node_prefix_best(&tree[l], free));
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                best = ratio_combine(best, node_prefix_best(&tree[r], free));
            }
            l >>= 1;
            r >>= 1;
        }
        (best != RATIO_NEUTRAL).then_some(TaskId(best.1 as usize))
    }

    /// Leftmost position in `[lo, hi)` whose present task needs at most
    /// `limit` bytes.
    fn leftmost_fitting(&self, lo: usize, hi: usize, limit: u128) -> Option<usize> {
        self.directed_search(lo, hi, limit, false)
    }

    /// Rightmost position in `[0, hi)` whose present task needs at most
    /// `limit` bytes.
    fn rightmost_fitting(&self, hi: usize, limit: u128) -> Option<usize> {
        self.directed_search(0, hi, limit, true)
    }

    /// Finds the extremal fitting position of `[lo, hi)`: decomposes the
    /// range into O(log n) tree nodes, takes the first (in the requested
    /// direction) containing a fitting task, and descends into it. The
    /// decomposition pushes at most one node per side per tree level, so
    /// fixed 64-entry stacks hold it without touching the heap — this runs
    /// up to twice per scheduling decision.
    fn directed_search(&self, lo: usize, hi: usize, limit: u128, rightmost: bool) -> Option<usize> {
        let mut left_nodes = [0usize; 64];
        let mut n_left = 0;
        let mut right_nodes = [0usize; 64];
        let mut n_right = 0;
        let (mut l, mut r) = (self.base + lo, self.base + hi);
        while l < r {
            if l & 1 == 1 {
                left_nodes[n_left] = l;
                n_left += 1;
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                right_nodes[n_right] = r;
                n_right += 1;
            }
            l >>= 1;
            r >>= 1;
        }
        // `left_nodes` followed by reversed `right_nodes` is the in-order
        // decomposition; scan it from the requested end (`right_nodes` is
        // pushed deepest-first, i.e. already rightmost-first).
        let pick = if rightmost {
            right_nodes[..n_right]
                .iter()
                .chain(left_nodes[..n_left].iter().rev())
                .copied()
                .find(|&i| self.min_mem[i] <= limit)
        } else {
            left_nodes[..n_left]
                .iter()
                .chain(right_nodes[..n_right].iter().rev())
                .copied()
                .find(|&i| self.min_mem[i] <= limit)
        };
        let mut i = pick?;
        while i < self.base {
            let (first, second) = if rightmost {
                (2 * i + 1, 2 * i)
            } else {
                (2 * i, 2 * i + 1)
            };
            i = if self.min_mem[first] <= limit {
                first
            } else {
                second
            };
        }
        Some(i - self.base)
    }
}

/// Best ratio among the tasks of `node` with memory at most `free`.
fn node_prefix_best(node: &RatioNode, free: u64) -> RatioBest {
    let k = node.by_mem.partition_point(|&(m, _)| m <= free);
    node.prefix_best(k)
}

fn merge_by_mem(a: &[(u64, u32)], b: &[(u64, u32)]) -> Vec<(u64, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::table4;

    #[test]
    fn queries_match_manual_expectations_on_table4() {
        // Table 4: A (comm 3, mem 3), B (comm 1, mem 1), C (comm 4, mem 4),
        // D (comm 5, mem 5); capacity 6.
        let inst = table4();
        let mut index = CandidateIndex::new(&inst);
        assert_eq!(index.len(), 4);
        assert!(!index.is_empty());

        // Everything fits under 6 free bytes; B has the smallest comm.
        let all = MemSize::from_bytes(6);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(1)));
        // Largest comm <= 4: C. Largest comm <= 10: D.
        assert_eq!(
            index.max_comm_candidate_within(all, Time::units_int(4)),
            Some(TaskId(2))
        );
        assert_eq!(
            index.max_comm_candidate_within(all, Time::units_int(10)),
            Some(TaskId(3))
        );
        // Best ratio (comp/comm: A 2/3, B 6, C 3/2, D 1/5) under bound 5: B.
        assert_eq!(
            index.best_ratio_candidate_within(all, Time::units_int(5)),
            Some(TaskId(1))
        );

        // With only one free byte, only B fits.
        let one = MemSize::from_bytes(1);
        assert_eq!(index.min_comm_candidate(one), Some(TaskId(1)));
        assert_eq!(
            index.max_comm_candidate_within(one, Time::units_int(10)),
            Some(TaskId(1))
        );
        assert_eq!(index.min_comm_candidate(MemSize::ZERO), None);

        // Removing B promotes A to the smallest-comm fitting task.
        index.remove(TaskId(1));
        assert!(!index.contains(TaskId(1)));
        assert!(index.contains(TaskId(0)));
        assert_eq!(index.len(), 3);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(0)));
        assert_eq!(
            index.best_ratio_candidate_within(all, Time::units_int(5)),
            Some(TaskId(2))
        );
        assert_eq!(index.min_comm_candidate(one), None);

        for id in [TaskId(0), TaskId(2), TaskId(3)] {
            index.remove(id);
        }
        assert!(index.is_empty());
        assert_eq!(index.min_comm_candidate(all), None);
        assert_eq!(
            index.max_comm_candidate_within(all, Time::units_int(10)),
            None
        );
        assert_eq!(
            index.best_ratio_candidate_within(all, Time::units_int(10)),
            None
        );
    }

    #[test]
    fn restore_undoes_removal_for_every_query() {
        let inst = table4();
        let mut index = CandidateIndex::new(&inst);
        let all = MemSize::from_bytes(6);
        let bound = Time::units_int(5);

        index.remove(TaskId(1));
        index.remove(TaskId(2));
        assert_eq!(index.len(), 2);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(0)));

        // Restoring B re-establishes the original answers.
        index.restore(TaskId(1));
        assert!(index.contains(TaskId(1)));
        assert_eq!(index.len(), 3);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(1)));
        assert_eq!(
            index.best_ratio_candidate_within(all, bound),
            Some(TaskId(1))
        );

        index.restore(TaskId(2));
        assert_eq!(
            index.max_comm_candidate_within(all, Time::units_int(4)),
            Some(TaskId(2))
        );
    }

    #[test]
    #[should_panic(expected = "restored while present")]
    fn restoring_a_present_task_panics() {
        let inst = table4();
        let mut index = CandidateIndex::new(&inst);
        index.restore(TaskId(0));
    }

    #[test]
    #[should_panic(expected = "removed twice")]
    fn double_removal_panics() {
        let inst = table4();
        let mut index = CandidateIndex::new(&inst);
        index.remove(TaskId(2));
        index.remove(TaskId(2));
    }

    #[test]
    fn ties_prefer_the_smallest_id() {
        // Three tasks with identical comm times and ratios: every query must
        // resolve ties toward the smallest id among those that fit.
        let inst = crate::instance::InstanceBuilder::new()
            .capacity(MemSize::from_bytes(10))
            .task_units("t0", 2.0, 4.0, 8)
            .task_units("t1", 2.0, 4.0, 2)
            .task_units("t2", 2.0, 4.0, 2)
            .build()
            .unwrap();
        let index = CandidateIndex::new(&inst);
        let bound = Time::units_int(2);
        let all = MemSize::from_bytes(10);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(0)));
        assert_eq!(index.max_comm_candidate_within(all, bound), Some(TaskId(0)));
        assert_eq!(
            index.best_ratio_candidate_within(all, bound),
            Some(TaskId(0))
        );
        // Exclude t0 by memory: the tie now resolves to t1.
        let small = MemSize::from_bytes(2);
        assert_eq!(index.min_comm_candidate(small), Some(TaskId(1)));
        assert_eq!(
            index.max_comm_candidate_within(small, bound),
            Some(TaskId(1))
        );
        assert_eq!(
            index.best_ratio_candidate_within(small, bound),
            Some(TaskId(1))
        );
    }
}
