//! Memory-indexed candidate selection for decision-driven schedulers.
//!
//! The dynamic and corrected heuristics of the paper (Sections 4.2–4.3) make
//! one decision per scheduled task: among the not-yet-scheduled tasks that
//! fit in the free memory, keep those inducing minimum idle time on the
//! processing unit, then break the tie with a criterion (largest/smallest
//! communication time, maximum acceleration ratio). Evaluating that rule by
//! scanning every remaining task makes each decision O(n) and the whole run
//! O(n²).
//!
//! [`CandidateIndex`] answers the communication-time queries in O(log n)
//! and the ratio query in O(√m · log n) worst case, where `m ≤ n` counts
//! the distinct communication times — and in O(log n) whenever the
//! best-ratio fitting task is not blocked behind the communication bound,
//! the common case (see
//! [`best_ratio_candidate_within`](CandidateIndex::best_ratio_candidate_within)
//! for the exact bound). It keeps the tasks of an instance sorted by
//! `(communication time, id)` and maintains three structures over that
//! order:
//!
//! * a **min-memory segment tree**: each node stores the smallest memory
//!   requirement among its still-present tasks, which lets directed descents
//!   find the leftmost/rightmost fitting task of any communication-time
//!   range in O(log n);
//! * a **memory-order ratio tree**: a segment tree whose leaves are the
//!   tasks sorted by `(memory, position)`, aggregating the best present
//!   `(acceleration ratio, id)` pair. A memory threshold is a *canonical
//!   prefix* of this order, so "best ratio among all fitting tasks" is a
//!   plain prefix-maximum query — O(log n) worst case, no search;
//! * a **block-priority ratio tree**: the communication order splits into
//!   runs of equal communication time, and every communication-time bound
//!   cuts exactly at a run boundary. Each run keeps its own small
//!   memory-sorted prefix-maximum tree, consecutive runs group into
//!   ⌈√m⌉-wide *buckets* (m the run count) that each keep a second
//!   memory-sorted prefix-maximum tree over all their tasks, and an outer
//!   tree over the buckets stores each subtree's *champion* — its best
//!   present `(ratio, id)` — heap-ordered down every root path like a
//!   priority search tree over `(memory, ratio)`. A run-aligned range is
//!   searched champion-first through the outer tree: a champion that fits
//!   in memory dominates its whole subtree and is taken without
//!   descending, a blocked bucket resolves *exactly* via its own
//!   prefix-maximum tree, and the at most two partially covered boundary
//!   buckets resolve run by run via the per-run trees. Memory-blocked
//!   high-ratio tasks therefore cost at most O(√m) exact O(log n) probes
//!   per query — not one probe per distinct communication time, which
//!   degenerated to a linear scan on continuous-communication traces
//!   under memory pressure.
//!
//! All structures store O(1) words per task slot (the runs partition the
//! tasks and so do the buckets), so the index takes O(n) memory and
//! O(log n) per update, where the previous merge-sort ratio tree paid
//! O(n log n) memory and O(log² n) per update; construction is O(n)
//! beyond its sorts.
//!
//! ```
//! use dts_core::index::CandidateIndex;
//! use dts_core::instances::table4;
//! use dts_core::{MemSize, TaskId, Time};
//!
//! let instance = table4(); // A..D with comm times 3, 1, 4, 5 and mem 3, 1, 4, 5
//! let mut index = CandidateIndex::new(&instance);
//! // Smallest communication time among tasks needing at most 4 bytes: B.
//! assert_eq!(index.min_comm_candidate(MemSize::from_bytes(4)), Some(TaskId(1)));
//! // Largest communication time <= 4 units among the same tasks: C.
//! let bound = Time::units_int(4);
//! assert_eq!(
//!     index.max_comm_candidate_within(MemSize::from_bytes(4), bound),
//!     Some(TaskId(2))
//! );
//! index.remove(TaskId(2));
//! assert_eq!(
//!     index.max_comm_candidate_within(MemSize::from_bytes(4), bound),
//!     Some(TaskId(0))
//! );
//! ```

use crate::instance::Instance;
use crate::memory::MemSize;
use crate::task::TaskId;
use crate::time::Time;

/// Aggregate of the ratio trees: the best `(acceleration ratio, id)` pair
/// of a set of tasks, where "best" is the largest ratio and ties prefer
/// the smallest id — exactly the MAMR/OOMAMR choice rule.
/// [`Time::ratio`] never produces NaN, so `f64` comparisons are total here.
type RatioBest = (f64, u32);

/// Neutral element of [`RatioBest`]: worse than every real task (real ratios
/// are non-negative) and losing every id tie.
const RATIO_NEUTRAL: RatioBest = (f64::NEG_INFINITY, u32::MAX);

/// `true` iff `a` is a strictly better MAMR choice than `b` (larger ratio,
/// or the same ratio with a smaller id).
#[inline]
fn key_beats(a: RatioBest, b: RatioBest) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

#[inline]
fn key_combine(a: RatioBest, b: RatioBest) -> RatioBest {
    if key_beats(b, a) {
        b
    } else {
        a
    }
}

/// Sentinel stored in the min-memory trees for removed tasks and padding
/// leaves. `u128` so that it compares above every real memory requirement,
/// including a legitimate `u64::MAX`-byte task.
const MEM_ABSENT: u128 = u128::MAX;

/// Smallest `r >= 1` with `r · r >= m`: the bucket width (in runs) that
/// balances the outer tree's leaf count against the boundary-bucket
/// resolution cost at √m each. O(√m) once per build.
fn isqrt_ceil(m: usize) -> usize {
    let mut r = 1usize;
    while r * r < m {
        r += 1;
    }
    r
}

/// Standard iterative prefix-maximum over a key segment tree with `size`
/// leaves (stored in `tree[size..2 size]`): the best key among the first
/// `k` leaves. Shared by the global memory-order tree and every per-run
/// and per-bucket tree.
fn prefix_best(tree: &[RatioBest], size: usize, k: usize) -> RatioBest {
    let mut best = RATIO_NEUTRAL;
    let (mut l, mut r) = (size, size + k);
    while l < r {
        if l & 1 == 1 {
            best = key_combine(best, tree[l]);
            l += 1;
        }
        if r & 1 == 1 {
            r -= 1;
            best = key_combine(best, tree[r]);
        }
        l >>= 1;
        r >>= 1;
    }
    best
}

/// An index over the not-yet-scheduled tasks of an instance, ordered by
/// `(communication time, id)` and searchable by memory threshold.
///
/// Construction is O(n) beyond its sorts; [`remove`](CandidateIndex::remove)
/// and [`restore`](CandidateIndex::restore) are O(log n); the
/// communication-time queries are O(log n) and the ratio query is
/// output-sensitive — see the [module documentation](self) for how the
/// queries map onto the paper's selection rules, and
/// [`best_ratio_candidate_within`](CandidateIndex::best_ratio_candidate_within)
/// for its exact bound.
///
/// Selection rules that never ask ratio queries — the
/// largest/smallest-communication criteria — should build the index with
/// [`comm_only`](CandidateIndex::comm_only), which skips the two ratio
/// trees and the per-task acceleration ratios entirely.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    /// Communication time at each position of the `(comm, id)` order
    /// (non-decreasing; includes removed tasks — positions are static).
    comm: Vec<Time>,
    /// Task id at each position.
    id_at: Vec<TaskId>,
    /// Memory requirement at each position.
    mem: Vec<u64>,
    /// Position of each task id.
    pos_of: Vec<u32>,
    /// Which positions still hold a task.
    present: Vec<bool>,
    /// Number of tasks still present.
    len: usize,
    /// Leaf offset of the min-memory and memory-order trees
    /// (`next_power_of_two` of the task count).
    base: usize,
    /// Min-memory segment tree over positions (`2 * base` slots).
    min_mem: Vec<u128>,
    /// Acceleration ratio at each position (empty for
    /// [`comm_only`](CandidateIndex::comm_only) indexes, like every other
    /// ratio-machinery field below); needed to rebuild a leaf's aggregate
    /// key on [`restore`](CandidateIndex::restore).
    ratio: Vec<f64>,
    /// Memory-order ratio tree, indexed like `min_mem`: leaf `r` holds the
    /// key of the task at rank `r` of the `(memory, position)` order.
    mem_tree: Vec<RatioBest>,
    /// Memory requirement at each rank of the `(memory, position)` order
    /// (non-decreasing; a free-memory threshold maps to a prefix of it).
    mem_sorted: Vec<u64>,
    /// Rank of each position in the `(memory, position)` order.
    mem_rank_of: Vec<u32>,
    /// Equal-communication-time run containing each position.
    block_of_pos: Vec<u32>,
    /// First position of each run (`m + 1` entries, last one `n`).
    block_start: Vec<u32>,
    /// Rank of each position within its run's `(memory, position)` order.
    rank_in_block: Vec<u32>,
    /// Per-run sorted memory requirements, concatenated; run `b` owns
    /// `block_start[b]..block_start[b + 1]`.
    block_mem_sorted: Vec<u64>,
    /// Per-run prefix-maximum trees over the per-run memory order,
    /// concatenated; run `b` (size `s`) owns the `2 s` slots starting at
    /// `2 * block_start[b]`, leaves in the upper half.
    block_keys: Vec<RatioBest>,
    /// Per-run min-memory trees with the same layout as `block_keys`.
    block_min_mem: Vec<u128>,
    /// Bucket containing each run: consecutive runs group into ⌈√m⌉-wide
    /// buckets so a memory-blocked query resolves in O(√m · log n) probes
    /// worst case instead of one probe per run.
    bucket_of_block: Vec<u32>,
    /// First run of each bucket (`g + 1` entries, last one `m`).
    bucket_start_block: Vec<u32>,
    /// Rank of each position within its bucket's `(memory, position)`
    /// order.
    rank_in_bucket: Vec<u32>,
    /// Per-bucket sorted memory requirements, concatenated; bucket `g`
    /// owns the positions of [`bucket_pos_range`](Self::bucket_pos_range).
    bucket_mem_sorted: Vec<u64>,
    /// Per-bucket prefix-maximum trees over the per-bucket memory order,
    /// laid out like `block_keys` (the buckets also partition the tasks,
    /// so these pack into exactly 2n slots); each root feeds the outer
    /// tree's key leaf.
    bucket_keys: Vec<RatioBest>,
    /// Per-bucket min-memory trees with the same layout as `bucket_keys`;
    /// each root feeds the outer tree's min-memory leaf.
    bucket_min_mem: Vec<u128>,
    /// Leaf offset of the outer trees (`next_power_of_two` of the bucket
    /// count).
    outer_base: usize,
    /// Outer champion tree over the buckets: each node stores the best
    /// present key of its bucket range (leaf `g` mirrors bucket `g`'s
    /// root).
    outer_keys: Vec<RatioBest>,
    /// Outer min-memory tree over the buckets, indexed like `outer_keys`.
    outer_min_mem: Vec<u128>,
}

impl CandidateIndex {
    /// Builds the full index over every task of `instance`, including the
    /// ratio trees behind
    /// [`best_ratio_candidate_within`](CandidateIndex::best_ratio_candidate_within).
    ///
    /// # Panics
    ///
    /// Panics if the instance has more than `u32::MAX` tasks (positions and
    /// ids are stored as `u32`; such an instance could not be scheduled in
    /// memory anyway).
    pub fn new(instance: &Instance) -> Self {
        Self::build(instance, true)
    }

    /// Builds the index without the ratio trees or the per-task
    /// acceleration ratios — for selection rules that only need the
    /// communication-time queries.
    ///
    /// # Panics
    ///
    /// Same construction limits as [`new`](CandidateIndex::new); in
    /// addition, calling
    /// [`best_ratio_candidate_within`](CandidateIndex::best_ratio_candidate_within)
    /// on the resulting index panics.
    pub fn comm_only(instance: &Instance) -> Self {
        Self::build(instance, false)
    }

    fn build(instance: &Instance, with_ratio_trees: bool) -> Self {
        let n = instance.len();
        assert!(
            u32::try_from(n).is_ok(),
            "CandidateIndex supports at most u32::MAX tasks"
        );
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| (instance.task(TaskId(i as usize)).comm_time, i));

        let mut comm = Vec::with_capacity(n);
        let mut id_at = Vec::with_capacity(n);
        let mut mem = Vec::with_capacity(n);
        let mut pos_of = vec![0u32; n];
        for (pos, &i) in order.iter().enumerate() {
            let task = instance.task(TaskId(i as usize));
            comm.push(task.comm_time);
            id_at.push(TaskId(i as usize));
            mem.push(task.mem.bytes());
            pos_of[i as usize] = pos as u32;
        }

        let base = n.next_power_of_two().max(1);
        let mut min_mem = vec![MEM_ABSENT; 2 * base];
        for (pos, &m) in mem.iter().enumerate() {
            min_mem[base + pos] = u128::from(m);
        }
        for i in (1..base).rev() {
            min_mem[i] = min_mem[2 * i].min(min_mem[2 * i + 1]);
        }

        let mut index = CandidateIndex {
            comm,
            id_at,
            mem,
            pos_of,
            present: vec![true; n],
            len: n,
            base,
            min_mem,
            ratio: Vec::new(),
            mem_tree: Vec::new(),
            mem_sorted: Vec::new(),
            mem_rank_of: Vec::new(),
            block_of_pos: Vec::new(),
            block_start: Vec::new(),
            rank_in_block: Vec::new(),
            block_mem_sorted: Vec::new(),
            block_keys: Vec::new(),
            block_min_mem: Vec::new(),
            bucket_of_block: Vec::new(),
            bucket_start_block: Vec::new(),
            rank_in_bucket: Vec::new(),
            bucket_mem_sorted: Vec::new(),
            bucket_keys: Vec::new(),
            bucket_min_mem: Vec::new(),
            outer_base: 0,
            outer_keys: Vec::new(),
            outer_min_mem: Vec::new(),
        };
        if with_ratio_trees {
            index.build_ratio_trees(instance);
        }
        index
    }

    /// Builds the ratio machinery: the per-position ratios, the
    /// memory-order tree, the per-run trees and the outer champion tree.
    /// O(n) beyond the `(memory, position)` sorts.
    fn build_ratio_trees(&mut self, instance: &Instance) {
        let n = self.comm.len();
        let base = self.base;
        self.ratio = self
            .id_at
            .iter()
            .map(|&id| instance.task(id).acceleration_ratio())
            .collect();
        let key_of =
            |pos: usize| -> RatioBest { (self.ratio[pos], self.id_at[pos].index() as u32) };

        // Memory-order tree: leaves follow the global (memory, position)
        // sort so a free-memory threshold is a canonical prefix.
        let mut by_mem: Vec<u32> = (0..n as u32).collect();
        by_mem.sort_unstable_by_key(|&pos| (self.mem[pos as usize], pos));
        self.mem_sorted = Vec::with_capacity(n);
        self.mem_rank_of = vec![0u32; n];
        self.mem_tree = vec![RATIO_NEUTRAL; 2 * base];
        for (rank, &pos) in by_mem.iter().enumerate() {
            self.mem_sorted.push(self.mem[pos as usize]);
            self.mem_rank_of[pos as usize] = rank as u32;
            self.mem_tree[base + rank] = key_of(pos as usize);
        }
        for i in (1..base).rev() {
            self.mem_tree[i] = key_combine(self.mem_tree[2 * i], self.mem_tree[2 * i + 1]);
        }

        // Equal-communication runs. The (comm, id) order makes them
        // contiguous, and every communication bound cuts at a run boundary.
        self.block_of_pos = vec![0u32; n];
        self.block_start = vec![0u32];
        for pos in 0..n {
            if pos > 0 && self.comm[pos] != self.comm[pos - 1] {
                self.block_start.push(pos as u32);
            }
            self.block_of_pos[pos] = (self.block_start.len() - 1) as u32;
        }
        self.block_start.push(n as u32);
        let m = self.block_start.len() - 1;

        // Per-run memory-sorted prefix-maximum trees, flat: run `b` of
        // size `s` owns slots `2 * block_start[b] ..` (2s of them, leaves
        // in the upper half) — the runs partition the tasks, so the trees
        // pack into exactly 2n slots.
        self.rank_in_block = vec![0u32; n];
        self.block_mem_sorted = vec![0u64; n];
        self.block_keys = vec![RATIO_NEUTRAL; 2 * n];
        self.block_min_mem = vec![MEM_ABSENT; 2 * n];
        for b in 0..m {
            let (start, end) = (
                self.block_start[b] as usize,
                self.block_start[b + 1] as usize,
            );
            let s = end - start;
            let mut run: Vec<u32> = (start as u32..end as u32).collect();
            run.sort_unstable_by_key(|&pos| (self.mem[pos as usize], pos));
            let off = 2 * start;
            for (r, &pos) in run.iter().enumerate() {
                self.rank_in_block[pos as usize] = r as u32;
                self.block_mem_sorted[start + r] = self.mem[pos as usize];
                self.block_keys[off + s + r] = key_of(pos as usize);
                self.block_min_mem[off + s + r] = u128::from(self.mem[pos as usize]);
            }
            for i in (1..s).rev() {
                self.block_keys[off + i] = key_combine(
                    self.block_keys[off + 2 * i],
                    self.block_keys[off + 2 * i + 1],
                );
                self.block_min_mem[off + i] =
                    self.block_min_mem[off + 2 * i].min(self.block_min_mem[off + 2 * i + 1]);
            }
        }

        // ⌈√m⌉-wide buckets of consecutive runs. Communication bounds cut
        // at run boundaries, so a query covers at most two buckets
        // partially; everything between is whole buckets for the outer
        // tree.
        let runs_per_bucket = isqrt_ceil(m);
        self.bucket_of_block = vec![0u32; m];
        self.bucket_start_block = Vec::with_capacity(m / runs_per_bucket + 2);
        for b in 0..m {
            if b % runs_per_bucket == 0 {
                self.bucket_start_block.push(b as u32);
            }
            self.bucket_of_block[b] = (self.bucket_start_block.len() - 1) as u32;
        }
        self.bucket_start_block.push(m as u32);
        let g_count = self.bucket_start_block.len() - 1;

        // Per-bucket memory-sorted prefix-maximum trees, flat like the
        // per-run ones: bucket `g` of `s` positions owns 2s slots starting
        // at twice its first position — the buckets partition the tasks,
        // so the trees pack into exactly 2n slots again.
        self.rank_in_bucket = vec![0u32; n];
        self.bucket_mem_sorted = vec![0u64; n];
        self.bucket_keys = vec![RATIO_NEUTRAL; 2 * n];
        self.bucket_min_mem = vec![MEM_ABSENT; 2 * n];
        for g in 0..g_count {
            let (start, end) = self.bucket_pos_range(g);
            let s = end - start;
            let mut span: Vec<u32> = (start as u32..end as u32).collect();
            span.sort_unstable_by_key(|&pos| (self.mem[pos as usize], pos));
            let off = 2 * start;
            for (r, &pos) in span.iter().enumerate() {
                self.rank_in_bucket[pos as usize] = r as u32;
                self.bucket_mem_sorted[start + r] = self.mem[pos as usize];
                self.bucket_keys[off + s + r] = key_of(pos as usize);
                self.bucket_min_mem[off + s + r] = u128::from(self.mem[pos as usize]);
            }
            for i in (1..s).rev() {
                self.bucket_keys[off + i] = key_combine(
                    self.bucket_keys[off + 2 * i],
                    self.bucket_keys[off + 2 * i + 1],
                );
                self.bucket_min_mem[off + i] =
                    self.bucket_min_mem[off + 2 * i].min(self.bucket_min_mem[off + 2 * i + 1]);
            }
        }

        // Outer trees over the buckets; leaf `g` mirrors bucket `g`'s root.
        self.outer_base = g_count.next_power_of_two().max(1);
        self.outer_keys = vec![RATIO_NEUTRAL; 2 * self.outer_base];
        self.outer_min_mem = vec![MEM_ABSENT; 2 * self.outer_base];
        for g in 0..g_count {
            self.outer_keys[self.outer_base + g] = self.bucket_root_key(g);
            self.outer_min_mem[self.outer_base + g] = self.bucket_root_min_mem(g);
        }
        for i in (1..self.outer_base).rev() {
            self.outer_keys[i] = key_combine(self.outer_keys[2 * i], self.outer_keys[2 * i + 1]);
            self.outer_min_mem[i] = self.outer_min_mem[2 * i].min(self.outer_min_mem[2 * i + 1]);
        }
    }

    /// Root aggregate of run `b`'s key tree (its best present key). Local
    /// index 1 is the root for every run size — a size-1 run stores its
    /// single leaf there.
    #[inline]
    fn block_root_key(&self, b: usize) -> RatioBest {
        self.block_keys[2 * self.block_start[b] as usize + 1]
    }

    /// Root aggregate of run `b`'s min-memory tree.
    #[inline]
    fn block_root_min_mem(&self, b: usize) -> u128 {
        self.block_min_mem[2 * self.block_start[b] as usize + 1]
    }

    /// The position range `[start, end)` bucket `g` covers.
    #[inline]
    fn bucket_pos_range(&self, g: usize) -> (usize, usize) {
        (
            self.block_start[self.bucket_start_block[g] as usize] as usize,
            self.block_start[self.bucket_start_block[g + 1] as usize] as usize,
        )
    }

    /// Root aggregate of bucket `g`'s key tree (its best present key).
    #[inline]
    fn bucket_root_key(&self, g: usize) -> RatioBest {
        self.bucket_keys[2 * self.bucket_pos_range(g).0 + 1]
    }

    /// Root aggregate of bucket `g`'s min-memory tree.
    #[inline]
    fn bucket_root_min_mem(&self, g: usize) -> u128 {
        self.bucket_min_mem[2 * self.bucket_pos_range(g).0 + 1]
    }

    /// Number of tasks still present.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff every task has been removed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` iff `id` has not been removed yet.
    #[inline]
    pub fn contains(&self, id: TaskId) -> bool {
        self.present[self.pos_of[id.index()] as usize]
    }

    /// Removes a task from the index (it has been scheduled). O(log n).
    ///
    /// # Panics
    ///
    /// Panics if the task was already removed.
    pub fn remove(&mut self, id: TaskId) {
        let pos = self.pos_of[id.index()] as usize;
        assert!(self.present[pos], "task {id} removed twice");
        self.present[pos] = false;
        self.len -= 1;
        self.write_leaf(pos, MEM_ABSENT, RATIO_NEUTRAL);
    }

    /// Puts a previously [`remove`](CandidateIndex::remove)d task back into
    /// the index — the inverse operation, used when a speculative scheduling
    /// decision is rolled back. O(log n), like removal.
    ///
    /// # Panics
    ///
    /// Panics if the task is still present.
    pub fn restore(&mut self, id: TaskId) {
        let pos = self.pos_of[id.index()] as usize;
        assert!(!self.present[pos], "task {id} restored while present");
        self.present[pos] = true;
        self.len += 1;
        let key = (
            self.ratio.get(pos).copied().unwrap_or(f64::NEG_INFINITY),
            self.id_at[pos].index() as u32,
        );
        self.write_leaf(pos, u128::from(self.mem[pos]), key);
    }

    /// Writes a position's leaf values — the memory sentinel/value and the
    /// ratio key — and re-aggregates every tree along the root paths. The
    /// single update ladder behind both [`remove`](CandidateIndex::remove)
    /// and [`restore`](CandidateIndex::restore). `key` is ignored for
    /// [`comm_only`](CandidateIndex::comm_only) indexes.
    fn write_leaf(&mut self, pos: usize, mem_leaf: u128, key: RatioBest) {
        let mut i = self.base + pos;
        self.min_mem[i] = mem_leaf;
        while i > 1 {
            i >>= 1;
            self.min_mem[i] = self.min_mem[2 * i].min(self.min_mem[2 * i + 1]);
        }
        if self.mem_tree.is_empty() {
            return;
        }

        // Memory-order tree.
        let mut i = self.base + self.mem_rank_of[pos] as usize;
        self.mem_tree[i] = key;
        while i > 1 {
            i >>= 1;
            self.mem_tree[i] = key_combine(self.mem_tree[2 * i], self.mem_tree[2 * i + 1]);
        }

        // The position's run, then its bucket, then the outer trees above.
        let b = self.block_of_pos[pos] as usize;
        let start = self.block_start[b] as usize;
        let s = self.block_start[b + 1] as usize - start;
        let off = 2 * start;
        let mut i = s + self.rank_in_block[pos] as usize;
        self.block_keys[off + i] = key;
        self.block_min_mem[off + i] = mem_leaf;
        while i > 1 {
            i >>= 1;
            self.block_keys[off + i] = key_combine(
                self.block_keys[off + 2 * i],
                self.block_keys[off + 2 * i + 1],
            );
            self.block_min_mem[off + i] =
                self.block_min_mem[off + 2 * i].min(self.block_min_mem[off + 2 * i + 1]);
        }
        let g = self.bucket_of_block[b] as usize;
        let (gstart, gend) = self.bucket_pos_range(g);
        let s = gend - gstart;
        let off = 2 * gstart;
        let mut i = s + self.rank_in_bucket[pos] as usize;
        self.bucket_keys[off + i] = key;
        self.bucket_min_mem[off + i] = mem_leaf;
        while i > 1 {
            i >>= 1;
            self.bucket_keys[off + i] = key_combine(
                self.bucket_keys[off + 2 * i],
                self.bucket_keys[off + 2 * i + 1],
            );
            self.bucket_min_mem[off + i] =
                self.bucket_min_mem[off + 2 * i].min(self.bucket_min_mem[off + 2 * i + 1]);
        }
        let mut i = self.outer_base + g;
        self.outer_keys[i] = self.bucket_root_key(g);
        self.outer_min_mem[i] = self.bucket_root_min_mem(g);
        while i > 1 {
            i >>= 1;
            self.outer_keys[i] = key_combine(self.outer_keys[2 * i], self.outer_keys[2 * i + 1]);
            self.outer_min_mem[i] = self.outer_min_mem[2 * i].min(self.outer_min_mem[2 * i + 1]);
        }
    }

    /// The present task with the smallest `(communication time, id)` among
    /// those whose memory requirement is at most `free` — the SCMR choice,
    /// and the probe every selection starts from (it determines whether any
    /// task fits at all and what the minimum induced CPU idle time is).
    pub fn min_comm_candidate(&self, free: MemSize) -> Option<TaskId> {
        let limit = u128::from(free.bytes());
        if self.min_mem[1] > limit {
            return None;
        }
        let mut i = 1;
        while i < self.base {
            i = if self.min_mem[2 * i] <= limit {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(self.id_at[i - self.base])
    }

    /// Among present tasks with memory requirement at most `free` and
    /// communication time at most `comm_bound`, the one with the largest
    /// communication time, ties broken by smallest id — the LCMR choice when
    /// some fitting task induces no CPU idle time.
    pub fn max_comm_candidate_within(&self, free: MemSize, comm_bound: Time) -> Option<TaskId> {
        let limit = u128::from(free.bytes());
        let hi = self.comm.partition_point(|&c| c <= comm_bound);
        let pos = self.rightmost_fitting(hi, limit)?;
        // `pos` has the maximum communication time, but among equal
        // communication times the rightmost position is the largest id; the
        // chosen task is the leftmost fitting one of the equal-comm block.
        let c = self.comm[pos];
        let lo_block = self.comm.partition_point(|&x| x < c);
        // The block contains at least the fitting task just found at
        // `pos`, so falling back to `pos` is correct even if the scan
        // were ever to miss.
        let leftmost = self
            .leftmost_fitting(lo_block, pos + 1, limit)
            .unwrap_or(pos);
        Some(self.id_at[leftmost])
    }

    /// Among present tasks with memory requirement at most `free` and
    /// communication time at most `comm_bound`, the one with the largest
    /// acceleration ratio, ties broken by smallest id — the MAMR choice.
    /// When no fitting task avoids CPU idle time, calling this with
    /// `comm_bound` equal to the minimum fitting communication time restricts
    /// the query to exactly the minimum-idle candidates (though
    /// [`best_ratio_candidate_at`](CandidateIndex::best_ratio_candidate_at)
    /// states that case more directly).
    ///
    /// The query runs in two stages. First, a prefix-maximum probe of the
    /// memory-order ratio tree yields the best-ratio fitting task with the
    /// communication bound ignored — whenever that winner also satisfies
    /// the bound (every decision where the processing-unit backlog covers
    /// the candidates' communication times), it dominates the constrained
    /// set and is returned after two O(log n) probes. Otherwise the range
    /// of equal-communication runs under the bound — whole ⌈√m⌉-run
    /// buckets plus at most two partially covered boundary buckets — is
    /// searched champion-first: a champion that fits is taken without
    /// descending, a subtree with no fitting present task is skipped
    /// (outer min-memory pruning), a bucket whose champion is
    /// memory-blocked resolves exactly via its own prefix-maximum tree,
    /// and the boundary buckets resolve their covered runs one at a time
    /// the same way. Worst case that is O(√m · log n) with `m` the number
    /// of distinct communication times — bounded even on
    /// continuous-communication traces under memory pressure, where the
    /// previous run-granular search paid one probe per distinct
    /// communication time and degenerated to a linear scan.
    ///
    /// # Panics
    ///
    /// Panics if the index was built with
    /// [`comm_only`](CandidateIndex::comm_only).
    pub fn best_ratio_candidate_within(&self, free: MemSize, comm_bound: Time) -> Option<TaskId> {
        let hi = self.comm.partition_point(|&c| c <= comm_bound);
        self.best_ratio_in_range(free, 0, hi)
    }

    /// Among present tasks with memory requirement at most `free` and
    /// communication time *exactly* `comm`, the one with the largest
    /// acceleration ratio, ties broken by smallest id.
    ///
    /// This is the MAMR choice when every fitting task induces CPU idle
    /// time: the candidates are then the fitting tasks whose communication
    /// time equals the minimum fitting communication time, and restricting
    /// the query to that single equal-communication run keeps the
    /// high-ratio *shorter*-communication tasks — which can never be
    /// candidates, since they do not fit — out of the search entirely.
    /// Same staging and complexity as
    /// [`best_ratio_candidate_within`](CandidateIndex::best_ratio_candidate_within).
    ///
    /// # Panics
    ///
    /// Panics if the index was built with
    /// [`comm_only`](CandidateIndex::comm_only).
    pub fn best_ratio_candidate_at(&self, free: MemSize, comm: Time) -> Option<TaskId> {
        let lo = self.comm.partition_point(|&c| c < comm);
        let hi = self.comm.partition_point(|&c| c <= comm);
        self.best_ratio_in_range(free, lo, hi)
    }

    /// The two-stage ratio query over the position range `[lo, hi)`, which
    /// is always aligned to equal-communication run boundaries.
    fn best_ratio_in_range(&self, free: MemSize, lo: usize, hi: usize) -> Option<TaskId> {
        assert!(
            !self.mem_tree.is_empty(),
            "ratio query on an index built with CandidateIndex::comm_only"
        );
        if lo >= hi {
            return None;
        }
        let free = free.bytes();
        // Stage 1: the best fitting task regardless of communication time.
        // If it lands in the queried range it dominates the whole query
        // set; if nothing fits at all, the constrained set is empty too.
        let k = self.mem_sorted.partition_point(|&m| m <= free);
        let unconstrained = self.mem_prefix_best(k);
        if unconstrained == RATIO_NEUTRAL {
            return None;
        }
        let winner_pos = self.pos_of[unconstrained.1 as usize] as usize;
        if (lo..hi).contains(&winner_pos) {
            return Some(TaskId(unconstrained.1 as usize));
        }
        // Stage 2: the winner lies outside the range; search the runs of
        // the range. The range is run-aligned, so it decomposes into a
        // (possibly empty) span of whole buckets plus at most two
        // partially covered boundary buckets. The whole buckets go
        // champion-first through the outer tree (canonical decomposition
        // below: at most one node per side per level, so the fixed stack
        // suffices, cf. `directed_search`); the boundary buckets resolve
        // their at most ⌈√m⌉ covered runs each one run at a time.
        let limit = u128::from(free);
        let blo = self.block_of_pos[lo] as usize;
        let bhi = self.block_of_pos[hi - 1] as usize + 1;
        let glo = self.bucket_of_block[blo] as usize;
        let ghi = self.bucket_of_block[bhi - 1] as usize;
        let gfull_lo = if blo == self.bucket_start_block[glo] as usize {
            glo
        } else {
            glo + 1
        };
        let gfull_hi = if bhi == self.bucket_start_block[ghi + 1] as usize {
            ghi + 1
        } else {
            ghi
        };
        let mut best = RATIO_NEUTRAL;
        if gfull_lo < gfull_hi {
            let mut nodes = [0usize; 64];
            let mut n_nodes = 0;
            let (mut l, mut r) = (self.outer_base + gfull_lo, self.outer_base + gfull_hi);
            while l < r {
                if l & 1 == 1 {
                    nodes[n_nodes] = l;
                    n_nodes += 1;
                    l += 1;
                }
                if r & 1 == 1 {
                    r -= 1;
                    nodes[n_nodes] = r;
                    n_nodes += 1;
                }
                l >>= 1;
                r >>= 1;
            }
            for &node in &nodes[..n_nodes] {
                self.outer_search(node, limit, free, &mut best);
            }
        }
        for g in [glo, ghi] {
            if g >= gfull_lo && g < gfull_hi {
                // Fully covered: the outer search above handled it.
                continue;
            }
            let run_lo = blo.max(self.bucket_start_block[g] as usize);
            let run_hi = bhi.min(self.bucket_start_block[g + 1] as usize);
            for b in run_lo..run_hi {
                self.run_search(b, limit, free, &mut best);
            }
            if glo == ghi {
                break;
            }
        }
        (best != RATIO_NEUTRAL).then_some(TaskId(best.1 as usize))
    }

    /// Champion-first search of one outer subtree, tightening `best` in
    /// place: skips subtrees with no fitting present task or whose champion
    /// cannot out-rank `best`, accepts a fitting champion without
    /// descending, and resolves a memory-blocked bucket exactly via the
    /// bucket's prefix-maximum tree.
    fn outer_search(&self, node: usize, limit: u128, free: u64, best: &mut RatioBest) {
        // No present task of the subtree fits in the free memory…
        if self.outer_min_mem[node] > limit {
            return;
        }
        let champ = self.outer_keys[node];
        // …or even its best-ranked task would lose to the current best.
        if !key_beats(champ, *best) {
            return;
        }
        if self.mem[self.pos_of[champ.1 as usize] as usize] <= free {
            // The champion fits and dominates its whole subtree.
            *best = champ;
            return;
        }
        if node >= self.outer_base {
            // A bucket whose champion is memory-blocked: resolve it
            // exactly.
            let key = self.bucket_best(node - self.outer_base, free);
            if key_beats(key, *best) {
                *best = key;
            }
            return;
        }
        let (a, b) = (2 * node, 2 * node + 1);
        // Search the better-ranked child first so the second is usually
        // pruned by the tightened `best`.
        let (first, second) = if key_beats(self.outer_keys[b], self.outer_keys[a]) {
            (b, a)
        } else {
            (a, b)
        };
        self.outer_search(first, limit, free, best);
        self.outer_search(second, limit, free, best);
    }

    /// Champion check of one equal-communication run, tightening `best` in
    /// place — the boundary-bucket counterpart of
    /// [`outer_search`](Self::outer_search)'s leaf case: skip a run with
    /// no fitting present task or an out-ranked champion, take a fitting
    /// champion outright, resolve a memory-blocked one exactly via the
    /// run's prefix-maximum tree.
    fn run_search(&self, b: usize, limit: u128, free: u64, best: &mut RatioBest) {
        if self.block_root_min_mem(b) > limit {
            return;
        }
        let champ = self.block_root_key(b);
        if !key_beats(champ, *best) {
            return;
        }
        if self.mem[self.pos_of[champ.1 as usize] as usize] <= free {
            *best = champ;
            return;
        }
        let key = self.block_best(b, free);
        if key_beats(key, *best) {
            *best = key;
        }
    }

    /// Best present key among the tasks of run `b` with memory requirement
    /// at most `free`: a prefix-maximum over the run's memory-sorted
    /// leaves. O(log of the run size), worst case — the memory threshold
    /// is a canonical prefix of the run's leaf order.
    fn block_best(&self, b: usize, free: u64) -> RatioBest {
        let start = self.block_start[b] as usize;
        let s = self.block_start[b + 1] as usize - start;
        let k = self.block_mem_sorted[start..start + s].partition_point(|&m| m <= free);
        prefix_best(&self.block_keys[2 * start..], s, k)
    }

    /// Best present key among the tasks of bucket `g` with memory
    /// requirement at most `free`: a prefix-maximum over the bucket's
    /// memory-sorted leaves. O(log of the bucket size), worst case.
    fn bucket_best(&self, g: usize, free: u64) -> RatioBest {
        let (start, end) = self.bucket_pos_range(g);
        let s = end - start;
        let k = self.bucket_mem_sorted[start..end].partition_point(|&m| m <= free);
        prefix_best(&self.bucket_keys[2 * start..], s, k)
    }

    /// Best present key among the first `k` ranks of the global
    /// `(memory, position)` order — the fitting tasks under a memory
    /// threshold, communication bound ignored.
    fn mem_prefix_best(&self, k: usize) -> RatioBest {
        prefix_best(&self.mem_tree, self.base, k)
    }

    /// Leftmost position in `[lo, hi)` whose present task needs at most
    /// `limit` bytes.
    fn leftmost_fitting(&self, lo: usize, hi: usize, limit: u128) -> Option<usize> {
        self.directed_search(lo, hi, limit, false)
    }

    /// Rightmost position in `[0, hi)` whose present task needs at most
    /// `limit` bytes.
    fn rightmost_fitting(&self, hi: usize, limit: u128) -> Option<usize> {
        self.directed_search(0, hi, limit, true)
    }

    /// Finds the extremal fitting position of `[lo, hi)`: decomposes the
    /// range into O(log n) tree nodes, takes the first (in the requested
    /// direction) containing a fitting task, and descends into it. The
    /// decomposition pushes at most one node per side per tree level, so
    /// fixed 64-entry stacks hold it without touching the heap — this runs
    /// up to twice per scheduling decision.
    fn directed_search(&self, lo: usize, hi: usize, limit: u128, rightmost: bool) -> Option<usize> {
        let mut left_nodes = [0usize; 64];
        let mut n_left = 0;
        let mut right_nodes = [0usize; 64];
        let mut n_right = 0;
        let (mut l, mut r) = (self.base + lo, self.base + hi);
        while l < r {
            if l & 1 == 1 {
                left_nodes[n_left] = l;
                n_left += 1;
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                right_nodes[n_right] = r;
                n_right += 1;
            }
            l >>= 1;
            r >>= 1;
        }
        // `left_nodes` followed by reversed `right_nodes` is the in-order
        // decomposition; scan it from the requested end (`right_nodes` is
        // pushed deepest-first, i.e. already rightmost-first).
        let pick = if rightmost {
            right_nodes[..n_right]
                .iter()
                .chain(left_nodes[..n_left].iter().rev())
                .copied()
                .find(|&i| self.min_mem[i] <= limit)
        } else {
            left_nodes[..n_left]
                .iter()
                .chain(right_nodes[..n_right].iter().rev())
                .copied()
                .find(|&i| self.min_mem[i] <= limit)
        };
        let mut i = pick?;
        while i < self.base {
            let (first, second) = if rightmost {
                (2 * i + 1, 2 * i)
            } else {
                (2 * i, 2 * i + 1)
            };
            i = if self.min_mem[first] <= limit {
                first
            } else {
                second
            };
        }
        Some(i - self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::table4;

    #[test]
    fn queries_match_manual_expectations_on_table4() {
        // Table 4: A (comm 3, mem 3), B (comm 1, mem 1), C (comm 4, mem 4),
        // D (comm 5, mem 5); capacity 6.
        let inst = table4();
        let mut index = CandidateIndex::new(&inst);
        assert_eq!(index.len(), 4);
        assert!(!index.is_empty());

        // Everything fits under 6 free bytes; B has the smallest comm.
        let all = MemSize::from_bytes(6);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(1)));
        // Largest comm <= 4: C. Largest comm <= 10: D.
        assert_eq!(
            index.max_comm_candidate_within(all, Time::units_int(4)),
            Some(TaskId(2))
        );
        assert_eq!(
            index.max_comm_candidate_within(all, Time::units_int(10)),
            Some(TaskId(3))
        );
        // Best ratio (comp/comm: A 2/3, B 6, C 3/2, D 1/5) under bound 5: B.
        assert_eq!(
            index.best_ratio_candidate_within(all, Time::units_int(5)),
            Some(TaskId(1))
        );
        // Exactly comm 4: C. Exactly comm 2: no such task.
        assert_eq!(
            index.best_ratio_candidate_at(all, Time::units_int(4)),
            Some(TaskId(2))
        );
        assert_eq!(index.best_ratio_candidate_at(all, Time::units_int(2)), None);

        // With only one free byte, only B fits.
        let one = MemSize::from_bytes(1);
        assert_eq!(index.min_comm_candidate(one), Some(TaskId(1)));
        assert_eq!(
            index.max_comm_candidate_within(one, Time::units_int(10)),
            Some(TaskId(1))
        );
        assert_eq!(index.min_comm_candidate(MemSize::ZERO), None);

        // Removing B promotes A to the smallest-comm fitting task.
        index.remove(TaskId(1));
        assert!(!index.contains(TaskId(1)));
        assert!(index.contains(TaskId(0)));
        assert_eq!(index.len(), 3);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(0)));
        assert_eq!(
            index.best_ratio_candidate_within(all, Time::units_int(5)),
            Some(TaskId(2))
        );
        assert_eq!(index.min_comm_candidate(one), None);

        for id in [TaskId(0), TaskId(2), TaskId(3)] {
            index.remove(id);
        }
        assert!(index.is_empty());
        assert_eq!(index.min_comm_candidate(all), None);
        assert_eq!(
            index.max_comm_candidate_within(all, Time::units_int(10)),
            None
        );
        assert_eq!(
            index.best_ratio_candidate_within(all, Time::units_int(10)),
            None
        );
    }

    #[test]
    fn restore_undoes_removal_for_every_query() {
        let inst = table4();
        let mut index = CandidateIndex::new(&inst);
        let all = MemSize::from_bytes(6);
        let bound = Time::units_int(5);

        index.remove(TaskId(1));
        index.remove(TaskId(2));
        assert_eq!(index.len(), 2);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(0)));

        // Restoring B re-establishes the original answers.
        index.restore(TaskId(1));
        assert!(index.contains(TaskId(1)));
        assert_eq!(index.len(), 3);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(1)));
        assert_eq!(
            index.best_ratio_candidate_within(all, bound),
            Some(TaskId(1))
        );

        index.restore(TaskId(2));
        assert_eq!(
            index.max_comm_candidate_within(all, Time::units_int(4)),
            Some(TaskId(2))
        );
    }

    #[test]
    #[should_panic(expected = "restored while present")]
    fn restoring_a_present_task_panics() {
        let inst = table4();
        let mut index = CandidateIndex::new(&inst);
        index.restore(TaskId(0));
    }

    #[test]
    #[should_panic(expected = "removed twice")]
    fn double_removal_panics() {
        let inst = table4();
        let mut index = CandidateIndex::new(&inst);
        index.remove(TaskId(2));
        index.remove(TaskId(2));
    }

    #[test]
    fn blocked_champions_resolve_to_the_best_fitting_task() {
        // Ratios strictly decrease with id while memory alternates
        // huge/small, so under a small memory threshold the champion of
        // every run is blocked and the query must resolve runs exactly
        // instead of trusting their champions.
        let mut builder = crate::instance::InstanceBuilder::new().capacity(MemSize::from_bytes(50));
        for i in 0..9u64 {
            let mem = if i % 2 == 0 { 50 } else { 1 };
            // Alternate two communication times so several runs exist.
            builder = builder.task_units(
                &format!("t{i}"),
                (2 + (i % 2)) as f64,
                (36 - 2 * i) as f64,
                mem,
            );
        }
        let mut index = CandidateIndex::new(&builder.build().unwrap());
        let bound = Time::units_int(3);
        // Everything fits: the global champion (t0) wins outright.
        assert_eq!(
            index.best_ratio_candidate_within(MemSize::from_bytes(50), bound),
            Some(TaskId(0))
        );
        // Only the odd ids fit one byte; the best of those is t1.
        let one = MemSize::from_bytes(1);
        assert_eq!(
            index.best_ratio_candidate_within(one, bound),
            Some(TaskId(1))
        );
        // Restricting to comm == 3 (the odd ids' run) keeps t1 on top;
        // comm == 2 holds no fitting task at all.
        assert_eq!(
            index.best_ratio_candidate_at(one, Time::units_int(3)),
            Some(TaskId(1))
        );
        assert_eq!(index.best_ratio_candidate_at(one, Time::units_int(2)), None);
        // Removing t1 hands the query to the next fitting task down.
        index.remove(TaskId(1));
        assert_eq!(
            index.best_ratio_candidate_within(one, bound),
            Some(TaskId(3))
        );
        index.restore(TaskId(1));
        assert_eq!(
            index.best_ratio_candidate_within(one, bound),
            Some(TaskId(1))
        );
    }

    #[test]
    fn continuous_comm_with_blocked_champions_agrees_with_a_scan() {
        // The bucketed-search regression domain: every communication time
        // is distinct (one run per task, so runs ≈ buckets² and every
        // query crosses bucket boundaries), ratios strictly decrease with
        // id, and memory alternates huge/tiny — under a tiny threshold
        // every champion on the way down is blocked. Each bound is checked
        // against a naive scan so partially covered boundary buckets,
        // whole-bucket outer searches and exact bucket resolutions all
        // agree, before and after removals.
        let n = 40u64;
        let mut builder =
            crate::instance::InstanceBuilder::new().capacity(MemSize::from_bytes(500));
        for i in 0..n {
            let mem = if i % 2 == 0 { 500 } else { 1 };
            // ratio = comp/comm = n - i, strictly decreasing in id.
            builder = builder.task_units(
                &format!("t{i}"),
                (i + 1) as f64,
                ((i + 1) * (n - i)) as f64,
                mem,
            );
        }
        let instance = builder.build().unwrap();
        let mut index = CandidateIndex::new(&instance);
        let naive = |index: &CandidateIndex, free: u64, bound: u64| -> Option<TaskId> {
            (0..n as usize)
                .filter(|&i| index.contains(TaskId(i)))
                .map(|i| (i, instance.task(TaskId(i))))
                .filter(|(_, t)| {
                    t.mem <= MemSize::from_bytes(free) && t.comm_time <= Time::units_int(bound)
                })
                .min_by(|(a_id, a), (b_id, b)| {
                    b.acceleration_ratio()
                        .partial_cmp(&a.acceleration_ratio())
                        .expect("ratios are never NaN")
                        .then(a_id.cmp(b_id))
                })
                .map(|(i, _)| TaskId(i))
        };
        for round in 0..3 {
            for bound in 0..=n + 1 {
                for free in [0, 1, 500] {
                    assert_eq!(
                        index.best_ratio_candidate_within(
                            MemSize::from_bytes(free),
                            Time::units_int(bound)
                        ),
                        naive(&index, free, bound),
                        "round {round} free {free} bound {bound}"
                    );
                }
            }
            // Knock out the heads of the tiny-memory chain between rounds.
            index.remove(TaskId(2 * round + 1));
        }
    }

    #[test]
    fn ties_prefer_the_smallest_id() {
        // Three tasks with identical comm times and ratios: every query must
        // resolve ties toward the smallest id among those that fit.
        let inst = crate::instance::InstanceBuilder::new()
            .capacity(MemSize::from_bytes(10))
            .task_units("t0", 2.0, 4.0, 8)
            .task_units("t1", 2.0, 4.0, 2)
            .task_units("t2", 2.0, 4.0, 2)
            .build()
            .unwrap();
        let index = CandidateIndex::new(&inst);
        let bound = Time::units_int(2);
        let all = MemSize::from_bytes(10);
        assert_eq!(index.min_comm_candidate(all), Some(TaskId(0)));
        assert_eq!(index.max_comm_candidate_within(all, bound), Some(TaskId(0)));
        assert_eq!(
            index.best_ratio_candidate_within(all, bound),
            Some(TaskId(0))
        );
        // Exclude t0 by memory: the tie now resolves to t1.
        let small = MemSize::from_bytes(2);
        assert_eq!(index.min_comm_candidate(small), Some(TaskId(1)));
        assert_eq!(
            index.max_comm_candidate_within(small, bound),
            Some(TaskId(1))
        );
        assert_eq!(
            index.best_ratio_candidate_within(small, bound),
            Some(TaskId(1))
        );
        assert_eq!(index.best_ratio_candidate_at(small, bound), Some(TaskId(1)));
    }
}
