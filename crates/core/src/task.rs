//! Tasks of the data-transfer problem.

use crate::memory::MemSize;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task inside its [`Instance`](crate::instance::Instance).
///
/// Task ids are dense indices (`0..n`), which lets schedules and solvers use
/// plain vectors instead of hash maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The underlying index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Classification of a task following the paper: a task is *compute
/// intensive* if its computation time is at least its communication time,
/// and *communication intensive* otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskIntensity {
    /// `CP >= CM`.
    ComputeIntensive,
    /// `CP < CM`.
    CommunicationIntensive,
}

impl fmt::Display for TaskIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskIntensity::ComputeIntensive => write!(f, "compute-intensive"),
            TaskIntensity::CommunicationIntensive => write!(f, "communication-intensive"),
        }
    }
}

/// One independent task of problem `DT`.
///
/// A task first occupies the communication link for `comm_time` (its input
/// transfer from the remote memory node), then the processing unit for
/// `comp_time`. It holds `mem` bytes of the local memory from the start of
/// its communication until the end of its computation. Output data is not
/// modelled (the paper assumes it is negligible or stored in a preallocated
/// buffer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable name (task label in the paper's tables, or the kernel
    /// name in generated traces).
    pub name: String,
    /// Input-data transfer time `CM_i`.
    pub comm_time: Time,
    /// Computation time `CP_i`.
    pub comp_time: Time,
    /// Memory required to hold the input data, `MC(i)`.
    pub mem: MemSize,
}

impl Task {
    /// Creates a task from raw quantities.
    pub fn new(name: impl Into<String>, comm_time: Time, comp_time: Time, mem: MemSize) -> Self {
        Task {
            name: name.into(),
            comm_time,
            comp_time,
            mem,
        }
    }

    /// Creates a task using the paper's example convention: times are given
    /// in abstract units and the memory requirement (in bytes) equals the
    /// communication volume.
    pub fn from_units(name: impl Into<String>, comm: f64, comp: f64, mem_bytes: u64) -> Self {
        Task {
            name: name.into(),
            comm_time: Time::units(comm),
            comp_time: Time::units(comp),
            mem: MemSize::from_bytes(mem_bytes),
        }
    }

    /// Intensity classification (`CP >= CM` ⇒ compute intensive).
    #[inline]
    pub fn intensity(&self) -> TaskIntensity {
        if self.comp_time >= self.comm_time {
            TaskIntensity::ComputeIntensive
        } else {
            TaskIntensity::CommunicationIntensive
        }
    }

    /// `true` iff the task is compute intensive.
    #[inline]
    pub fn is_compute_intensive(&self) -> bool {
        self.intensity() == TaskIntensity::ComputeIntensive
    }

    /// Acceleration ratio `CP / CM`, used by the MAMR/OOMAMR heuristics.
    /// Follows the conventions of [`Time::ratio`].
    #[inline]
    pub fn acceleration_ratio(&self) -> f64 {
        self.comp_time.ratio(self.comm_time)
    }

    /// Sum of communication and computation time (IOCCS/DOCCS sort key).
    #[inline]
    pub fn total_time(&self) -> Time {
        self.comm_time + self.comp_time
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (comm {}, comp {}, mem {})",
            self.name, self.comm_time, self.comp_time, self.mem
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_classification() {
        let compute = Task::from_units("B", 1.0, 3.0, 1);
        let comm = Task::from_units("A", 3.0, 2.0, 3);
        let balanced = Task::from_units("C", 4.0, 4.0, 4);
        assert_eq!(compute.intensity(), TaskIntensity::ComputeIntensive);
        assert_eq!(comm.intensity(), TaskIntensity::CommunicationIntensive);
        // Equality counts as compute intensive (CP >= CM).
        assert_eq!(balanced.intensity(), TaskIntensity::ComputeIntensive);
        assert!(compute.is_compute_intensive());
        assert!(!comm.is_compute_intensive());
    }

    #[test]
    fn acceleration_ratio_and_total() {
        let t = Task::from_units("D", 2.0, 1.0, 2);
        assert!((t.acceleration_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(t.total_time(), Time::units_int(3));
        let zero_comm = Task::from_units("K0", 0.0, 3.0, 0);
        assert_eq!(zero_comm.acceleration_ratio(), f64::INFINITY);
    }

    #[test]
    fn serde_round_trip() {
        let t = Task::from_units("A", 3.0, 2.0, 3);
        let json = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(4).to_string(), "T4");
        assert_eq!(TaskId(4).index(), 4);
    }
}
