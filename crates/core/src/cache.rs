//! Solve-once instance cache for the serving layer.
//!
//! A scheduler daemon sees the same instance many times: identical traces
//! replayed under identical parameters must return byte-identical
//! schedules *without* re-solving, and two identical requests arriving
//! concurrently must solve **exactly once** — the second caller waits for
//! the first solve and receives the cached value. [`SolveCache`]
//! implements that contract with two locks:
//!
//! * an outer mutex over the key map, held only to look up or insert a
//!   cell (never across a solve), plus the LRU recency queue that bounds
//!   the entry count — a re-requested key moves to the back, so hot
//!   entries outlive keys requested once and never again;
//! * a per-key cell mutex held *across the solve*: whoever acquires the
//!   cell first and finds it empty computes the value; every concurrent
//!   caller for the same key blocks on that cell mutex and finds the
//!   value filled in when it acquires. Distinct keys use distinct cells,
//!   so unrelated solves never serialize.
//!
//! Failures are not cached: a solver returning `Err` leaves the cell
//! empty, the error propagates to that caller only, and the next caller
//! for the key simply becomes the new solver. A solver that *panics*
//! unwinds through the guard and behaves like a failure (the vendored
//! `parking_lot` mutex does not poison).
//!
//! The implementation is written against the [`crate::sync`] facade, so
//! under `RUSTFLAGS="--cfg microloom"` every lock operation becomes a
//! model-checker decision and `tests/cache_model.rs` verifies the
//! solve-exactly-once contract under *all* interleavings of concurrent
//! identical requests.

use crate::error::Result;
use crate::sync::Mutex;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::Arc;

/// A per-key slot: empty until the first successful solve fills it.
type Cell<V> = Mutex<Option<V>>;

struct Inner<K, V> {
    map: HashMap<K, Arc<Cell<V>>>,
    /// Keys in recency order: least recently used at the front, which is
    /// evicted first when the map outgrows the capacity. Each key appears
    /// exactly once — pushed on insert, moved to the back on re-request —
    /// so the queue and the map stay consistent.
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Running counters of a [`SolveCache`], for observability endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Calls answered from a filled cell (including calls that waited for
    /// a concurrent solver to fill it).
    pub hits: u64,
    /// Calls that ran the solver themselves.
    pub misses: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A bounded map of solved values that computes each key at most once
/// among concurrent callers.
///
/// ```
/// use dts_core::cache::SolveCache;
///
/// let cache = SolveCache::new(16);
/// let (v, hit) = cache.get_or_solve(7u64, || Ok(7 * 7)).unwrap();
/// assert_eq!((v, hit), (49, false));
/// let (v, hit) = cache.get_or_solve(7u64, || unreachable!()).unwrap();
/// assert_eq!((v, hit), (49, true));
/// ```
pub struct SolveCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> SolveCache<K, V> {
    /// A cache holding at most `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        SolveCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached value for `key`, or runs `solve` to produce it.
    ///
    /// The boolean is `true` for a cache hit — including a caller that
    /// blocked while a concurrent solver for the same key filled the cell.
    /// Among concurrent callers with the same key, exactly one runs
    /// `solve` (unless it fails; failures are returned to their caller and
    /// not cached, so a later caller retries).
    ///
    /// # Errors
    ///
    /// Whatever `solve` returns; the cache adds no failure modes of its
    /// own.
    pub fn get_or_solve(&self, key: K, solve: impl FnOnce() -> Result<V>) -> Result<(V, bool)> {
        let cell = self.cell_for(key);
        // Holding the cell lock across the solve is what makes concurrent
        // identical requests solve exactly once: the first caller in finds
        // the cell empty and computes; everyone behind it blocks here and
        // finds the value present. Distinct keys lock distinct cells.
        let mut slot = cell.lock();
        if let Some(value) = slot.as_ref() {
            let value = value.clone();
            drop(slot);
            self.inner.lock().hits += 1;
            return Ok((value, true));
        }
        let value = solve()?;
        *slot = Some(value.clone());
        drop(slot);
        self.inner.lock().misses += 1;
        Ok((value, false))
    }

    /// Looks up or creates the cell of `key`, evicting the least recently
    /// used entries if the insert pushed the map over capacity. The outer
    /// lock is held only for this bookkeeping, never across a solve; the
    /// LRU refresh happens inside the same critical section as the lookup,
    /// so it adds no lock acquisitions (and no model-checker decisions).
    fn cell_for(&self, key: K) -> Arc<Cell<V>> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        match inner.map.entry(key.clone()) {
            Entry::Occupied(e) => {
                let cell = Arc::clone(e.get());
                // Move the re-requested key to the back of the recency
                // queue. O(capacity) scan, bounded by the configured entry
                // count — fine next to a solve that costs milliseconds.
                if let Some(pos) = inner.order.iter().position(|k| k == &key) {
                    inner.order.remove(pos);
                    inner.order.push_back(key);
                }
                cell
            }
            Entry::Vacant(e) => {
                let cell = Arc::new(Mutex::new(None));
                e.insert(Arc::clone(&cell));
                inner.order.push_back(key);
                while inner.map.len() > self.capacity {
                    // An evicted in-flight solve still completes — waiters
                    // hold their own Arc to the cell — it just stops being
                    // findable for later requests.
                    if let Some(old) = inner.order.pop_front() {
                        inner.map.remove(&old);
                        inner.evictions += 1;
                    }
                }
                cell
            }
        }
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;

    #[test]
    fn second_lookup_hits_without_solving() {
        let cache: SolveCache<u32, String> = SolveCache::new(8);
        let mut solves = 0;
        let (v, hit) = cache
            .get_or_solve(1, || {
                solves += 1;
                Ok("one".to_string())
            })
            .unwrap();
        assert_eq!((v.as_str(), hit), ("one", false));
        let (v, hit) = cache
            .get_or_solve(1, || {
                solves += 1;
                Ok("other".to_string())
            })
            .unwrap();
        assert_eq!((v.as_str(), hit), ("one", true), "cached value wins");
        assert_eq!(solves, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn errors_are_returned_but_not_cached() {
        let cache: SolveCache<u32, u32> = SolveCache::new(8);
        let err = cache
            .get_or_solve(1, || Err(CoreError::Internal("boom".into())))
            .unwrap_err();
        assert_eq!(err, CoreError::Internal("boom".into()));
        // The failed key solves again — and can now succeed.
        let (v, hit) = cache.get_or_solve(1, || Ok(5)).unwrap();
        assert_eq!((v, hit), (5, false));
        let (_, hit) = cache.get_or_solve(1, || unreachable!()).unwrap();
        assert!(hit);
    }

    #[test]
    fn capacity_evicts_least_recently_used_first() {
        let cache: SolveCache<u32, u32> = SolveCache::new(2);
        for k in 0..3 {
            cache.get_or_solve(k, || Ok(k * 10)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // Key 0 was evicted and re-solves; keys 1 and 2 still hit.
        let (_, hit) = cache.get_or_solve(1, || unreachable!()).unwrap();
        assert!(hit);
        let (_, hit) = cache.get_or_solve(2, || unreachable!()).unwrap();
        assert!(hit);
        let (v, hit) = cache.get_or_solve(0, || Ok(99)).unwrap();
        assert_eq!((v, hit), (99, false));
    }

    #[test]
    fn hits_refresh_recency() {
        let cache: SolveCache<u32, u32> = SolveCache::new(2);
        cache.get_or_solve(1, || Ok(10)).unwrap();
        cache.get_or_solve(2, || Ok(20)).unwrap();
        // Touch key 1: under FIFO it would still be the eviction victim;
        // under LRU the victim becomes key 2.
        let (_, hit) = cache.get_or_solve(1, || unreachable!()).unwrap();
        assert!(hit);
        cache.get_or_solve(3, || Ok(30)).unwrap();
        let (v, hit) = cache.get_or_solve(1, || unreachable!()).unwrap();
        assert_eq!((v, hit), (10, true), "the touched key survived");
        let (v, hit) = cache.get_or_solve(2, || Ok(99)).unwrap();
        assert_eq!((v, hit), (99, false), "the stale key was evicted");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache: SolveCache<u32, u32> = SolveCache::new(0);
        cache.get_or_solve(1, || Ok(1)).unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn threads_with_the_same_key_solve_once() {
        // The full interleaving-exhaustive version of this lives in
        // tests/cache_model.rs under the microloom backend; this is the
        // cheap std-thread smoke version that runs in every build.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache: SolveCache<u32, u32> = SolveCache::new(8);
        let solves = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let (v, _) = cache
                        .get_or_solve(1, || {
                            solves.fetch_add(1, Ordering::SeqCst);
                            Ok(7)
                        })
                        .unwrap();
                    assert_eq!(v, 7);
                });
            }
        });
        assert_eq!(solves.load(Ordering::SeqCst), 1, "exactly one solve");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4);
        assert_eq!(stats.misses, 1);
    }
}
