//! Stable content hashing for cache keys.
//!
//! The serving layer caches solved instances keyed by the *content* of the
//! request — trace bytes, capacity factor, heuristic, execution model — so
//! the key must be identical across processes, platforms and runs.
//! `std::hash` makes no such promise (`DefaultHasher` is explicitly
//! unspecified and `HashMap` keys are randomized per process), so this
//! module pins one: a 128-bit FNV-1a variant computed as two independent
//! 64-bit lanes over the same byte stream. The function is fixed forever —
//! changing it silently invalidates every persisted or replicated cache —
//! and the unit tests pin known digests to enforce that.
//!
//! This is a *content* hash, not a cryptographic one: collision resistance
//! against an adversary is not a goal (a collision costs a wrong cache hit
//! between two requests of the same tenant, and the 128-bit space makes
//! accidental collisions negligible).

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset of the second lane: the FNV offset basis with the bits flipped,
/// so the two lanes never agree on the byte stream.
const LANE2_OFFSET: u64 = !FNV_OFFSET;

/// A 128-bit stable content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest128(pub u64, pub u64);

impl fmt::Display for Digest128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Incremental stable hasher producing a [`Digest128`].
///
/// ```
/// use dts_core::hash::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write(b"trace bytes");
/// h.write_u64(42);
/// let d = h.finish();
/// assert_eq!(d, {
///     let mut h2 = StableHasher::new();
///     h2.write(b"trace bytes");
///     h2.write_u64(42);
///     h2.finish()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    lane1: u64,
    lane2: u64,
}

impl StableHasher {
    /// A fresh hasher at the fixed offset basis.
    pub fn new() -> Self {
        StableHasher {
            lane1: FNV_OFFSET,
            lane2: LANE2_OFFSET,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane1 = (self.lane1 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.lane2 = (self.lane2 ^ u64::from(b ^ 0xa5)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as eight little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Feeds a length-prefixed string, so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> Digest128 {
        Digest128(self.lane1, self.lane2)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// One-shot digest of a byte slice.
pub fn stable_digest(bytes: &[u8]) -> Digest128 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_pinned_forever() {
        // These constants define the hash function: if either moves, every
        // replicated/persisted cache key silently changes. Never "fix" this
        // test by updating the expectations without versioning the keys.
        assert_eq!(stable_digest(b"").to_string(), {
            let mut h = StableHasher::new();
            h.write(b"");
            h.finish().to_string()
        });
        assert_eq!(
            stable_digest(b"").to_string(),
            "cbf29ce484222325340d631b7bdddcda"
        );
        assert_eq!(
            stable_digest(b"dts").to_string(),
            "ca672f18f436aee2a53cdde3e3f242f2"
        );
    }

    #[test]
    fn lanes_disagree_and_order_matters() {
        let a = stable_digest(b"ab");
        assert_ne!(a.0, a.1, "independent lanes must differ");
        assert_ne!(stable_digest(b"ab"), stable_digest(b"ba"));

        let mut split = StableHasher::new();
        split.write_str("ab");
        split.write_str("c");
        let mut joined = StableHasher::new();
        joined.write_str("a");
        joined.write_str("bc");
        assert_ne!(
            split.finish(),
            joined.finish(),
            "length prefixes must separate field boundaries"
        );
    }

    #[test]
    fn u64s_hash_as_their_bytes() {
        let mut a = StableHasher::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = StableHasher::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
