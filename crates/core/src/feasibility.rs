//! Feasibility checking of schedules.
//!
//! A schedule is feasible (Section 3 of the paper) when:
//!
//! 1. every task of the instance is scheduled exactly once;
//! 2. each task's computation starts no earlier than the end of its
//!    communication (`SCOMP(i) >= SCOMM(i) + CM_i`);
//! 3. at most one communication is in progress at any time (single link);
//! 4. at most one computation is in progress at any time (single processing
//!    unit);
//! 5. at every instant, the total memory held by *active* tasks — those with
//!    `SCOMM(i) <= t < SCOMP(i) + CP_i` — does not exceed the capacity `C`.

use crate::instance::Instance;
use crate::memory::{MemSize, MemoryProfile};
use crate::schedule::Schedule;
use crate::task::TaskId;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A single feasibility violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A task of the instance is missing from the schedule.
    MissingTask(TaskId),
    /// A task appears more than once in the schedule.
    DuplicateTask(TaskId),
    /// The schedule references a task id not present in the instance.
    UnknownTask(TaskId),
    /// A computation starts before its input transfer has completed.
    ComputationBeforeTransfer {
        /// Offending task.
        task: TaskId,
        /// End of the task's communication.
        comm_end: Time,
        /// Start of the task's computation.
        comp_start: Time,
    },
    /// Two communications overlap on the single link.
    CommunicationOverlap {
        /// First task (earlier start).
        first: TaskId,
        /// Second task (overlapping start).
        second: TaskId,
        /// Instant at which the overlap begins.
        at: Time,
    },
    /// Two computations overlap on the single processing unit.
    ComputationOverlap {
        /// First task (earlier start).
        first: TaskId,
        /// Second task (overlapping start).
        second: TaskId,
        /// Instant at which the overlap begins.
        at: Time,
    },
    /// Memory occupation exceeds the capacity.
    MemoryExceeded {
        /// Instant of the first violation.
        at: Time,
        /// Memory in use at that instant.
        used: MemSize,
        /// Capacity of the instance.
        capacity: MemSize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingTask(t) => write!(f, "task {t} is not scheduled"),
            Violation::DuplicateTask(t) => write!(f, "task {t} is scheduled more than once"),
            Violation::UnknownTask(t) => write!(f, "schedule references unknown task {t}"),
            Violation::ComputationBeforeTransfer {
                task,
                comm_end,
                comp_start,
            } => write!(
                f,
                "task {task} computes at {comp_start} before its transfer completes at {comm_end}"
            ),
            Violation::CommunicationOverlap { first, second, at } => write!(
                f,
                "communications of {first} and {second} overlap on the link at {at}"
            ),
            Violation::ComputationOverlap { first, second, at } => write!(
                f,
                "computations of {first} and {second} overlap on the processor at {at}"
            ),
            Violation::MemoryExceeded { at, used, capacity } => {
                write!(f, "memory use {used} exceeds capacity {capacity} at {at}")
            }
        }
    }
}

/// Checks a schedule against an instance and returns every violation found.
/// An empty vector means the schedule is feasible.
pub fn validate(instance: &Instance, schedule: &Schedule) -> Vec<Violation> {
    let mut violations = Vec::new();

    // 1. Permutation of the task set.
    let mut seen: HashSet<TaskId> = HashSet::with_capacity(schedule.len());
    for entry in schedule.entries() {
        if entry.task.index() >= instance.len() {
            violations.push(Violation::UnknownTask(entry.task));
            continue;
        }
        if !seen.insert(entry.task) {
            violations.push(Violation::DuplicateTask(entry.task));
        }
    }
    for id in instance.task_ids() {
        if !seen.contains(&id) {
            violations.push(Violation::MissingTask(id));
        }
    }
    // If the entries do not even form a permutation, the resource checks
    // below would be misleading; still run them on the known tasks so the
    // caller gets as much information as possible.

    let known_entries: Vec<_> = schedule
        .entries()
        .iter()
        .filter(|e| e.task.index() < instance.len())
        .collect();

    // 2. Precedence: communication before computation.
    for entry in &known_entries {
        let task = instance.task(entry.task);
        let comm_end = entry.comm_start + task.comm_time;
        if entry.comp_start < comm_end {
            violations.push(Violation::ComputationBeforeTransfer {
                task: entry.task,
                comm_end,
                comp_start: entry.comp_start,
            });
        }
    }

    // 3 & 4. Resource exclusivity. Zero-length occupations never conflict.
    let mut comm_intervals: Vec<(Time, Time, TaskId)> = known_entries
        .iter()
        .map(|e| {
            let t = instance.task(e.task);
            (e.comm_start, e.comm_start + t.comm_time, e.task)
        })
        .filter(|(s, e, _)| e > s)
        .collect();
    comm_intervals.sort();
    for pair in comm_intervals.windows(2) {
        let (_, end_a, task_a) = pair[0];
        let (start_b, _, task_b) = pair[1];
        if start_b < end_a {
            violations.push(Violation::CommunicationOverlap {
                first: task_a,
                second: task_b,
                at: start_b,
            });
        }
    }

    let mut comp_intervals: Vec<(Time, Time, TaskId)> = known_entries
        .iter()
        .map(|e| {
            let t = instance.task(e.task);
            (e.comp_start, e.comp_start + t.comp_time, e.task)
        })
        .filter(|(s, e, _)| e > s)
        .collect();
    comp_intervals.sort();
    for pair in comp_intervals.windows(2) {
        let (_, end_a, task_a) = pair[0];
        let (start_b, _, task_b) = pair[1];
        if start_b < end_a {
            violations.push(Violation::ComputationOverlap {
                first: task_a,
                second: task_b,
                at: start_b,
            });
        }
    }

    // 5. Memory envelope (computed over the entries that reference known
    // tasks, so that an UnknownTask violation does not prevent reporting the
    // remaining problems).
    if instance.capacity() != MemSize::UNBOUNDED {
        let known_schedule: Schedule = known_entries.iter().map(|e| **e).collect();
        let profile = MemoryProfile::of_schedule(instance, &known_schedule);
        if let Some(at) = profile.first_violation(instance.capacity()) {
            violations.push(Violation::MemoryExceeded {
                at,
                used: profile.usage_at(at),
                capacity: instance.capacity(),
            });
        }
    }

    violations
}

/// Convenience wrapper: `true` iff [`validate`] finds no violation.
pub fn is_feasible(instance: &Instance, schedule: &Schedule) -> bool {
    validate(instance, schedule).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::schedule::ScheduleEntry;

    fn instance() -> Instance {
        InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .task_units("A", 3.0, 2.0, 3)
            .task_units("B", 1.0, 3.0, 1)
            .task_units("C", 4.0, 4.0, 4)
            .build()
            .unwrap()
    }

    fn entry(task: usize, comm: f64, comp: f64) -> ScheduleEntry {
        ScheduleEntry {
            task: TaskId(task),
            comm_start: Time::units(comm),
            comp_start: Time::units(comp),
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let inst = instance();
        // B [0,1)+[1,4), A [1,4)+[4,6), C [6,10)+[10,14): B+A = 4 <= 6,
        // then C alone.
        let sched: Schedule = vec![entry(1, 0.0, 1.0), entry(0, 1.0, 4.0), entry(2, 6.0, 10.0)]
            .into_iter()
            .collect();
        assert!(is_feasible(&inst, &sched), "{:?}", validate(&inst, &sched));
    }

    #[test]
    fn missing_and_duplicate_tasks_detected() {
        let inst = instance();
        let sched: Schedule = vec![entry(1, 0.0, 1.0), entry(1, 5.0, 6.0)]
            .into_iter()
            .collect();
        let v = validate(&inst, &sched);
        assert!(v.contains(&Violation::DuplicateTask(TaskId(1))));
        assert!(v.contains(&Violation::MissingTask(TaskId(0))));
        assert!(v.contains(&Violation::MissingTask(TaskId(2))));
    }

    #[test]
    fn unknown_task_detected() {
        let inst = instance();
        let sched: Schedule = vec![
            entry(0, 0.0, 3.0),
            entry(1, 3.0, 5.0),
            entry(2, 5.0, 9.0),
            entry(9, 20.0, 30.0),
        ]
        .into_iter()
        .collect();
        let v = validate(&inst, &sched);
        assert!(v.contains(&Violation::UnknownTask(TaskId(9))));
    }

    #[test]
    fn precedence_violation_detected() {
        let inst = instance();
        // A computes before its 3-unit transfer completes.
        let sched: Schedule = vec![entry(0, 0.0, 2.0), entry(1, 3.0, 4.0), entry(2, 4.0, 8.0)]
            .into_iter()
            .collect();
        let v = validate(&inst, &sched);
        assert!(v.iter().any(
            |x| matches!(x, Violation::ComputationBeforeTransfer { task, .. } if *task == TaskId(0))
        ));
    }

    #[test]
    fn link_overlap_detected() {
        let inst = instance();
        let sched: Schedule = vec![entry(0, 0.0, 3.0), entry(1, 2.0, 5.0), entry(2, 5.0, 9.0)]
            .into_iter()
            .collect();
        let v = validate(&inst, &sched);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::CommunicationOverlap { .. })));
    }

    #[test]
    fn cpu_overlap_detected() {
        let inst = instance();
        let sched: Schedule = vec![entry(1, 0.0, 1.0), entry(0, 1.0, 3.5), entry(2, 6.0, 10.0)]
            .into_iter()
            .collect();
        // B computes [1,4), A computes [3.5,5.5): overlap.
        let v = validate(&inst, &sched);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ComputationOverlap { .. })));
    }

    #[test]
    fn memory_violation_detected() {
        let inst = instance();
        // A and C both held from t=0/3: 3 + 4 = 7 > 6.
        let sched: Schedule = vec![entry(0, 0.0, 3.0), entry(2, 3.0, 7.0), entry(1, 7.0, 11.0)]
            .into_iter()
            .collect();
        let v = validate(&inst, &sched);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MemoryExceeded { .. })));
    }

    #[test]
    fn zero_length_tasks_do_not_conflict() {
        // Tasks with zero communication (like K0 in the NP-hardness
        // reduction) may share a start instant with a real transfer.
        let inst = InstanceBuilder::new()
            .capacity(MemSize::from_bytes(10))
            .task_units("K0", 0.0, 3.0, 0)
            .task_units("A", 2.0, 1.0, 2)
            .build()
            .unwrap();
        let sched: Schedule = vec![entry(0, 0.0, 0.0), entry(1, 0.0, 3.0)]
            .into_iter()
            .collect();
        assert!(is_feasible(&inst, &sched), "{:?}", validate(&inst, &sched));
    }

    #[test]
    fn unbounded_capacity_skips_memory_check() {
        let inst = InstanceBuilder::new()
            .task_units("A", 3.0, 2.0, u64::MAX / 4)
            .task_units("B", 1.0, 3.0, u64::MAX / 4)
            .build()
            .unwrap();
        let sched: Schedule = vec![entry(0, 0.0, 3.0), entry(1, 3.0, 5.0)]
            .into_iter()
            .collect();
        assert!(is_feasible(&inst, &sched));
    }

    #[test]
    fn violations_display() {
        let v = Violation::MemoryExceeded {
            at: Time::units_int(3),
            used: MemSize::from_bytes(7),
            capacity: MemSize::from_bytes(6),
        };
        assert!(v.to_string().contains("exceeds capacity"));
        assert!(Violation::MissingTask(TaskId(1)).to_string().contains("T1"));
    }
}
