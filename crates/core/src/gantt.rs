//! ASCII Gantt rendering of schedules, mirroring the two-row
//! (communication resource / computation resource) figures of the paper.

use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::time::Time;
use std::fmt::Write as _;

/// Options controlling the rendering.
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Total width in characters of the time axis.
    pub width: usize,
    /// Whether to append the per-task start/end table below the chart.
    pub with_table: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 72,
            with_table: false,
        }
    }
}

/// Renders a two-row ASCII Gantt chart of `schedule`.
///
/// The first row is the communication link, the second the processing unit.
/// Each task is drawn with the first character of its name (task ids when the
/// name is empty); idle periods are drawn with `.`.
pub fn render(instance: &Instance, schedule: &Schedule, options: GanttOptions) -> String {
    let makespan = schedule
        .makespan(instance)
        .max(schedule.comm_finish(instance));
    let mut out = String::new();
    if makespan.is_zero() || schedule.is_empty() {
        out.push_str("(empty schedule)\n");
        return out;
    }
    let width = options.width.max(10);
    let scale = |t: Time| -> usize {
        ((t.ticks() as u128 * width as u128) / makespan.ticks() as u128) as usize
    };

    let mut comm_row = vec!['.'; width];
    let mut comp_row = vec!['.'; width];
    for entry in schedule.entries() {
        let task = instance.task(entry.task);
        let glyph = task.name.chars().next().unwrap_or_else(|| {
            char::from_digit((entry.task.index() % 10) as u32, 10).unwrap_or('?')
        });
        let (cs, ce) = (
            scale(entry.comm_start),
            scale(entry.comm_start + task.comm_time),
        );
        for cell in comm_row.iter_mut().take(ce.min(width)).skip(cs) {
            *cell = glyph;
        }
        let (ps, pe) = (
            scale(entry.comp_start),
            scale(entry.comp_start + task.comp_time),
        );
        for cell in comp_row.iter_mut().take(pe.min(width)).skip(ps) {
            *cell = glyph;
        }
    }

    let _ = writeln!(out, "comm |{}|", comm_row.iter().collect::<String>());
    let _ = writeln!(out, "comp |{}|", comp_row.iter().collect::<String>());
    let _ = writeln!(out, "      0{:>w$}", makespan, w = width - 1);

    if options.with_table {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            "task", "comm[", "comm)", "comp[", "comp)"
        );
        let mut entries = schedule.entries().to_vec();
        entries.sort_by_key(|e| e.comm_start);
        for e in entries {
            let t = instance.task(e.task);
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>10} {:>10} {:>10}",
                t.name,
                e.comm_start.to_string(),
                (e.comm_start + t.comm_time).to_string(),
                e.comp_start.to_string(),
                (e.comp_start + t.comp_time).to_string()
            );
        }
    }
    out
}

/// Renders with default options.
pub fn render_default(instance: &Instance, schedule: &Schedule) -> String {
    render(instance, schedule, GanttOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::memory::MemSize;
    use crate::simulate::simulate_sequence;
    use crate::task::TaskId;

    #[test]
    fn renders_two_rows_and_axis() {
        let inst = InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .task_units("A", 3.0, 2.0, 3)
            .task_units("B", 1.0, 3.0, 1)
            .build()
            .unwrap();
        let sched = simulate_sequence(&inst, &[TaskId(1), TaskId(0)]).unwrap();
        let text = render_default(&inst, &sched);
        assert!(text.contains("comm |"));
        assert!(text.contains("comp |"));
        assert!(text.contains('A'));
        assert!(text.contains('B'));
    }

    #[test]
    fn table_option_lists_every_task() {
        let inst = InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .task_units("A", 3.0, 2.0, 3)
            .task_units("B", 1.0, 3.0, 1)
            .build()
            .unwrap();
        let sched = simulate_sequence(&inst, &[TaskId(1), TaskId(0)]).unwrap();
        let text = render(
            &inst,
            &sched,
            GanttOptions {
                width: 40,
                with_table: true,
            },
        );
        assert!(text.lines().count() >= 5);
        assert!(text.contains("task"));
    }

    #[test]
    fn empty_schedule_is_handled() {
        let inst = InstanceBuilder::new()
            .capacity(MemSize::from_bytes(6))
            .task_units("A", 3.0, 2.0, 3)
            .build()
            .unwrap();
        let text = render_default(&inst, &Schedule::new());
        assert!(text.contains("empty"));
    }
}
