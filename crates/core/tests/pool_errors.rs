//! Error-path suite for [`run_indexed_pool`]: whatever the interleaving,
//! the pool must report exactly what a sequential loop would have — the
//! lowest-indexed failure — and must turn worker panics into
//! [`CoreError::Internal`] instead of poisoning the caller.

use dts_core::pool::run_indexed_pool;
use dts_core::CoreError;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

#[test]
fn empty_input_yields_empty_output_for_every_thread_count() {
    for threads in [0, 1, 4, 32] {
        let out: Vec<u8> = run_indexed_pool(0, threads, |_| unreachable!()).unwrap();
        assert!(out.is_empty(), "threads={threads}");
    }
}

#[test]
fn zero_threads_still_run_everything_sequentially() {
    let out = run_indexed_pool(5, 0, |i| Ok(i + 1)).unwrap();
    assert_eq!(out, vec![1, 2, 3, 4, 5]);
}

#[test]
fn lowest_index_error_wins_even_when_a_higher_index_fails_first() {
    // Job 1 announces itself, then sleeps before failing; every job with a
    // higher index waits for that announcement and fails *immediately*.
    // The pool therefore observes the high-index failures (and their abort
    // signal) well before job 1's — yet it must still report job 1's,
    // because that is the failure a sequential loop stops at.
    //
    // No deadlock is possible: indices are claimed in increasing order, so
    // a worker spinning on a job >= 2 implies job 1 was already claimed.
    for _ in 0..20 {
        let claimed = AtomicBool::new(false);
        let err = run_indexed_pool(8, 8, |i| -> dts_core::Result<usize> {
            match i {
                0 => Ok(0),
                1 => {
                    claimed.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(10));
                    Err(CoreError::Internal("job 1".into()))
                }
                _ => {
                    while !claimed.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Err(CoreError::Internal(format!("job {i}")))
                }
            }
        })
        .unwrap_err();
        assert_eq!(err, CoreError::Internal("job 1".into()));
    }
}

#[test]
fn a_failure_stops_further_claims_in_the_sequential_path() {
    let executed = AtomicUsize::new(0);
    let err = run_indexed_pool(100, 1, |i| {
        executed.fetch_add(1, Ordering::SeqCst);
        if i == 3 {
            Err(CoreError::Internal("stop".into()))
        } else {
            Ok(i)
        }
    })
    .unwrap_err();
    assert_eq!(err, CoreError::Internal("stop".into()));
    assert_eq!(
        executed.load(Ordering::SeqCst),
        4,
        "jobs after the failure must not run sequentially"
    );
}

#[test]
fn string_and_str_panic_payloads_are_reported() {
    for threads in [1, 4] {
        let err = run_indexed_pool(6, threads, |i| {
            if i == 2 {
                panic!("exploded with {}", "context");
            }
            Ok(i)
        })
        .unwrap_err();
        match err {
            CoreError::Internal(msg) => {
                assert!(
                    msg.contains("item #2") && msg.contains("exploded with context"),
                    "{msg}"
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}

#[test]
fn non_string_panic_payloads_still_map_to_internal() {
    for threads in [1, 4] {
        let err = run_indexed_pool(4, threads, |i| -> dts_core::Result<usize> {
            if i == 1 {
                std::panic::panic_any(42usize);
            }
            Ok(i)
        })
        .unwrap_err();
        match err {
            CoreError::Internal(msg) => {
                assert!(
                    msg.contains("item #1") && msg.contains("non-string panic payload"),
                    "{msg}"
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}

#[test]
fn a_panic_and_an_earlier_error_resolve_to_the_error() {
    // Index 1 errors, index 3 panics: the reported failure must be index
    // 1's error for every thread count.
    for threads in [1, 2, 8] {
        let err = run_indexed_pool(6, threads, |i| match i {
            1 => Err(CoreError::Infeasible("early error".into())),
            3 => panic!("late panic"),
            _ => Ok(i),
        })
        .unwrap_err();
        // With >1 threads the panic may be observed first and abort the
        // pool before index 1 runs on some interleavings — but index 1 is
        // always claimed before index 3, and claimed jobs run to
        // completion, so the error must win.
        assert_eq!(
            err,
            CoreError::Infeasible("early error".into()),
            "{threads}"
        );
    }
}

microcheck::property! {
    /// For arbitrary failure sets, thread counts and job counts, the pool
    /// reports exactly the failure a sequential loop stops at — or all
    /// results in order when nothing fails.
    fn pool_matches_the_sequential_contract(
        (n_items, threads, fail_seed) in (
            microcheck::gens::usize_in(0..=60),
            microcheck::gens::usize_in(1..=8),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 120,
    ) {
        // Pseudo-random but deterministic failure set derived from the
        // drawn seed: roughly one job in five fails.
        let fails = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ fail_seed;
        let failing = |i: usize| fails(i) % 5 == 0;
        let expected_failure = (0..n_items).find(|&i| failing(i));

        let outcome = run_indexed_pool(n_items, threads, |i| {
            if failing(i) {
                Err(CoreError::Internal(format!("job {i}")))
            } else {
                Ok(i * 3)
            }
        });
        match (outcome, expected_failure) {
            (Ok(values), None) => {
                microcheck::prop_assert_eq!(
                    values,
                    (0..n_items).map(|i| i * 3).collect::<Vec<_>>()
                );
            }
            (Err(err), Some(first)) => {
                microcheck::prop_assert_eq!(
                    err,
                    CoreError::Internal(format!("job {first}"))
                );
            }
            (outcome, expected) => {
                microcheck::prop_assert!(
                    false,
                    "outcome {outcome:?} disagrees with expected failure {expected:?}"
                );
            }
        }
    }
}
