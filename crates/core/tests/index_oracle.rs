//! Oracle suite for [`CandidateIndex`]: every query must agree with a naive
//! scan over the same task set, for arbitrary removal orders and arbitrary
//! `(free memory, communication bound)` probes.
//!
//! The naive scans below restate the selection semantics of the paper's
//! dynamic heuristics (largest/smallest communication time, maximum
//! acceleration ratio — ties always to the smallest id), so this suite is
//! what licenses the heuristics to trust the index instead of rescanning
//! the remaining tasks on every decision.

use dts_core::index::CandidateIndex;
use dts_core::instances::{
    random_instance, random_instance_decoupled_memory, RandomInstanceConfig,
};
use dts_core::{Instance, InstanceBuilder, MemSize, TaskId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Naive scan: smallest `(comm, id)` among alive tasks with `mem <= free`.
fn naive_min_comm(instance: &Instance, alive: &[bool], free: MemSize) -> Option<TaskId> {
    instance
        .iter()
        .filter(|(id, t)| alive[id.index()] && t.mem <= free)
        .min_by_key(|(id, t)| (t.comm_time, id.index()))
        .map(|(id, _)| id)
}

/// Naive scan: largest comm `<= bound`, ties to the smallest id.
fn naive_max_comm(
    instance: &Instance,
    alive: &[bool],
    free: MemSize,
    bound: Time,
) -> Option<TaskId> {
    instance
        .iter()
        .filter(|(id, t)| alive[id.index()] && t.mem <= free && t.comm_time <= bound)
        .max_by_key(|(id, t)| (t.comm_time, std::cmp::Reverse(id.index())))
        .map(|(id, _)| id)
}

/// Naive scan: largest acceleration ratio among tasks with comm `<= bound`,
/// ties to the smallest id. `Time::ratio` never yields NaN, so the `f64`
/// comparison is total.
fn naive_best_ratio(
    instance: &Instance,
    alive: &[bool],
    free: MemSize,
    bound: Time,
) -> Option<TaskId> {
    instance
        .iter()
        .filter(|(id, t)| alive[id.index()] && t.mem <= free && t.comm_time <= bound)
        .min_by(|(a_id, a), (b_id, b)| {
            b.acceleration_ratio()
                .partial_cmp(&a.acceleration_ratio())
                .expect("acceleration ratios are never NaN")
                .then(a_id.index().cmp(&b_id.index()))
        })
        .map(|(id, _)| id)
}

/// Drives the index through a random removal order, probing all three
/// queries with random thresholds between removals.
fn check_against_oracle(instance: &Instance, rng: &mut StdRng, context: &str) {
    let mut index = CandidateIndex::new(instance);
    // The ratio-tree-less variant must answer the communication-time
    // queries identically.
    let mut comm_only = CandidateIndex::comm_only(instance);
    let mut alive = vec![true; instance.len()];
    let max_mem = instance
        .tasks()
        .iter()
        .map(|t| t.mem.bytes())
        .max()
        .unwrap_or(0);
    let max_comm = instance
        .tasks()
        .iter()
        .map(|t| t.comm_time.ticks())
        .max()
        .unwrap_or(0);
    let mut order: Vec<usize> = (0..instance.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }

    for &victim in order.iter() {
        for _ in 0..4 {
            // Thresholds straddle the task ranges so the probes hit empty,
            // partial and full candidate sets.
            let free = MemSize::from_bytes(rng.gen_range(0..=max_mem.saturating_add(1)));
            let bound = Time::from_ticks(rng.gen_range(0..=max_comm.saturating_add(1)));
            assert_eq!(
                index.min_comm_candidate(free),
                naive_min_comm(instance, &alive, free),
                "{context}: min_comm free={free:?}"
            );
            assert_eq!(
                index.max_comm_candidate_within(free, bound),
                naive_max_comm(instance, &alive, free, bound),
                "{context}: max_comm free={free:?} bound={bound:?}"
            );
            assert_eq!(
                index.best_ratio_candidate_within(free, bound),
                naive_best_ratio(instance, &alive, free, bound),
                "{context}: best_ratio free={free:?} bound={bound:?}"
            );
            assert_eq!(
                comm_only.min_comm_candidate(free),
                index.min_comm_candidate(free),
                "{context}: comm_only min_comm free={free:?}"
            );
            assert_eq!(
                comm_only.max_comm_candidate_within(free, bound),
                index.max_comm_candidate_within(free, bound),
                "{context}: comm_only max_comm free={free:?} bound={bound:?}"
            );
        }
        index.remove(TaskId(victim));
        comm_only.remove(TaskId(victim));
        alive[victim] = false;
        assert_eq!(index.len(), alive.iter().filter(|a| **a).count());
    }
    assert!(index.is_empty());
    assert!(comm_only.is_empty());
}

#[test]
fn index_agrees_with_naive_scans_on_random_instances() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        for n_tasks in [1usize, 2, 7, 25, 60] {
            for factor in [1.0, 1.3] {
                let coupled = random_instance(
                    &mut rng,
                    RandomInstanceConfig {
                        n_tasks,
                        capacity_factor: factor,
                        ..Default::default()
                    },
                );
                check_against_oracle(&coupled, &mut rng, &format!("coupled {seed}/{n_tasks}"));
                let decoupled = random_instance_decoupled_memory(&mut rng, n_tasks, factor);
                check_against_oracle(&decoupled, &mut rng, &format!("decoupled {seed}/{n_tasks}"));
            }
        }
    }
}

#[test]
fn index_agrees_with_naive_scans_under_heavy_ties() {
    // Tiny value domains force many equal communication times, equal
    // ratios, and equal memory footprints — the cases where tie-breaking by
    // id is the only thing separating candidates. Includes zero-comm tasks
    // (infinite ratio) and zero-comm/zero-comp tasks (ratio 1 by the
    // `Time::ratio` convention).
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..30 {
        let n = rng.gen_range(1..=18);
        let mut builder = InstanceBuilder::new().capacity(MemSize::from_bytes(6));
        for i in 0..n {
            let comm = rng.gen_range(0..=2u64);
            let comp = rng.gen_range(0..=2u64);
            let mem = rng.gen_range(0..=4u64);
            builder = builder.task(dts_core::Task::new(
                format!("t{i}"),
                Time::units_int(comm),
                Time::units_int(comp),
                MemSize::from_bytes(mem),
            ));
        }
        let instance = builder.build().expect("mem <= 4 fits capacity 6");
        check_against_oracle(&instance, &mut rng, &format!("ties round {round}"));
    }
}

#[test]
#[should_panic(expected = "comm_only")]
fn ratio_query_on_comm_only_index_panics() {
    let instance = InstanceBuilder::new()
        .capacity(MemSize::from_bytes(6))
        .task(dts_core::Task::new(
            "a",
            Time::units_int(1),
            Time::units_int(1),
            MemSize::from_bytes(1),
        ))
        .build()
        .unwrap();
    let index = CandidateIndex::comm_only(&instance);
    let _ = index.best_ratio_candidate_within(MemSize::from_bytes(6), Time::units_int(1));
}

#[test]
fn index_handles_u64_scale_memory() {
    // A u64::MAX-byte task must stay distinguishable from a removed slot
    // (the index stores absence as u128::MAX, above any real size).
    let instance = InstanceBuilder::new()
        .capacity(MemSize::UNBOUNDED)
        .task(dts_core::Task::new(
            "a",
            Time::units_int(1),
            Time::units_int(1),
            MemSize::UNBOUNDED,
        ))
        .task(dts_core::Task::new(
            "b",
            Time::units_int(2),
            Time::units_int(1),
            MemSize::from_bytes(2),
        ))
        .build()
        .unwrap();
    let mut index = CandidateIndex::new(&instance);
    assert_eq!(
        index.min_comm_candidate(MemSize::UNBOUNDED),
        Some(TaskId(0))
    );
    assert_eq!(
        index.min_comm_candidate(MemSize::from_bytes(u64::MAX - 1)),
        Some(TaskId(1))
    );
    index.remove(TaskId(0));
    assert_eq!(
        index.min_comm_candidate(MemSize::UNBOUNDED),
        Some(TaskId(1))
    );
    index.remove(TaskId(1));
    assert_eq!(index.min_comm_candidate(MemSize::UNBOUNDED), None);
}
