//! Oracle suite for [`CandidateIndex`]: every query must agree with a naive
//! scan over the same task set, for arbitrary removal orders and arbitrary
//! `(free memory, communication bound)` probes.
//!
//! The naive scans below restate the selection semantics of the paper's
//! dynamic heuristics (largest/smallest communication time, maximum
//! acceleration ratio — ties always to the smallest id), so this suite is
//! what licenses the heuristics to trust the index instead of rescanning
//! the remaining tasks on every decision.

use dts_core::index::CandidateIndex;
use dts_core::instances::{
    random_instance, random_instance_decoupled_memory, RandomInstanceConfig,
};
use dts_core::{Instance, InstanceBuilder, MemSize, TaskId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Naive scan: smallest `(comm, id)` among alive tasks with `mem <= free`.
fn naive_min_comm(instance: &Instance, alive: &[bool], free: MemSize) -> Option<TaskId> {
    instance
        .iter()
        .filter(|(id, t)| alive[id.index()] && t.mem <= free)
        .min_by_key(|(id, t)| (t.comm_time, id.index()))
        .map(|(id, _)| id)
}

/// Naive scan: largest comm `<= bound`, ties to the smallest id.
fn naive_max_comm(
    instance: &Instance,
    alive: &[bool],
    free: MemSize,
    bound: Time,
) -> Option<TaskId> {
    instance
        .iter()
        .filter(|(id, t)| alive[id.index()] && t.mem <= free && t.comm_time <= bound)
        .max_by_key(|(id, t)| (t.comm_time, std::cmp::Reverse(id.index())))
        .map(|(id, _)| id)
}

/// Naive scan: largest acceleration ratio among tasks with comm `<= bound`,
/// ties to the smallest id. `Time::ratio` never yields NaN, so the `f64`
/// comparison is total.
fn naive_best_ratio(
    instance: &Instance,
    alive: &[bool],
    free: MemSize,
    bound: Time,
) -> Option<TaskId> {
    instance
        .iter()
        .filter(|(id, t)| alive[id.index()] && t.mem <= free && t.comm_time <= bound)
        .min_by(|(a_id, a), (b_id, b)| {
            b.acceleration_ratio()
                .partial_cmp(&a.acceleration_ratio())
                .expect("acceleration ratios are never NaN")
                .then(a_id.index().cmp(&b_id.index()))
        })
        .map(|(id, _)| id)
}

/// Naive scan: largest acceleration ratio among tasks with comm exactly
/// `comm`, ties to the smallest id.
fn naive_best_ratio_at(
    instance: &Instance,
    alive: &[bool],
    free: MemSize,
    comm: Time,
) -> Option<TaskId> {
    instance
        .iter()
        .filter(|(id, t)| alive[id.index()] && t.mem <= free && t.comm_time == comm)
        .min_by(|(a_id, a), (b_id, b)| {
            b.acceleration_ratio()
                .partial_cmp(&a.acceleration_ratio())
                .expect("acceleration ratios are never NaN")
                .then(a_id.index().cmp(&b_id.index()))
        })
        .map(|(id, _)| id)
}

/// Compares every index query (and the `comm_only` twin) against the naive
/// scans for one `(free, bound)` probe. Returns the first mismatch as a
/// message, so both the assert-style suite and the `microcheck` properties
/// below share it.
fn probe_queries(
    instance: &Instance,
    alive: &[bool],
    index: &CandidateIndex,
    comm_only: &CandidateIndex,
    free: MemSize,
    bound: Time,
) -> Result<(), String> {
    let mismatch = |query: &str, got: Option<TaskId>, want: Option<TaskId>| {
        Err(format!(
            "{query} free={free:?} bound={bound:?}: index {got:?}, oracle {want:?}"
        ))
    };
    let (got, want) = (
        index.min_comm_candidate(free),
        naive_min_comm(instance, alive, free),
    );
    if got != want {
        return mismatch("min_comm", got, want);
    }
    let (got, want) = (
        index.max_comm_candidate_within(free, bound),
        naive_max_comm(instance, alive, free, bound),
    );
    if got != want {
        return mismatch("max_comm", got, want);
    }
    let (got, want) = (
        index.best_ratio_candidate_within(free, bound),
        naive_best_ratio(instance, alive, free, bound),
    );
    if got != want {
        return mismatch("best_ratio", got, want);
    }
    // The exact-communication variant (the engine's minimum-idle block
    // query); the random bound doubles as the probed communication time,
    // hitting both real and absent values on the small test domains.
    let (got, want) = (
        index.best_ratio_candidate_at(free, bound),
        naive_best_ratio_at(instance, alive, free, bound),
    );
    if got != want {
        return mismatch("best_ratio_at", got, want);
    }
    let (got, want) = (
        comm_only.min_comm_candidate(free),
        index.min_comm_candidate(free),
    );
    if got != want {
        return mismatch("comm_only min_comm", got, want);
    }
    let (got, want) = (
        comm_only.max_comm_candidate_within(free, bound),
        index.max_comm_candidate_within(free, bound),
    );
    if got != want {
        return mismatch("comm_only max_comm", got, want);
    }
    Ok(())
}

/// Drives the index through a random removal order, probing all three
/// queries with random thresholds between removals.
fn check_against_oracle(instance: &Instance, rng: &mut StdRng, context: &str) {
    let mut index = CandidateIndex::new(instance);
    // The ratio-tree-less variant must answer the communication-time
    // queries identically.
    let mut comm_only = CandidateIndex::comm_only(instance);
    let mut alive = vec![true; instance.len()];
    let max_mem = instance
        .tasks()
        .iter()
        .map(|t| t.mem.bytes())
        .max()
        .unwrap_or(0);
    let max_comm = instance
        .tasks()
        .iter()
        .map(|t| t.comm_time.ticks())
        .max()
        .unwrap_or(0);
    let mut order: Vec<usize> = (0..instance.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }

    for &victim in order.iter() {
        for _ in 0..4 {
            // Thresholds straddle the task ranges so the probes hit empty,
            // partial and full candidate sets.
            let free = MemSize::from_bytes(rng.gen_range(0..=max_mem.saturating_add(1)));
            let bound = Time::from_ticks(rng.gen_range(0..=max_comm.saturating_add(1)));
            if let Err(m) = probe_queries(instance, &alive, &index, &comm_only, free, bound) {
                panic!("{context}: {m}");
            }
        }
        index.remove(TaskId(victim));
        comm_only.remove(TaskId(victim));
        alive[victim] = false;
        assert_eq!(index.len(), alive.iter().filter(|a| **a).count());
    }
    assert!(index.is_empty());
    assert!(comm_only.is_empty());
}

#[test]
fn index_agrees_with_naive_scans_on_random_instances() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        for n_tasks in [1usize, 2, 7, 25, 60] {
            for factor in [1.0, 1.3] {
                let coupled = random_instance(
                    &mut rng,
                    RandomInstanceConfig {
                        n_tasks,
                        capacity_factor: factor,
                        ..Default::default()
                    },
                );
                check_against_oracle(&coupled, &mut rng, &format!("coupled {seed}/{n_tasks}"));
                let decoupled = random_instance_decoupled_memory(&mut rng, n_tasks, factor);
                check_against_oracle(&decoupled, &mut rng, &format!("decoupled {seed}/{n_tasks}"));
            }
        }
    }
}

#[test]
fn index_agrees_with_naive_scans_under_heavy_ties() {
    // Tiny value domains force many equal communication times, equal
    // ratios, and equal memory footprints — the cases where tie-breaking by
    // id is the only thing separating candidates. Includes zero-comm tasks
    // (infinite ratio) and zero-comm/zero-comp tasks (ratio 1 by the
    // `Time::ratio` convention).
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..30 {
        let n = rng.gen_range(1..=18);
        let mut builder = InstanceBuilder::new().capacity(MemSize::from_bytes(6));
        for i in 0..n {
            let comm = rng.gen_range(0..=2u64);
            let comp = rng.gen_range(0..=2u64);
            let mem = rng.gen_range(0..=4u64);
            builder = builder.task(dts_core::Task::new(
                format!("t{i}"),
                Time::units_int(comm),
                Time::units_int(comp),
                MemSize::from_bytes(mem),
            ));
        }
        let instance = builder.build().expect("mem <= 4 fits capacity 6");
        check_against_oracle(&instance, &mut rng, &format!("ties round {round}"));
    }
}

#[test]
#[should_panic(expected = "comm_only")]
fn ratio_query_on_comm_only_index_panics() {
    let instance = InstanceBuilder::new()
        .capacity(MemSize::from_bytes(6))
        .task(dts_core::Task::new(
            "a",
            Time::units_int(1),
            Time::units_int(1),
            MemSize::from_bytes(1),
        ))
        .build()
        .unwrap();
    let index = CandidateIndex::comm_only(&instance);
    let _ = index.best_ratio_candidate_within(MemSize::from_bytes(6), Time::units_int(1));
}

/// Replays a seeded interleaving of removals, restores and query probes on
/// a generated instance, checking every probe against the naive oracle.
/// Pure function of `(spec, op_seed)`, so a failing interleaving shrinks
/// with the instance.
fn check_interleaved(spec: &dts_core::testgen::InstanceSpec, op_seed: u64) -> Result<(), String> {
    let instance = spec.build();
    let mut index = CandidateIndex::new(&instance);
    let mut comm_only = CandidateIndex::comm_only(&instance);
    let mut alive = vec![true; instance.len()];
    let mut rng = StdRng::seed_from_u64(op_seed);
    let max_mem = instance
        .tasks()
        .iter()
        .map(|t| t.mem.bytes())
        .max()
        .unwrap_or(0);
    let max_comm = instance
        .tasks()
        .iter()
        .map(|t| t.comm_time.ticks())
        .max()
        .unwrap_or(0);

    for _ in 0..4 * instance.len().max(8) {
        match rng.gen_range(0u32..4) {
            // Remove a random alive task.
            0 => {
                let candidates: Vec<usize> = (0..alive.len()).filter(|&i| alive[i]).collect();
                if let Some(&victim) = candidates.get(rng.gen_range(0..candidates.len().max(1))) {
                    index.remove(TaskId(victim));
                    comm_only.remove(TaskId(victim));
                    alive[victim] = false;
                }
            }
            // Restore a random removed task.
            1 => {
                let candidates: Vec<usize> = (0..alive.len()).filter(|&i| !alive[i]).collect();
                if let Some(&revived) = candidates.get(rng.gen_range(0..candidates.len().max(1))) {
                    index.restore(TaskId(revived));
                    comm_only.restore(TaskId(revived));
                    alive[revived] = true;
                }
            }
            // Probe all queries with random thresholds.
            _ => {
                let free = MemSize::from_bytes(rng.gen_range(0..=max_mem.saturating_add(1)));
                let bound = Time::from_ticks(rng.gen_range(0..=max_comm.saturating_add(1)));
                probe_queries(&instance, &alive, &index, &comm_only, free, bound)?;
            }
        }
        let live = alive.iter().filter(|a| **a).count();
        if index.len() != live || comm_only.len() != live {
            return Err(format!(
                "length drifted: index {} / comm_only {} vs oracle {live}",
                index.len(),
                comm_only.len()
            ));
        }
    }
    Ok(())
}

microcheck::property! {
    /// Random remove/restore/query interleavings on the default task
    /// domain agree with the naive oracle at every step.
    fn interleavings_agree_with_the_oracle(
        (spec, op_seed) in (
            dts_core::testgen::instance_gen(1..=40),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 150,
    ) {
        check_interleaved(&spec, op_seed)?;
    }

    /// The same under heavy ties: tiny value domains where id tie-breaking
    /// is all that separates candidates (including zero-comm tasks with
    /// infinite acceleration ratios).
    fn tie_heavy_interleavings_agree_with_the_oracle(
        (spec, op_seed) in (
            dts_core::testgen::instance_gen_with(
                dts_core::testgen::tie_heavy_task_gen(),
                1..=18,
                0..=2,
            ),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 150,
    ) {
        check_interleaved(&spec, op_seed)?;
    }

    /// Continuous communication times under the memory cliff: nearly
    /// every equal-communication run is a singleton and run champions are
    /// routinely memory-blocked, so the ratio query's stage-2 search —
    /// whole ⌈√m⌉-run buckets through the outer champion tree, boundary
    /// buckets run by run — does all the work. The regression domain of
    /// the bucketed search.
    fn continuous_comm_memory_cliff_interleavings_agree_with_the_oracle(
        (spec, op_seed) in (
            dts_core::testgen::continuous_comm_memory_cliff_instance_gen(1..=60),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 100,
    ) {
        check_interleaved(&spec, op_seed)?;
    }

    /// And at the top of the `u64` memory domain, where a removed slot's
    /// sentinel must stay distinguishable from a real `u64::MAX`-byte task.
    fn u64_scale_interleavings_agree_with_the_oracle(
        (spec, op_seed) in (
            dts_core::testgen::instance_gen_with(
                dts_core::testgen::task_gen(0..=3, 0..=3, u64::MAX - 3..=u64::MAX),
                1..=10,
                0..=1,
            ),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 60,
    ) {
        check_interleaved(&spec, op_seed)?;
    }
}

/// A deliberately broken claim — "the ratio query ignores memory", i.e.
/// the best-ratio candidate under one free byte always equals the one
/// under unbounded memory — must not only fail but shrink to the smallest
/// counterexample of the domain: a single task of two bytes (the least
/// memory that cannot fit in one byte) with zero communication and
/// computation time and zero capacity slack. Reaching that exact witness
/// demonstrates the shrinker finds global minima on the instance domain,
/// not just smaller failures.
#[test]
fn broken_memory_blindness_claim_shrinks_to_the_minimal_instance() {
    let failure = microcheck::check(
        &microcheck::Config::default(),
        &dts_core::testgen::instance_gen(1..=40),
        |spec| {
            let instance = spec.build();
            let index = CandidateIndex::new(&instance);
            let bound = Time::units_int(31); // covers the whole domain
            microcheck::prop_assert_eq!(
                index.best_ratio_candidate_within(MemSize::from_bytes(1), bound),
                index.best_ratio_candidate_within(MemSize::UNBOUNDED, bound)
            );
            Ok(())
        },
    )
    .expect_err("the memory-blindness claim is false");

    let minimal = failure.minimal;
    // Still a counterexample after minimization...
    let instance = minimal.build();
    let index = CandidateIndex::new(&instance);
    let bound = Time::units_int(31);
    assert_ne!(
        index.best_ratio_candidate_within(MemSize::from_bytes(1), bound),
        index.best_ratio_candidate_within(MemSize::UNBOUNDED, bound)
    );
    // ...and of minimal size: one task, two bytes, all times and the
    // capacity slack at zero. Any single-task counterexample needs
    // mem >= 2, so this is the unique minimum.
    assert_eq!(
        minimal.tasks,
        vec![dts_core::testgen::TaskSpec {
            comm: 0,
            comp: 0,
            mem: 2,
        }],
        "minimized counterexample should be the two-byte unit witness"
    );
    assert_eq!(minimal.slack, 0);
}

#[test]
fn index_handles_u64_scale_memory() {
    // A u64::MAX-byte task must stay distinguishable from a removed slot
    // (the index stores absence as u128::MAX, above any real size).
    let instance = InstanceBuilder::new()
        .capacity(MemSize::UNBOUNDED)
        .task(dts_core::Task::new(
            "a",
            Time::units_int(1),
            Time::units_int(1),
            MemSize::UNBOUNDED,
        ))
        .task(dts_core::Task::new(
            "b",
            Time::units_int(2),
            Time::units_int(1),
            MemSize::from_bytes(2),
        ))
        .build()
        .unwrap();
    let mut index = CandidateIndex::new(&instance);
    assert_eq!(
        index.min_comm_candidate(MemSize::UNBOUNDED),
        Some(TaskId(0))
    );
    assert_eq!(
        index.min_comm_candidate(MemSize::from_bytes(u64::MAX - 1)),
        Some(TaskId(1))
    );
    index.remove(TaskId(0));
    assert_eq!(
        index.min_comm_candidate(MemSize::UNBOUNDED),
        Some(TaskId(1))
    );
    index.remove(TaskId(1));
    assert_eq!(index.min_comm_candidate(MemSize::UNBOUNDED), None);
}
