//! Property tests for the execution-model layer: dominance of the overlap
//! models over the explicit baseline, exact equivalence of single-stream
//! execution, and memory feasibility under every model.
//!
//! The broken-claim tests at the bottom deliberately check false lemmas
//! ("duplex is never worse than two streams", "zero-efficiency implicit
//! overlap equals explicit transfers") and pin the minimal counterexamples
//! the shrinker reaches, so regressions in either the models or the
//! shrinker surface as readable witnesses.

use dts_core::memory::MemoryProfile;
use dts_core::prelude::*;
use dts_core::simulate::simulate_sequence_with;
use dts_core::testgen::{self, InstanceSpec};
use rand::prelude::*;

/// The seeded order the properties replay: a shuffle of the task ids, a
/// pure function of `(instance size, order_seed)` so failures shrink with
/// the instance.
fn seeded_order(instance: &Instance, order_seed: u64) -> Vec<TaskId> {
    let mut order = instance.task_ids();
    order.shuffle(&mut StdRng::seed_from_u64(order_seed));
    order
}

fn makespan_under(
    spec: &InstanceSpec,
    order_seed: u64,
    model: ExecutionModel,
) -> std::result::Result<Time, String> {
    let instance = spec.build();
    let order = seeded_order(&instance, order_seed);
    let schedule =
        simulate_sequence_with(&instance, &order, model).map_err(|e| format!("{model}: {e}"))?;
    Ok(schedule.makespan(&instance))
}

microcheck::property! {
    /// A full-duplex link never lengthens a schedule: for any instance and
    /// any order, the duplex makespan is at most the explicit one.
    fn duplex_never_worse_than_explicit(
        (spec, order_seed) in (
            testgen::transfer_bound_instance_gen(1..=24),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 120,
    ) {
        let explicit = makespan_under(&spec, order_seed, ExecutionModel::Explicit)?;
        let duplex = makespan_under(&spec, order_seed, ExecutionModel::Duplex)?;
        microcheck::prop_assert!(
            duplex <= explicit,
            "duplex {duplex} > explicit {explicit}"
        );
    }

    /// More streams never hurt either: for every `k >= 2`, the k-stream
    /// makespan is at most the explicit one.
    fn streams_never_worse_than_explicit(
        (spec, order_seed) in (
            testgen::transfer_bound_instance_gen(1..=24),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 80,
    ) {
        let explicit = makespan_under(&spec, order_seed, ExecutionModel::Explicit)?;
        for k in [2usize, 3, 8] {
            let streams = makespan_under(&spec, order_seed, ExecutionModel::Streams { k })?;
            microcheck::prop_assert!(
                streams <= explicit,
                "streams:{k} {streams} > explicit {explicit}"
            );
        }
    }

    /// A single stream is not merely equal in makespan — it produces the
    /// byte-identical schedule of the explicit model, on both executors.
    fn single_stream_is_exactly_explicit(
        (spec, order_seed) in (
            testgen::transfer_bound_tie_heavy_instance_gen(1..=20),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 120,
    ) {
        let instance = spec.build();
        let order = seeded_order(&instance, order_seed);
        let explicit = simulate_sequence_with(&instance, &order, ExecutionModel::Explicit)
            .map_err(|e| e.to_string())?;
        let one_stream =
            simulate_sequence_with(&instance, &order, ExecutionModel::Streams { k: 1 })
                .map_err(|e| e.to_string())?;
        microcheck::prop_assert_eq!(explicit.entries(), one_stream.entries());
    }

    /// Every model respects the memory capacity: the held-memory profile of
    /// any produced schedule never exceeds the instance's capacity.
    fn all_models_respect_memory_feasibility(
        (spec, order_seed) in (
            testgen::transfer_bound_instance_gen(1..=24),
            microcheck::gens::u64_in(0..=u64::MAX),
        ),
        cases = 80,
    ) {
        let instance = spec.build();
        let order = seeded_order(&instance, order_seed);
        for model in [
            ExecutionModel::Explicit,
            ExecutionModel::Duplex,
            ExecutionModel::Streams { k: 3 },
            ExecutionModel::IMPLICIT_FULL,
            ExecutionModel::Implicit {
                efficiency: OverlapEfficiency::from_ppm(500_000).expect("half is in range"),
            },
        ] {
            let schedule = simulate_sequence_with(&instance, &order, model)
                .map_err(|e| format!("{model}: {e}"))?;
            microcheck::prop_assert_eq!(schedule.len(), instance.len());
            let profile = MemoryProfile::of_schedule(&instance, &schedule);
            microcheck::prop_assert!(
                profile.peak() <= instance.capacity(),
                "{model}: peak {} exceeds capacity {}",
                profile.peak(),
                instance.capacity()
            );
            microcheck::prop_assert_eq!(profile.first_violation(instance.capacity()), None);
        }
    }
}

/// The false lemma "strict round-robin duplex is never worse than two
/// earliest-free streams" must fail — round-robin can park a short
/// transfer behind a long one while the other direction sits idle — and
/// shrink to the smallest witness of the transfer-bound domain: three
/// minimum-length transfers with one bumped to 9 units, so the third is
/// forced onto the busy channel. All memories shrink to one byte and the
/// capacity slack stays large enough (2) to keep memory out of the
/// picture.
#[test]
fn broken_duplex_beats_streams_claim_shrinks_to_the_round_robin_witness() {
    let gen = (
        testgen::transfer_bound_instance_gen(1..=16),
        microcheck::gens::u64_in(0..=u64::MAX),
    );
    let failure = microcheck::check(
        &microcheck::Config::default(),
        &gen,
        |(spec, order_seed)| {
            let duplex = makespan_under(spec, *order_seed, ExecutionModel::Duplex)?;
            let streams = makespan_under(spec, *order_seed, ExecutionModel::Streams { k: 2 })?;
            microcheck::prop_assert!(duplex <= streams, "duplex {duplex} > streams:2 {streams}");
            Ok(())
        },
    )
    .expect_err("round-robin duplex can lose to earliest-free streams");

    let (minimal, order_seed) = failure.minimal;
    // Still a counterexample after minimization...
    let duplex = makespan_under(&minimal, order_seed, ExecutionModel::Duplex).unwrap();
    let streams = makespan_under(&minimal, order_seed, ExecutionModel::Streams { k: 2 }).unwrap();
    assert!(
        duplex > streams,
        "minimal witness lost: {duplex} vs {streams}"
    );
    // ...and minimal: any two-transfer instance assigns one transfer per
    // direction under both policies, so three transfers are necessary, and
    // the round-robin penalty needs exactly one comm above the domain
    // minimum of 8.
    assert_eq!(minimal.tasks.len(), 3, "witness: {:?}", minimal.tasks);
    let mut comms: Vec<u64> = minimal.tasks.iter().map(|t| t.comm).collect();
    comms.sort_unstable();
    assert_eq!(comms, vec![8, 8, 9], "witness comms: {:?}", minimal.tasks);
    assert!(minimal.tasks.iter().all(|t| t.comp == 0 && t.mem == 1));
}

/// The false lemma "implicit overlap at zero efficiency equals the
/// explicit model" must fail — a fused transfer+compute phase cannot
/// overlap the next transfer with the previous computation the way the
/// explicit model does — and shrink to the smallest witness: two
/// minimum-length transfers where only the first computes (for one unit),
/// with one byte of capacity slack so the second transfer may start while
/// the first task still holds its memory.
#[test]
fn broken_zero_efficiency_implicit_claim_shrinks_to_the_overlap_witness() {
    let gen = (
        testgen::transfer_bound_instance_gen(1..=16),
        microcheck::gens::u64_in(0..=u64::MAX),
    );
    let failure = microcheck::check(
        &microcheck::Config::default(),
        &gen,
        |(spec, order_seed)| {
            let explicit = makespan_under(spec, *order_seed, ExecutionModel::Explicit)?;
            let fused = makespan_under(
                spec,
                *order_seed,
                ExecutionModel::Implicit {
                    efficiency: OverlapEfficiency::NONE,
                },
            )?;
            microcheck::prop_assert_eq!(explicit, fused);
            Ok(())
        },
    )
    .expect_err("zero-efficiency implicit overlap serializes what explicit overlaps");

    let (minimal, order_seed) = failure.minimal;
    let explicit = makespan_under(&minimal, order_seed, ExecutionModel::Explicit).unwrap();
    let fused = makespan_under(
        &minimal,
        order_seed,
        ExecutionModel::Implicit {
            efficiency: OverlapEfficiency::NONE,
        },
    )
    .unwrap();
    assert!(
        explicit < fused,
        "minimal witness lost: {explicit} vs {fused}"
    );
    assert_eq!(minimal.tasks.len(), 2, "witness: {:?}", minimal.tasks);
    let mut tasks = minimal.tasks.clone();
    tasks.sort_by_key(|t| std::cmp::Reverse(t.comp));
    assert_eq!(tasks[0].comm, 8);
    assert_eq!(
        tasks[0].comp, 1,
        "one task must compute: {:?}",
        minimal.tasks
    );
    assert_eq!(tasks[1].comm, 8);
    assert_eq!(tasks[1].comp, 0);
    assert!(minimal.tasks.iter().all(|t| t.mem == 1));
    assert_eq!(minimal.slack, 1, "slack must let the transfers overlap");
}

/// Both executors agree under every model (the infinite-memory executor on
/// instances whose capacity never binds).
#[test]
fn finite_and_infinite_executors_agree_when_memory_never_binds() {
    let mut rng = StdRng::seed_from_u64(31);
    for trial in 0..40 {
        let n = rng.gen_range(1..=15);
        let tasks: Vec<Task> = (0..n)
            .map(|i| {
                Task::new(
                    format!("t{i}"),
                    Time::units_int(rng.gen_range(0..=20)),
                    Time::units_int(rng.gen_range(0..=20)),
                    MemSize::from_bytes(rng.gen_range(1..=4)),
                )
            })
            .collect();
        // Capacity covers every task at once, so memory waits never occur.
        let instance = Instance::new(tasks, MemSize::from_bytes(4 * n as u64)).unwrap();
        let order = seeded_order(&instance, trial);
        for model in [
            ExecutionModel::Explicit,
            ExecutionModel::Duplex,
            ExecutionModel::Streams { k: 2 },
            ExecutionModel::IMPLICIT_FULL,
        ] {
            let finite = simulate_sequence_with(&instance, &order, model).unwrap();
            let infinite =
                dts_core::simulate::simulate_sequence_infinite_with(&instance, &order, model)
                    .unwrap();
            assert_eq!(
                finite.entries(),
                infinite.entries(),
                "{model} diverges on trial {trial}"
            );
        }
    }
}
