//! Model checking of [`dts_core::cache::SolveCache`]'s solve-exactly-once
//! contract under *all* interleavings, via the vendored `microloom`
//! checker.
//!
//! This file is empty under a normal build; run it with
//!
//! ```text
//! RUSTFLAGS="--cfg microloom" cargo test -p dts_core --test cache_model
//! ```
//!
//! which swaps the `dts_core::sync` façade to microloom's instrumented
//! mutex, so the cache being checked is exactly the cache the scheduling
//! daemon ships. Bookkeeping inside the models uses plain `std` atomics:
//! only one model thread runs at a time, so they are race-free and add no
//! scheduling decisions.
#![cfg(microloom)]

use dts_core::cache::SolveCache;
use dts_core::error::CoreError;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc;

/// Two concurrent identical requests solve exactly once, and both receive
/// the one solved value — the cache-correctness contract of the serving
/// layer — under every interleaving of the two callers.
#[test]
fn concurrent_identical_requests_solve_exactly_once() {
    let report = microloom::check(|| {
        let cache: Arc<SolveCache<u32, u32>> = Arc::new(SolveCache::new(4));
        let solves = Arc::new(StdAtomicUsize::new(0));
        let hits = Arc::new(StdAtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let solves = Arc::clone(&solves);
                let hits = Arc::clone(&hits);
                microloom::thread::spawn(move || {
                    let (value, hit) = cache
                        .get_or_solve(7, || {
                            solves.fetch_add(1, StdOrdering::SeqCst);
                            Ok(42)
                        })
                        .expect("the solver never fails");
                    assert_eq!(value, 42, "every caller sees the solved value");
                    if hit {
                        hits.fetch_add(1, StdOrdering::SeqCst);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("model threads join cleanly");
        }
        assert_eq!(
            solves.load(StdOrdering::SeqCst),
            1,
            "exactly one caller runs the solver"
        );
        assert_eq!(
            hits.load(StdOrdering::SeqCst),
            1,
            "exactly one caller is a hit (the other was the solver)"
        );
    })
    .expect("solve-exactly-once must hold under all interleavings");
    assert!(report.executions > 1, "explored only {report:?}");
}

/// Distinct keys never serialize into one solve: both callers run their
/// own solver whatever the interleaving, and each reads back its own
/// value.
#[test]
fn distinct_keys_solve_independently() {
    microloom::check(|| {
        let cache: Arc<SolveCache<u32, u32>> = Arc::new(SolveCache::new(4));
        let solves = Arc::new(StdAtomicUsize::new(0));
        let workers: Vec<_> = (0..2u32)
            .map(|key| {
                let cache = Arc::clone(&cache);
                let solves = Arc::clone(&solves);
                microloom::thread::spawn(move || {
                    let (value, hit) = cache
                        .get_or_solve(key, || {
                            solves.fetch_add(1, StdOrdering::SeqCst);
                            Ok(key * 10)
                        })
                        .expect("the solver never fails");
                    assert_eq!(value, key * 10, "keys never cross values");
                    assert!(!hit, "distinct keys cannot hit each other");
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("model threads join cleanly");
        }
        assert_eq!(solves.load(StdOrdering::SeqCst), 2);
    })
    .expect("per-key isolation must hold under all interleavings");
}

/// A failing solve is returned to its caller only and leaves nothing
/// cached: the concurrent caller for the same key either solved first
/// (and the failer never ran — the cache answered from the cell) or
/// becomes the new solver after the failure. In every interleaving the
/// succeeding caller gets the value, never the error.
#[test]
fn failed_solves_are_not_cached_and_do_not_poison_waiters() {
    microloom::check(|| {
        let cache: Arc<SolveCache<u32, u32>> = Arc::new(SolveCache::new(4));
        let failer = {
            let cache = Arc::clone(&cache);
            microloom::thread::spawn(move || {
                // May race ahead (error observed) or behind (hit observed).
                match cache.get_or_solve(7, || Err(CoreError::Internal("flaky".into()))) {
                    Ok((value, hit)) => {
                        assert_eq!(value, 42, "a hit must carry the good value");
                        assert!(hit, "the failer never solves successfully");
                    }
                    Err(e) => assert_eq!(e, CoreError::Internal("flaky".into())),
                }
            })
        };
        let succeeder = {
            let cache = Arc::clone(&cache);
            microloom::thread::spawn(move || {
                let (value, _) = cache
                    .get_or_solve(7, || Ok(42))
                    .expect("the good solver must never see the other caller's failure");
                assert_eq!(value, 42);
            })
        };
        failer.join().expect("failer joins cleanly");
        succeeder.join().expect("succeeder joins cleanly");
    })
    .expect("failure isolation must hold under all interleavings");
}

/// LRU recency is preserved under concurrency: with a capacity-2 cache
/// holding keys 1 and 2 where key 1 was re-requested (refreshing its
/// recency), two concurrent callers inserting key 3 evict exactly one
/// entry — and the victim is the stale key 2, never the refreshed key 1,
/// whatever the interleaving. Under the previous FIFO policy key 1 would
/// have been the victim.
#[test]
fn concurrent_inserts_evict_the_least_recently_used_key() {
    microloom::check(|| {
        let cache: Arc<SolveCache<u32, u32>> = Arc::new(SolveCache::new(2));
        // Deterministic pre-state, before any model threads exist.
        cache.get_or_solve(1, || Ok(10)).expect("pre-fill");
        cache.get_or_solve(2, || Ok(20)).expect("pre-fill");
        let (_, hit) = cache.get_or_solve(1, || Ok(10)).expect("refresh");
        assert!(hit, "the refresh touch must be a hit");
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                microloom::thread::spawn(move || {
                    let (value, _) = cache
                        .get_or_solve(3, || Ok(30))
                        .expect("the solver never fails");
                    assert_eq!(value, 30);
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("model threads join cleanly");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "the capacity bound holds");
        assert_eq!(stats.evictions, 1, "one insert means one eviction");
        let (value, hit) = cache.get_or_solve(1, || Ok(99)).expect("post-check");
        assert_eq!(
            (value, hit),
            (10, true),
            "the recently used key must survive the eviction"
        );
        let (_, hit) = cache.get_or_solve(2, || Ok(20)).expect("post-check");
        assert!(!hit, "the stale key was the eviction victim");
    })
    .expect("LRU eviction order must hold under all interleavings");
}

/// The broken-lemma counterpart: a deliberately wrong "check then solve"
/// cache (lookup and insert as two separate critical sections, no cell
/// lock held across the solve) double-solves under some interleaving,
/// and the checker must find it. This pins that the exploration actually
/// covers the race the shipped design closes.
#[test]
fn broken_check_then_act_cache_is_caught() {
    let failure = microloom::check(|| {
        use microloom::sync::Mutex as ModelMutex;

        let map: Arc<ModelMutex<Option<u32>>> = Arc::new(ModelMutex::new(None));
        let solves = Arc::new(StdAtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let map = Arc::clone(&map);
                let solves = Arc::clone(&solves);
                microloom::thread::spawn(move || {
                    // BUG: the lock is released between the miss check and
                    // the insert, so two callers can both observe a miss.
                    let cached = *map.lock();
                    if cached.is_none() {
                        solves.fetch_add(1, StdOrdering::SeqCst);
                        *map.lock() = Some(42);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("model threads join cleanly");
        }
        assert_eq!(
            solves.load(StdOrdering::SeqCst),
            1,
            "solve must run exactly once"
        );
    })
    .expect_err("the check-then-act cache must double-solve somewhere");
    assert!(
        failure.message.contains("solve must run exactly once"),
        "unexpected failure: {}",
        failure.message
    );
}
