//! Model checking of [`dts_core::pool::run_indexed_pool`]'s contracts
//! under *all* interleavings, via the vendored `microloom` checker.
//!
//! This file is empty under a normal build; run it with
//!
//! ```text
//! RUSTFLAGS="--cfg microloom" cargo test -p dts_core --test pool_model
//! ```
//!
//! which swaps the `dts_core::sync` façade (and the crossbeam stub's
//! scoped threads) to microloom's instrumented types, so the pool being
//! checked is exactly the pool that ships. Bookkeeping inside the models
//! uses plain `std` atomics/mutexes: only one model thread runs at a
//! time, so they are race-free and add no scheduling decisions.
#![cfg(microloom)]

use dts_core::error::CoreError;
use dts_core::pool::run_indexed_pool;
use std::sync::atomic::{
    AtomicBool as StdAtomicBool, AtomicUsize as StdAtomicUsize, Ordering as StdOrdering,
};
use std::sync::Arc;

/// Every index is claimed exactly once — no index skipped, none run
/// twice — and the results come back in index order, under every
/// interleaving of two workers over three items.
#[test]
fn every_index_claimed_exactly_once() {
    let report = microloom::check(|| {
        let claims: [StdAtomicUsize; 3] = Default::default();
        let out = run_indexed_pool(3, 2, |i| {
            claims[i].fetch_add(1, StdOrdering::Relaxed);
            Ok(10 * i)
        })
        .expect("all jobs succeed");
        assert_eq!(out, vec![0, 10, 20], "results must be in index order");
        for (i, claim) in claims.iter().enumerate() {
            assert_eq!(
                claim.load(StdOrdering::Relaxed),
                1,
                "index {i} must be claimed exactly once"
            );
        }
    })
    .expect("claim-once must hold under all interleavings");
    assert!(report.executions > 1, "explored only {report:?}");
}

/// When both workers fail on their respective items, the reported error
/// is the lowest-indexed one — the error a sequential loop stops at —
/// no matter which worker fails, publishes, or returns first.
#[test]
fn lowest_index_error_wins_under_racing_failures() {
    microloom::check(|| {
        let err = run_indexed_pool(2, 2, |i| -> dts_core::error::Result<usize> {
            Err(CoreError::Internal(format!("job {i}")))
        })
        .expect_err("every job fails");
        assert_eq!(
            err,
            CoreError::Internal("job 0".into()),
            "the lowest-indexed failure must win"
        );
    })
    .expect("lowest-index-error-wins must hold under all interleavings");
}

/// No result slot is ever written twice: each job's value appears in the
/// output exactly once, even when a concurrent failure is aborting the
/// pool while other jobs are still completing.
#[test]
fn no_result_slot_written_twice_under_a_racing_failure() {
    microloom::check(|| {
        let runs: [StdAtomicUsize; 3] = Default::default();
        let result = run_indexed_pool(3, 2, |i| {
            runs[i].fetch_add(1, StdOrdering::Relaxed);
            if i == 1 {
                Err(CoreError::Internal("job 1".into()))
            } else {
                Ok(i)
            }
        });
        for (i, run) in runs.iter().enumerate() {
            assert!(
                run.load(StdOrdering::Relaxed) <= 1,
                "index {i} must run at most once"
            );
        }
        // Index 1 always runs (indices are claimed in increasing order up
        // to the failure), so the pool must report its error.
        assert_eq!(result, Err(CoreError::Internal("job 1".into())));
    })
    .expect("claim-at-most-once must hold under all interleavings");
}

/// The Release/Acquire abort flag actually stops the pool: in at least
/// one explored interleaving a worker observes the abort and item 2 is
/// never claimed. (Universally, abort can only shrink the set of claimed
/// indices — that is covered by the at-most-once assertions above.)
#[test]
fn abort_is_visible_and_prevents_wasted_claims() {
    let some_schedule_stops_early = Arc::new(StdAtomicBool::new(false));
    let witness = Arc::clone(&some_schedule_stops_early);
    microloom::check(move || {
        let ran_last = Arc::new(StdAtomicBool::new(false));
        let seen = Arc::clone(&ran_last);
        let result = run_indexed_pool(3, 2, move |i| {
            if i == 0 {
                return Err(CoreError::Internal("job 0".into()));
            }
            if i == 2 {
                seen.store(true, StdOrdering::Relaxed);
            }
            Ok(i)
        });
        assert_eq!(result, Err(CoreError::Internal("job 0".into())));
        if !ran_last.load(StdOrdering::Relaxed) {
            witness.store(true, StdOrdering::Relaxed);
        }
    })
    .expect("the abort path must be panic-free under all interleavings");
    assert!(
        some_schedule_stops_early.load(StdOrdering::Relaxed),
        "in some interleaving the abort must prevent item 2 from running"
    );
}

/// A panicking job surfaces as `CoreError::Internal` carrying the item
/// index and the panic payload, under every interleaving — the panic is
/// caught inside the worker, so it aborts the pool like an error instead
/// of tearing down the scope.
#[test]
fn panic_payloads_surface_as_internal_errors() {
    // Keep each failing execution quiet: the job's panic is caught by the
    // pool, but the default hook would still print a backtrace per
    // explored schedule.
    let prior = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = microloom::check(|| {
        let err = run_indexed_pool(2, 2, |i| {
            if i == 1 {
                panic!("kaboom");
            }
            Ok(i)
        })
        .expect_err("the panicking job must fail the pool");
        match err {
            CoreError::Internal(msg) => {
                assert!(
                    msg.contains("item #1") && msg.contains("kaboom"),
                    "panic detail lost: {msg}"
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    });
    std::panic::set_hook(prior);
    outcome.expect("panic containment must hold under all interleavings");
}

/// The broken-lemma counterpart: a deliberately wrong "first error wins"
/// implementation (each failing worker blindly stores its index into a
/// shared slot, last write wins) violates lowest-index-wins, and the
/// checker must both find the violation and replay it deterministically.
#[test]
fn broken_last_write_error_slot_is_caught_deterministically() {
    fn broken_model() -> microloom::Failure {
        microloom::check(|| {
            use microloom::sync::atomic::{AtomicUsize, Ordering};
            use microloom::sync::Arc as ModelArc;

            let error_slot = ModelArc::new(AtomicUsize::new(usize::MAX));
            let workers: Vec<_> = (0..2)
                .map(|index| {
                    let slot = ModelArc::clone(&error_slot);
                    microloom::thread::spawn(move || {
                        // BUG: unconditional store — the *last* failing
                        // worker wins, not the lowest-indexed one. The
                        // shipped pool merges at join instead.
                        slot.store(index, Ordering::SeqCst);
                    })
                })
                .collect();
            for worker in workers {
                worker.join().unwrap();
            }
            assert_eq!(
                error_slot.load(Ordering::SeqCst),
                0,
                "lowest-index error must win"
            );
        })
        .expect_err("the last-write-wins slot must be caught")
    }

    let first = broken_model();
    let second = broken_model();
    assert!(
        first.message.contains("lowest-index error must win"),
        "unexpected failure: {}",
        first.message
    );
    // Deterministic replay: the printable schedule is byte-identical
    // across independent runs.
    assert_eq!(first.trace, second.trace);
    assert_eq!(first.decisions, second.decisions);
    assert!(
        first.trace.contains("usize.store"),
        "trace lost its op log:\n{}",
        first.trace
    );
}
