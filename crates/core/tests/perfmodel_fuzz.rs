//! Fuzz-hardening of the dts-cost-model importer: every corruption of a
//! valid model file must surface as a *typed* `CoreError` — never a
//! panic, never a silently wrong model.
//!
//! Mirrors `dts_workloads/tests/trace_fuzz.rs` for the cost-model format:
//! seeded properties cover truncation at every byte offset, unknown
//! versions and keys, negative and float coefficients and empty history
//! tables. One deliberately *broken* claim is checked via
//! [`microcheck::check`]'s panic-free entry point to pin the shrinker's
//! minimal malformed witness, and a calibrate → save → load → predict
//! property proves fitted models survive the disk round trip bit-exactly.

use dts_core::perfmodel::{
    self, CalibrationObservations, ComputeBackend, CostModel, CostModelSpec, LinearFit, LinkClass,
    RegressionModel,
};
use dts_core::{CoreError, MemSize, Task, Time};
use microcheck::{gens, prop_assert, property, Config};

/// A fixed valid exported regression-model file the corruption properties
/// start from.
fn valid_json() -> String {
    let fit = |alpha_us, beta_ps_per_byte| LinearFit {
        alpha_us,
        beta_ps_per_byte,
        samples: 12,
    };
    let spec = CostModelSpec::Regression(
        RegressionModel::new(
            vec![(LinkClass::HostToDevice, fit(7, 1_500_000))],
            vec![(ComputeBackend::Cpu, fit(3, 250_000))],
        )
        .expect("the sample model is well-formed"),
    );
    perfmodel::export_model(&spec).expect("well-formed models export")
}

/// A history-model file with the given transfer buckets (compute stays
/// valid), for properties that corrupt the bucket list.
fn history_json(transfer_buckets: &str) -> String {
    format!(
        r#"{{"format": "dts-cost-model", "version": 1, "backend": "history",
 "transfer": [ {{ "link": "h2d", "buckets": [{transfer_buckets}] }} ],
 "compute": [ {{ "backend": "cpu", "buckets": [ {{ "bucket": 0, "mean_us": 4, "samples": 2 }} ] }} ]}}"#
    )
}

/// `true` iff the importer failed with a typed error (the only acceptable
/// outcomes for malformed input).
fn rejected_cleanly(json: &str) -> bool {
    matches!(
        perfmodel::import_model(json),
        Err(CoreError::Serialization(_)) | Err(CoreError::InvalidCostModel(_))
    )
}

property! {
    /// Truncating a valid model file at any byte offset yields a clean
    /// Serialization or InvalidCostModel error — the importer never
    /// panics on and never accepts a prefix.
    fn truncated_model_files_are_rejected_cleanly(cut in gens::usize_in(0..=1023)) {
        let json = valid_json();
        if cut >= json.trim_end().len() {
            // Beyond the last meaningful byte nothing is corrupted: the
            // file ends in a newline, and losing only trailing whitespace
            // still leaves valid JSON.
            return Ok(());
        }
        let truncated = &json[..cut];
        prop_assert!(
            rejected_cleanly(truncated),
            "truncation at byte {cut} was not rejected cleanly"
        );
    }

    /// Every version other than the supported one is rejected with a
    /// message naming the offending version.
    fn unknown_versions_are_rejected(version in gens::u64_in(0..=1_000_000)) {
        if version == perfmodel::FORMAT_VERSION {
            return Ok(());
        }
        let json = valid_json().replacen(
            "\"version\": 1",
            &format!("\"version\": {version}"),
            1,
        );
        match perfmodel::import_model(&json) {
            Err(CoreError::InvalidCostModel(msg)) => prop_assert!(
                msg.contains("version") && msg.contains(&version.to_string()),
                "message `{msg}` does not name version {version}"
            ),
            other => prop_assert!(false, "version {version} accepted or mis-typed: {other:?}"),
        }
    }

    /// Unknown top-level keys are rejected, naming the key.
    fn unknown_keys_are_rejected(tag in gens::u64_in(0..=999_999)) {
        let json = valid_json().replacen(
            "\"version\": 1,",
            &format!("\"version\": 1,\n  \"junk{tag}\": 0,"),
            1,
        );
        match perfmodel::import_model(&json) {
            Err(CoreError::InvalidCostModel(msg)) => prop_assert!(
                msg.contains(&format!("junk{tag}")),
                "message `{msg}` does not name the unknown key"
            ),
            other => prop_assert!(false, "unknown key accepted or mis-typed: {other:?}"),
        }
    }

    /// Negative coefficients (JSON `-n`) are rejected with a message
    /// saying the field is negative and naming it.
    fn negative_coefficients_are_rejected((value, field) in (
        gens::u64_in(1..=1_000_000),
        gens::usize_in(0..=1),
    )) {
        let (needle, name) = if field == 0 {
            ("\"alpha_us\": 7", "alpha_us")
        } else {
            ("\"beta_ps_per_byte\": 1500000", "beta_ps_per_byte")
        };
        let json = valid_json().replacen(
            needle,
            &format!("\"{name}\": -{value}"),
            1,
        );
        match perfmodel::import_model(&json) {
            Err(CoreError::InvalidCostModel(msg)) => prop_assert!(
                msg.contains("negative") && msg.contains(name),
                "message `{msg}` does not flag `{name}` as negative"
            ),
            other => prop_assert!(false, "negative {name} accepted or mis-typed: {other:?}"),
        }
    }

    /// Float coefficients — the NaN-class failure a lossy calibration
    /// pipeline would produce — are rejected, naming the field.
    fn float_coefficients_are_rejected((mantissa, frac) in (
        gens::u64_in(0..=1_000),
        gens::u64_in(1..=9),
    )) {
        let json = valid_json().replacen(
            "\"alpha_us\": 7",
            &format!("\"alpha_us\": {mantissa}.{frac}"),
            1,
        );
        match perfmodel::import_model(&json) {
            Err(CoreError::InvalidCostModel(msg)) => prop_assert!(
                msg.contains("alpha_us"),
                "message `{msg}` does not name the float field"
            ),
            other => prop_assert!(false, "float alpha accepted or mis-typed: {other:?}"),
        }
    }

    /// An empty history table is rejected wherever the non-empty buckets
    /// sit; prediction over an empty table has no defined nearest bucket.
    fn empty_history_tables_are_rejected(seed in gens::u64_in(0..=99)) {
        // The seed only varies the (valid) compute-side mean, proving the
        // rejection is about the empty transfer table, not a coincidence
        // of the other values.
        let json = history_json("").replacen(
            "\"mean_us\": 4",
            &format!("\"mean_us\": {}", seed + 1),
            1,
        );
        prop_assert!(
            matches!(perfmodel::import_model(&json), Err(CoreError::InvalidCostModel(_))),
            "empty history table not rejected"
        );
    }

    /// Calibrate → save → load → predict: a model fitted to exact-line
    /// observations exports to a file that re-imports equal, re-exports
    /// byte-identically, and predicts the same durations after the round
    /// trip.
    fn calibrated_models_round_trip_and_predict_identically((alpha, beta, n) in (
        gens::u64_in(0..=1_000),
        gens::u64_in(0..=50),
        gens::usize_in(2..=20),
    )) {
        let line: Vec<(u64, u64)> = (0..n as u64)
            .map(|i| {
                let bytes = i * 7 + 1;
                (bytes, alpha + beta * bytes)
            })
            .collect();
        let observations = CalibrationObservations {
            transfer: line.clone(),
            compute: line,
        };
        let spec = match observations.fit_regression() {
            Ok(spec) => spec,
            Err(e) => return Err(format!("fit failed on an exact line: {e}")),
        };
        let json = match perfmodel::export_model(&spec) {
            Ok(json) => json,
            Err(e) => return Err(format!("fitted model failed to export: {e}")),
        };
        let back = match perfmodel::import_model(&json) {
            Ok(back) => back,
            Err(e) => return Err(format!("exported model failed to re-import: {e}")),
        };
        prop_assert!(back == spec, "round trip changed the model");
        match perfmodel::export_model(&back) {
            Ok(again) => prop_assert!(again == json, "re-export is not byte-identical"),
            Err(e) => return Err(format!("re-imported model failed to export: {e}")),
        }
        for bytes in [0, 1, 13, 1 << 20] {
            let probe = Task::new(
                "probe",
                Time::from_micros(0),
                Time::from_micros(0),
                MemSize::from_bytes(bytes),
            );
            prop_assert!(
                spec.transfer_time(&probe, LinkClass::HostToDevice)
                    == back.transfer_time(&probe, LinkClass::HostToDevice)
                    && spec.compute_time(&probe, ComputeBackend::Cpu)
                        == back.compute_time(&probe, ComputeBackend::Cpu),
                "predictions diverged after the round trip at {bytes} bytes"
            );
        }
    }
}

/// The broken-claim shrinker test: deliberately claim that a history
/// table holding `1 + n` copies of the same bucket imports fine. The
/// claim holds only at `n = 0` (a single bucket) — any duplicate violates
/// the strictly-ascending bucket invariant — so the shrinker must walk
/// any drawn failure down to the minimal malformed witness: exactly one
/// duplicated bucket.
#[test]
fn broken_duplicate_bucket_claim_shrinks_to_one_duplicate() {
    let gen = gens::usize_in(0..=64);
    let failure = microcheck::check(&Config::default(), &gen, |&n| {
        let buckets: Vec<String> = (0..=n)
            .map(|_| r#"{ "bucket": 3, "mean_us": 5, "samples": 1 }"#.to_string())
            .collect();
        let json = history_json(&buckets.join(", "));
        microcheck::prop_assert!(
            perfmodel::import_model(&json).is_ok(),
            "rejected a table with {n} duplicated buckets"
        );
        Ok(())
    })
    .expect_err("duplicated buckets must not all import");
    assert_eq!(
        failure.minimal, 1,
        "minimal malformed witness is one duplicated bucket"
    );
    assert!(failure.original >= 1);
}
