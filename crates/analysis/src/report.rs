//! CSV and Markdown rendering of experiment results.

use crate::experiment::ExperimentRow;
use crate::sweep::SweepRow;
use std::fmt::Write as _;

/// Renders raw sweep rows as CSV (one line per heuristic × trace × factor).
pub fn sweep_to_csv(rows: &[SweepRow]) -> String {
    let mut out =
        String::from("kernel,rank,factor,capacity_bytes,heuristic,makespan_us,omim_us,ratio\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{:.6}",
            r.kernel,
            r.rank,
            r.factor,
            r.capacity.bytes(),
            r.heuristic,
            r.makespan.ticks(),
            r.omim.ticks(),
            r.ratio
        );
    }
    out
}

/// Renders aggregated experiment rows as CSV (one line per heuristic ×
/// factor with the box-plot summary).
pub fn experiment_to_csv(rows: &[ExperimentRow]) -> String {
    let mut out = String::from("kernel,factor,label,count,mean,min,q1,median,q3,max\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
            r.kernel,
            r.factor,
            r.label,
            r.ratios.count,
            r.ratios.mean,
            r.ratios.min,
            r.ratios.q1,
            r.ratios.median,
            r.ratios.q3,
            r.ratios.max
        );
    }
    out
}

/// Renders aggregated experiment rows as a Markdown table grouped by factor,
/// the format used in `EXPERIMENTS.md`.
pub fn experiment_to_markdown(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = format!("### {title}\n\n");
    let _ = writeln!(out, "| factor | series | median ratio | q1 | q3 | max |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {:.3} | {} | {:.4} | {:.4} | {:.4} | {:.4} |",
            r.factor, r.label, r.ratios.median, r.ratios.q1, r.ratios.q3, r.ratios.max
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BoxplotStats;
    use dts_core::{MemSize, Time};

    fn sweep_row() -> SweepRow {
        SweepRow {
            kernel: "HF".into(),
            rank: 0,
            factor: 1.25,
            capacity: MemSize::from_bytes(220_000),
            heuristic: "OOLCMR".into(),
            makespan: Time::from_micros(1234),
            omim: Time::from_micros(1200),
            ratio: 1.0283,
        }
    }

    fn experiment_row() -> ExperimentRow {
        ExperimentRow {
            kernel: "HF".into(),
            factor: 1.25,
            label: "OOLCMR".into(),
            ratios: BoxplotStats::of(&[1.0, 1.05, 1.1]).unwrap(),
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sweep_to_csv(&[sweep_row()]);
        assert!(csv.starts_with("kernel,rank,factor"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("OOLCMR"));
        let csv = experiment_to_csv(&[experiment_row()]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("1.25"));
    }

    #[test]
    fn markdown_table_is_well_formed() {
        let md = experiment_to_markdown("Fig. 9", &[experiment_row(), experiment_row()]);
        assert!(md.starts_with("### Fig. 9"));
        assert_eq!(md.lines().filter(|l| l.starts_with('|')).count(), 4);
    }
}
