//! # dts-analysis
//!
//! Experiment harness for the paper's evaluation section:
//!
//! * [`stats`] — descriptive statistics (median, quartiles, whiskers,
//!   outliers) matching the box plots of Figs. 9 and 11;
//! * [`sweep`] — the memory-capacity sweep (`mc` to `2·mc` in steps of
//!   `0.125·mc`) and the per-trace, per-heuristic ratio-to-optimal runs;
//! * [`experiment`] — end-to-end experiments over trace suites, including
//!   the best-variant-per-category curves (Figs. 10, 12), the batched
//!   variant (Fig. 13) and the `lp.k` comparison (Fig. 7);
//! * [`report`] — CSV and Markdown rendering of experiment results.

#![warn(missing_docs)]

pub mod experiment;
pub mod report;
pub mod stats;
pub mod sweep;

pub use experiment::{
    best_variant_experiment, heuristic_experiment, lp_comparison_experiment, ExperimentRow,
};
pub use stats::BoxplotStats;
pub use sweep::{capacity_factors, run_trace_sweep, SweepConfig, SweepRow};
