//! Memory-capacity sweeps over traces.

use dts_chem::Trace;
use dts_core::pool::run_indexed_pool;
use dts_core::prelude::*;
use dts_flowshop::johnson::johnson_makespan;
use dts_heuristics::{run_heuristic, Heuristic};
use serde::{Deserialize, Serialize};

/// The capacity factors of the paper's evaluation: `mc` to `2·mc` in steps
/// of `0.125·mc`.
pub fn capacity_factors() -> Vec<f64> {
    (0..=8).map(|i| 1.0 + 0.125 * i as f64).collect()
}

/// Configuration of a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Heuristics to evaluate.
    pub heuristics: Vec<Heuristic>,
    /// Capacity factors (multiples of the per-trace `mc`).
    pub factors: Vec<f64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            heuristics: Heuristic::ALL.to_vec(),
            factors: capacity_factors(),
        }
    }
}

/// One measurement: a heuristic on one trace at one capacity factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Kernel of the trace (`"HF"` / `"CCSD"`).
    pub kernel: String,
    /// Process rank of the trace.
    pub rank: usize,
    /// Capacity factor (multiple of the trace's `mc`).
    pub factor: f64,
    /// Absolute capacity used.
    pub capacity: MemSize,
    /// Heuristic name.
    pub heuristic: String,
    /// Achieved makespan.
    pub makespan: Time,
    /// OMIM lower bound of the trace.
    pub omim: Time,
    /// Ratio to optimal (the paper's performance metric).
    pub ratio: f64,
}

/// Runs every configured heuristic on one trace across the capacity sweep.
///
/// ```
/// use dts_analysis::sweep::{run_trace_sweep, SweepConfig};
/// use dts_chem::suite::{generate_partial_suite, SuiteConfig};
/// use dts_chem::Kernel;
/// use dts_heuristics::Heuristic;
///
/// let traces = generate_partial_suite(Kernel::HartreeFock, &SuiteConfig::small(), 1);
/// let config = SweepConfig {
///     heuristics: vec![Heuristic::OS, Heuristic::OOLCMR],
///     factors: vec![1.0, 2.0],
/// };
/// let rows = run_trace_sweep(&traces[0], &config).unwrap();
/// assert_eq!(rows.len(), 4); // 2 heuristics x 2 capacity factors
/// assert!(rows.iter().all(|r| r.ratio >= 1.0 - 1e-12)); // never beats OMIM
/// ```
pub fn run_trace_sweep(trace: &Trace, config: &SweepConfig) -> Result<Vec<SweepRow>> {
    let mut rows = Vec::with_capacity(config.heuristics.len() * config.factors.len());
    let unbounded = trace.to_instance(MemSize::UNBOUNDED)?;
    let omim = johnson_makespan(&unbounded);
    for &factor in &config.factors {
        let instance = trace.to_instance_scaled(factor)?;
        for &heuristic in &config.heuristics {
            let makespan = run_heuristic(&instance, heuristic)?.makespan(&instance);
            rows.push(SweepRow {
                kernel: trace.kernel.clone(),
                rank: trace.rank,
                factor,
                capacity: instance.capacity(),
                heuristic: heuristic.name().to_string(),
                makespan,
                omim,
                ratio: makespan.ratio(omim),
            });
        }
    }
    Ok(rows)
}

/// Runs the sweep over a whole suite of traces, spreading the traces over
/// `threads` worker threads (each trace is independent).
///
/// Workers claim traces one at a time from a shared index instead of being
/// handed fixed chunks, so a single slow trace (the HF/CCSD suites mix rank
/// sizes that differ by orders of magnitude) delays only the worker running
/// it while the others drain the rest of the suite. Rows come back in the
/// same deterministic order as a sequential run regardless of which worker
/// processed which trace.
///
/// # Errors
///
/// A failing trace stops the pool: the remaining workers claim no further
/// traces, and among the failures observed the one with the lowest trace
/// index is returned (so a single bad trace yields a stable error). A panic
/// inside a trace is caught and reported as [`CoreError::Internal`] instead
/// of poisoning the caller.
///
/// ```
/// use dts_analysis::sweep::{run_suite_sweep, SweepConfig};
/// use dts_chem::suite::{generate_partial_suite, SuiteConfig};
/// use dts_chem::Kernel;
/// use dts_heuristics::Heuristic;
///
/// let traces = generate_partial_suite(Kernel::HartreeFock, &SuiteConfig::small(), 2);
/// let config = SweepConfig {
///     heuristics: vec![Heuristic::MAMR],
///     factors: vec![1.0],
/// };
/// // Worker count only affects wall-clock time, never the rows.
/// let parallel = run_suite_sweep(&traces, &config, 2).unwrap();
/// assert_eq!(parallel, run_suite_sweep(&traces, &config, 1).unwrap());
/// ```
pub fn run_suite_sweep(
    traces: &[Trace],
    config: &SweepConfig,
    threads: usize,
) -> Result<Vec<SweepRow>> {
    let per_trace = run_indexed_pool(traces.len(), threads, |index| {
        run_trace_sweep(&traces[index], config)
    })?;
    Ok(per_trace.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_chem::{suite::generate_partial_suite, suite::SuiteConfig, Kernel};

    fn small_traces() -> Vec<Trace> {
        generate_partial_suite(Kernel::HartreeFock, &SuiteConfig::small(), 2)
    }

    #[test]
    fn capacity_factors_match_the_paper() {
        let f = capacity_factors();
        assert_eq!(f.len(), 9);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], 1.125);
        assert_eq!(f[8], 2.0);
    }

    #[test]
    fn sweep_rows_cover_every_combination() {
        let traces = small_traces();
        let config = SweepConfig {
            heuristics: vec![Heuristic::OS, Heuristic::OOSIM, Heuristic::MAMR],
            factors: vec![1.0, 1.5, 2.0],
        };
        let rows = run_trace_sweep(&traces[0], &config).unwrap();
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().all(|r| r.ratio >= 1.0 - 1e-12));
        assert!(rows.iter().all(|r| r.kernel == "HF"));
    }

    #[test]
    fn ratios_do_not_increase_with_capacity_for_corrected_heuristics() {
        // More memory can only help OOLCMR on a given trace (it degenerates
        // to the Johnson order when memory stops being a constraint).
        let traces = small_traces();
        let config = SweepConfig {
            heuristics: vec![Heuristic::OOLCMR],
            factors: vec![1.0, 2.0, 1000.0],
        };
        let rows = run_trace_sweep(&traces[0], &config).unwrap();
        assert!(rows[2].ratio <= rows[0].ratio + 1e-9);
        // With a huge capacity the corrected heuristic reaches OMIM exactly.
        assert!((rows[2].ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn suite_sweep_aggregates_and_parallel_matches_sequential() {
        let traces = small_traces();
        let config = SweepConfig {
            heuristics: vec![Heuristic::SCMR, Heuristic::OOSCMR],
            factors: vec![1.0, 1.5],
        };
        let sequential = run_suite_sweep(&traces, &config, 1).unwrap();
        let parallel = run_suite_sweep(&traces, &config, 2).unwrap();
        assert_eq!(sequential.len(), traces.len() * 2 * 2);
        assert_eq!(sequential, parallel);
        // More workers than traces: the extra workers find the queue empty
        // and exit; the rows still come back in sequential order.
        let oversubscribed = run_suite_sweep(&traces, &config, 64).unwrap();
        assert_eq!(sequential, oversubscribed);
    }

    #[test]
    fn suite_sweep_propagates_worker_errors() {
        // An empty trace cannot be turned into an instance; the worker that
        // claims it must surface the error instead of panicking the pool,
        // whichever position the bad trace occupies.
        let good = small_traces();
        let bad = Trace {
            kernel: "HF".into(),
            rank: 999,
            tasks: Vec::new(),
            model: None,
            cost_model: None,
        };
        let config = SweepConfig {
            heuristics: vec![Heuristic::OS],
            factors: vec![1.0],
        };
        for position in 0..=good.len() {
            let mut traces = good.clone();
            traces.insert(position, bad.clone());
            let err = run_suite_sweep(&traces, &config, 2).unwrap_err();
            assert_eq!(err, dts_core::CoreError::EmptyInstance, "{position}");
        }
    }
}
