//! Descriptive statistics for the box plots of the evaluation section.

use serde::{Deserialize, Serialize};

/// Box-plot summary of a sample: median, quartiles, whiskers (1.5 IQR rule)
/// and outliers, exactly what Figs. 9 and 11 of the paper display.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
    /// Lower whisker (smallest observation within 1.5 IQR below Q1).
    pub whisker_low: f64,
    /// Upper whisker (largest observation within 1.5 IQR above Q3).
    pub whisker_high: f64,
    /// Observations outside the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxplotStats {
    /// Computes the statistics of a sample. Returns `None` for an empty
    /// sample and for a sample containing NaN: quartiles of an unordered
    /// value are meaningless, and rejecting NaN here keeps degenerate ratios
    /// from crashing sweep reports downstream.
    pub fn of(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted: Vec<f64> = sample.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let q1 = quantile(&sorted, 0.25);
        let median = quantile(&sorted, 0.5);
        let q3 = quantile(&sorted, 0.75);
        let iqr = q3 - q1;
        let low_fence = q1 - 1.5 * iqr;
        let high_fence = q3 + 1.5 * iqr;
        let whisker_low = sorted
            .iter()
            .copied()
            .find(|&x| x >= low_fence)
            .unwrap_or(sorted[0]);
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= high_fence)
            .unwrap_or(sorted[count - 1]);
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&x| x < whisker_low || x > whisker_high)
            .collect();
        Some(BoxplotStats {
            count,
            mean,
            min: sorted[0],
            q1,
            median,
            q3,
            max: sorted[count - 1],
            whisker_low,
            whisker_high,
            outliers,
        })
    }
}

/// Linear-interpolation quantile of an already-sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let low = pos.floor() as usize;
    let high = pos.ceil() as usize;
    if low == high {
        sorted[low]
    } else {
        let frac = pos - low as f64;
        sorted[low] * (1.0 - frac) + sorted[high] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_a_simple_sample() {
        let sample = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let s = BoxplotStats::of(&sample).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert!(s.outliers.is_empty());
    }

    #[test]
    fn outliers_are_detected() {
        let mut sample = vec![1.0; 20];
        sample.push(100.0);
        let s = BoxplotStats::of(&sample).unwrap();
        assert_eq!(s.outliers, vec![100.0]);
        assert_eq!(s.whisker_high, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn single_observation_and_empty_samples() {
        let s = BoxplotStats::of(&[7.5]).unwrap();
        assert_eq!(s.median, 7.5);
        assert_eq!(s.q1, 7.5);
        assert_eq!(s.whisker_high, 7.5);
        assert!(BoxplotStats::of(&[]).is_none());
    }

    #[test]
    fn nan_samples_are_rejected_not_panicked_on() {
        assert!(BoxplotStats::of(&[f64::NAN]).is_none());
        assert!(BoxplotStats::of(&[1.0, f64::NAN, 2.0]).is_none());
        assert!(BoxplotStats::of(&[f64::NAN; 4]).is_none());
        // Infinities are ordered, so they remain acceptable observations.
        let s = BoxplotStats::of(&[1.0, f64::INFINITY]).unwrap();
        assert_eq!(s.max, f64::INFINITY);
    }

    #[test]
    fn order_does_not_matter() {
        let a = BoxplotStats::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = BoxplotStats::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = vec![0.0, 10.0];
        assert_eq!(quantile(&sorted, 0.25), 2.5);
        assert_eq!(quantile(&sorted, 0.5), 5.0);
        assert_eq!(quantile(&sorted, 1.0), 10.0);
    }
}
