//! End-to-end experiments reproducing the evaluation figures.

use crate::stats::BoxplotStats;
use crate::sweep::{run_suite_sweep, SweepConfig, SweepRow};
use dts_chem::Trace;
use dts_core::prelude::*;
use dts_flowshop::johnson::johnson_makespan;
use dts_heuristics::{
    batch::{run_heuristic_batched, BatchConfig},
    best_in_category, Heuristic, HeuristicCategory,
};
use dts_milp::lp_k_sweep;
use serde::{Deserialize, Serialize};

/// One aggregated experiment data point: a heuristic (or category/lp.k
/// label) at a capacity factor, summarized over all traces of a suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Kernel of the suite (`"HF"` / `"CCSD"`).
    pub kernel: String,
    /// Capacity factor (multiple of each trace's own `mc`).
    pub factor: f64,
    /// Label of the series (heuristic name, category name or `lp.k`).
    pub label: String,
    /// Distribution of the ratio-to-optimal over the traces.
    pub ratios: BoxplotStats,
}

/// Figs. 9 and 11: every heuristic, every capacity factor, distribution of
/// the ratio-to-optimal over the traces of a suite.
pub fn heuristic_experiment(
    traces: &[Trace],
    config: &SweepConfig,
    threads: usize,
) -> Result<Vec<ExperimentRow>> {
    let rows = run_suite_sweep(traces, config, threads)?;
    Ok(aggregate(&rows))
}

fn aggregate(rows: &[SweepRow]) -> Vec<ExperimentRow> {
    let mut grouped: std::collections::BTreeMap<(String, String, u64), Vec<f64>> =
        std::collections::BTreeMap::new();
    for row in rows {
        grouped
            .entry((
                row.kernel.clone(),
                row.heuristic.clone(),
                (row.factor * 1000.0).round() as u64,
            ))
            .or_default()
            .push(row.ratio);
    }
    grouped
        .into_iter()
        .filter_map(|((kernel, label, factor_millis), ratios)| {
            nan_free_stats(ratios).map(|ratios| ExperimentRow {
                kernel,
                factor: factor_millis as f64 / 1000.0,
                label,
                ratios,
            })
        })
        .collect()
}

/// Summarizes a group of ratios, dropping NaN observations first: NaN has no
/// place in an ordered summary, and a single degenerate ratio must not drop
/// the whole group from a report. Returns `None` only when nothing remains.
fn nan_free_stats(mut ratios: Vec<f64>) -> Option<BoxplotStats> {
    ratios.retain(|r| !r.is_nan());
    BoxplotStats::of(&ratios)
}

/// Figs. 10, 12 and 13: the best variant of each category (plus OS) at every
/// capacity factor. When `batch` is provided the heuristics are applied in
/// batches (Fig. 13), otherwise on the whole trace.
pub fn best_variant_experiment(
    traces: &[Trace],
    factors: &[f64],
    batch: Option<BatchConfig>,
) -> Result<Vec<ExperimentRow>> {
    let mut out = Vec::new();
    for &factor in factors {
        let mut per_category: std::collections::BTreeMap<String, Vec<f64>> =
            std::collections::BTreeMap::new();
        for trace in traces {
            let instance = trace.to_instance_scaled(factor)?;
            let omim = johnson_makespan(&instance);
            for category in HeuristicCategory::ALL {
                let best = match batch {
                    None => best_in_category(&instance, category)?,
                    Some(cfg) => {
                        let mut best = Time::MAX;
                        for heuristic in Heuristic::in_category(category) {
                            let makespan = run_heuristic_batched(&instance, heuristic, cfg)?
                                .makespan(&instance);
                            if makespan < best {
                                best = makespan;
                            }
                        }
                        best
                    }
                };
                per_category
                    .entry(category.to_string())
                    .or_default()
                    .push(best.ratio(omim));
            }
        }
        for (label, ratios) in per_category {
            let Some(ratios) = nan_free_stats(ratios) else {
                continue;
            };
            out.push(ExperimentRow {
                kernel: traces.first().map(|t| t.kernel.clone()).unwrap_or_default(),
                factor,
                label,
                ratios,
            });
        }
    }
    Ok(out)
}

/// Fig. 7: the proposed heuristics against the iterative MILP heuristic
/// `lp.k` (k = 3..6) on a single trace across the capacity sweep. Returns
/// `(label, factor, ratio)` tuples.
pub fn lp_comparison_experiment(
    trace: &Trace,
    factors: &[f64],
    heuristics: &[Heuristic],
) -> Result<Vec<(String, f64, f64)>> {
    let unbounded = trace.to_instance(MemSize::UNBOUNDED)?;
    let omim = johnson_makespan(&unbounded);
    let mut out = Vec::new();
    for &factor in factors {
        let instance = trace.to_instance_scaled(factor)?;
        out.push(("OMIM".to_string(), factor, 1.0));
        for &heuristic in heuristics {
            let makespan = dts_heuristics::run_heuristic(&instance, heuristic)?.makespan(&instance);
            out.push((heuristic.name().to_string(), factor, makespan.ratio(omim)));
        }
        // The sweep solves the four window sizes on parallel workers; rows
        // come back in the paper's `lp.3`..`lp.6` order either way.
        for (k, makespan) in lp_k_sweep(&instance)? {
            out.push((format!("lp.{k}"), factor, makespan.ratio(omim)));
        }
    }
    Ok(out)
}

/// Per-capacity-factor list of `(category label, mean ratio)` pairs, as
/// produced by [`category_means`].
pub type CategoryMeans = Vec<(f64, Vec<(String, f64)>)>;

/// Table 6: checks that each heuristic family behaves as expected in its
/// favorable situation. Returns, per capacity factor, the mean ratio of the
/// three categories — used by the `table6_favorable` bench and the tests to
/// confirm e.g. that corrected heuristics win at moderate capacities.
pub fn category_means(traces: &[Trace], factors: &[f64]) -> Result<CategoryMeans> {
    let rows = best_variant_experiment(traces, factors, None)?;
    let mut out: CategoryMeans = Vec::new();
    for &factor in factors {
        let means: Vec<(String, f64)> = rows
            .iter()
            .filter(|r| (r.factor - factor).abs() < 1e-9)
            .map(|r| (r.label.clone(), r.ratios.mean))
            .collect();
        out.push((factor, means));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_chem::{suite::generate_partial_suite, suite::SuiteConfig, Kernel};

    fn traces(kernel: Kernel, n: usize) -> Vec<Trace> {
        generate_partial_suite(kernel, &SuiteConfig::small(), n)
    }

    #[test]
    fn heuristic_experiment_produces_one_row_per_cell() {
        let traces = traces(Kernel::HartreeFock, 2);
        let config = SweepConfig {
            heuristics: vec![Heuristic::OS, Heuristic::OOLCMR],
            factors: vec![1.0, 2.0],
        };
        let rows = heuristic_experiment(&traces, &config, 2).unwrap();
        assert_eq!(rows.len(), 4); // 2 heuristics x 2 factors
        for row in &rows {
            assert_eq!(row.ratios.count, 2); // two traces
            assert!(row.ratios.min >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn best_variant_experiment_covers_all_categories() {
        let traces = traces(Kernel::HartreeFock, 2);
        let rows = best_variant_experiment(&traces, &[1.0, 1.5], None).unwrap();
        assert_eq!(rows.len(), 2 * HeuristicCategory::ALL.len());
        let labels: std::collections::BTreeSet<_> = rows.iter().map(|r| r.label.clone()).collect();
        assert!(labels.contains("Static"));
        assert!(labels.contains("Dynamic"));
        assert!(labels.contains("Static+Dynamic"));
        assert!(labels.contains("OS"));
    }

    #[test]
    fn batched_experiment_runs() {
        let traces = traces(Kernel::Ccsd, 1);
        let rows = best_variant_experiment(&traces, &[1.25], Some(BatchConfig { batch_size: 50 }))
            .unwrap();
        assert_eq!(rows.len(), HeuristicCategory::ALL.len());
        assert!(rows.iter().all(|r| r.ratios.min >= 1.0 - 1e-12));
    }

    #[test]
    fn lp_comparison_includes_every_series() {
        let traces = traces(Kernel::HartreeFock, 1);
        let series = lp_comparison_experiment(
            &traces[0],
            &[1.0, 1.5],
            &[Heuristic::OOSIM, Heuristic::SCMR],
        )
        .unwrap();
        // Per factor: OMIM + 2 heuristics + 4 lp.k series.
        assert_eq!(series.len(), 2 * (1 + 2 + 4));
        assert!(series.iter().all(|(_, _, ratio)| *ratio >= 1.0 - 1e-12));
    }

    #[test]
    fn ample_memory_lets_corrected_category_reach_the_bound() {
        let traces = traces(Kernel::HartreeFock, 2);
        let means = category_means(&traces, &[8.0]).unwrap();
        let (_, labels) = &means[0];
        let corrected = labels
            .iter()
            .find(|(l, _)| l == "Static+Dynamic")
            .map(|(_, m)| *m)
            .unwrap();
        assert!((corrected - 1.0).abs() < 1e-9);
    }
}
