//! Calibrated execution-time model for the tensor kernels.
//!
//! The original study timed NWChem kernels on PNNL's Cascade machine (Intel
//! Xeon E5-2670 nodes); we do not have that machine, so the trace generators
//! convert flop and byte counts into times with a simple roofline-style
//! model. The default constants approximate one Cascade core; the absolute
//! values do not matter for the experiments (every plot of the paper is a
//! ratio to the OMIM lower bound), only the relative magnitude of
//! communication and computation does, and that is preserved by construction
//! because both come from the same tile sizes.

use crate::contraction::ContractionSpec;
use crate::tile::TileShape;
use serde::{Deserialize, Serialize};

/// Cost of executing a kernel: flops performed and bytes touched in local
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes read and written in local memory.
    pub bytes: u64,
}

impl KernelCost {
    /// Cost of a tensor transpose of the given shape.
    pub fn transpose(shape: TileShape) -> Self {
        KernelCost {
            flops: 0,
            bytes: 2 * shape.bytes(),
        }
    }

    /// Cost of a contraction.
    pub fn contraction(spec: ContractionSpec) -> Self {
        KernelCost {
            flops: spec.flops(),
            bytes: spec.input_bytes() + spec.output_bytes(),
        }
    }

    /// Sum of two costs (a task usually performs a few transposes plus one
    /// contraction).
    pub fn plus(self, other: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// Roofline-style execution-time model for one core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Sustained floating-point rate in flop/s.
    pub flops_per_second: f64,
    /// Sustained local-memory bandwidth in bytes/s.
    pub memory_bandwidth: f64,
    /// Fixed per-kernel overhead in seconds (task launch, integral screening,
    /// bookkeeping).
    pub kernel_overhead: f64,
}

impl Default for CostModel {
    /// Approximation of one Intel Xeon E5-2670 (Sandy Bridge) core as found
    /// in the Cascade nodes: ~8 Gflop/s sustained on the TCE kernels,
    /// ~4 GB/s per-core memory bandwidth, 10 µs of per-task overhead.
    fn default() -> Self {
        CostModel {
            flops_per_second: 8.0e9,
            memory_bandwidth: 4.0e9,
            kernel_overhead: 10.0e-6,
        }
    }
}

impl CostModel {
    /// Execution time in seconds of a kernel with the given cost: the
    /// roofline maximum of compute time and memory time, plus the overhead.
    pub fn seconds(&self, cost: KernelCost) -> f64 {
        let compute = cost.flops as f64 / self.flops_per_second;
        let memory = cost.bytes as f64 / self.memory_bandwidth;
        compute.max(memory) + self.kernel_overhead
    }

    /// Execution time in integer microseconds (the resolution of the traces).
    pub fn micros(&self, cost: KernelCost) -> u64 {
        (self.seconds(cost) * 1e6).round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_is_memory_bound() {
        let model = CostModel::default();
        let cost = KernelCost::transpose(TileShape::matrix(100, 100));
        assert_eq!(cost.flops, 0);
        assert_eq!(cost.bytes, 160_000);
        let t = model.seconds(cost);
        // 160 kB at 4 GB/s = 40 µs, plus 10 µs overhead.
        assert!((t - 50e-6).abs() < 1e-9);
    }

    #[test]
    fn contraction_is_compute_bound_for_square_tiles() {
        let model = CostModel::default();
        let cost = KernelCost::contraction(ContractionSpec::new(100, 100, 100));
        // 2 Mflop at 8 Gflop/s = 250 µs, memory 240 kB at 4 GB/s = 60 µs.
        let t = model.seconds(cost);
        assert!((t - 260e-6).abs() < 1e-9);
        assert_eq!(model.micros(cost), 260);
    }

    #[test]
    fn costs_compose() {
        let a = KernelCost::transpose(TileShape::matrix(10, 10));
        let b = KernelCost::contraction(ContractionSpec::new(10, 10, 10));
        let total = a.plus(b);
        assert_eq!(total.flops, b.flops);
        assert_eq!(total.bytes, a.bytes + b.bytes);
    }

    #[test]
    fn micros_never_rounds_to_zero() {
        let model = CostModel {
            flops_per_second: 1e15,
            memory_bandwidth: 1e15,
            kernel_overhead: 0.0,
        };
        assert_eq!(model.micros(KernelCost { flops: 1, bytes: 1 }), 1);
    }
}
