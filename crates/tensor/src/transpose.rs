//! Tensor transpose (index permutation) kernel.

use crate::tile::{Tile, TileShape};

/// Transposes (permutes the indices of) a tile: output index `k` takes the
/// value of input index `perm[k]`. This is the memory-bound kernel of the
/// NWChem tensor library ("tensor transpose" in the paper's Section 5).
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..4`.
pub fn transpose(input: &Tile, perm: [usize; 4]) -> Tile {
    let mut seen = [false; 4];
    for &p in &perm {
        assert!(p < 4 && !seen[p], "perm must be a permutation of 0..4");
        seen[p] = true;
    }
    let in_shape = input.shape();
    let out_shape = TileShape {
        dims: [
            in_shape.dims[perm[0]],
            in_shape.dims[perm[1]],
            in_shape.dims[perm[2]],
            in_shape.dims[perm[3]],
        ],
    };
    let mut out = Tile::zeros(out_shape);
    let d = out_shape.dims;
    for i0 in 0..d[0] {
        for i1 in 0..d[1] {
            for i2 in 0..d[2] {
                for i3 in 0..d[3] {
                    let out_idx = [i0, i1, i2, i3];
                    let mut in_idx = [0usize; 4];
                    for k in 0..4 {
                        in_idx[perm[k]] = out_idx[k];
                    }
                    out.set(out_idx, input.get(in_idx));
                }
            }
        }
    }
    out
}

/// Number of bytes moved by a transpose of `shape` (read + write).
pub fn transpose_bytes(shape: TileShape) -> u64 {
    2 * shape.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_transpose_swaps_indices() {
        let mut t = Tile::zeros(TileShape::matrix(2, 3));
        t.set([0, 2, 0, 0], 7.0);
        t.set([1, 0, 0, 0], -2.0);
        let tt = transpose(&t, [1, 0, 2, 3]);
        assert_eq!(tt.shape(), TileShape::matrix(3, 2));
        assert_eq!(tt.get([2, 0, 0, 0]), 7.0);
        assert_eq!(tt.get([0, 1, 0, 0]), -2.0);
    }

    #[test]
    fn double_transpose_is_identity() {
        let t = Tile::random(TileShape::rank4(3, 4, 2, 5), &mut StdRng::seed_from_u64(3));
        let perm = [2, 0, 3, 1];
        let inverse = {
            let mut inv = [0usize; 4];
            for (k, &p) in perm.iter().enumerate() {
                inv[p] = k;
            }
            inv
        };
        let back = transpose(&transpose(&t, perm), inverse);
        assert_eq!(back, t);
    }

    #[test]
    fn transpose_preserves_norm() {
        let t = Tile::random(TileShape::rank4(4, 3, 2, 6), &mut StdRng::seed_from_u64(9));
        let tt = transpose(&t, [3, 1, 0, 2]);
        assert!((t.norm() - tt.norm()).abs() < 1e-12);
        assert_eq!(tt.shape().dims, [6, 3, 4, 2]);
    }

    #[test]
    fn transpose_bytes_counts_read_and_write() {
        assert_eq!(transpose_bytes(TileShape::matrix(100, 100)), 160_000);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn invalid_permutation_panics() {
        let t = Tile::zeros(TileShape::matrix(2, 2));
        let _ = transpose(&t, [0, 0, 2, 3]);
    }
}
