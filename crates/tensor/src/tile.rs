//! Dense tensor tiles.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a tile: up to four dimensions (HF works with 2-index tiles of
/// the Fock/density matrices, CCSD with 4-index amplitude/integral tiles).
/// Unused trailing dimensions are 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileShape {
    /// Extent of each of the four dimensions (1 for unused dimensions).
    pub dims: [usize; 4],
}

impl TileShape {
    /// A 2-dimensional (matrix) tile.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        TileShape {
            dims: [rows, cols, 1, 1],
        }
    }

    /// A 4-dimensional tile.
    pub fn rank4(d0: usize, d1: usize, d2: usize, d3: usize) -> Self {
        TileShape {
            dims: [d0, d1, d2, d3],
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` iff the tile holds no element (any dimension is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes for `f64` elements.
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * std::mem::size_of::<f64>() as u64
    }

    /// Row-major strides.
    pub fn strides(&self) -> [usize; 4] {
        let d = self.dims;
        [d[1] * d[2] * d[3], d[2] * d[3], d[3], 1]
    }

    /// Flattens a 4-index coordinate into a linear offset.
    pub fn offset(&self, idx: [usize; 4]) -> usize {
        let s = self.strides();
        idx[0] * s[0] + idx[1] * s[1] + idx[2] * s[2] + idx[3] * s[3]
    }
}

impl fmt::Display for TileShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{}",
            self.dims[0], self.dims[1], self.dims[2], self.dims[3]
        )
    }
}

/// A dense tile of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tile {
    shape: TileShape,
    data: Vec<f64>,
}

impl Tile {
    /// Creates a zero-filled tile.
    pub fn zeros(shape: TileShape) -> Self {
        Tile {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tile filled with uniform random values in `[-1, 1]`.
    pub fn random<R: Rng + ?Sized>(shape: TileShape, rng: &mut R) -> Self {
        let dist = Uniform::new_inclusive(-1.0f64, 1.0);
        Tile {
            data: (0..shape.len()).map(|_| dist.sample(rng)).collect(),
            shape,
        }
    }

    /// Creates a tile from existing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape.
    pub fn from_data(shape: TileShape, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), shape.len(), "data length must match the shape");
        Tile { shape, data }
    }

    /// The tile's shape.
    pub fn shape(&self) -> TileShape {
        self.shape
    }

    /// The underlying storage (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access by 4-index coordinate.
    pub fn get(&self, idx: [usize; 4]) -> f64 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element access by 4-index coordinate.
    pub fn set(&mut self, idx: [usize; 4], value: f64) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Size in bytes of the tile's data.
    pub fn bytes(&self) -> u64 {
        self.shape.bytes()
    }

    /// Frobenius norm (used by tests as a permutation-invariant checksum).
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_strides() {
        let s = TileShape::matrix(3, 5);
        assert_eq!(s.len(), 15);
        assert_eq!(s.bytes(), 120);
        assert_eq!(s.strides(), [5, 1, 1, 1]);
        assert_eq!(s.offset([2, 3, 0, 0]), 13);
        let r4 = TileShape::rank4(2, 3, 4, 5);
        assert_eq!(r4.len(), 120);
        assert_eq!(r4.strides(), [60, 20, 5, 1]);
        assert_eq!(r4.offset([1, 2, 3, 4]), 60 + 40 + 15 + 4);
        assert_eq!(r4.to_string(), "2x3x4x5");
        assert!(!r4.is_empty());
        assert!(TileShape::matrix(0, 7).is_empty());
    }

    #[test]
    fn tile_construction_and_access() {
        let shape = TileShape::matrix(2, 2);
        let mut t = Tile::zeros(shape);
        assert_eq!(t.norm(), 0.0);
        t.set([0, 1, 0, 0], 3.0);
        t.set([1, 0, 0, 0], 4.0);
        assert_eq!(t.get([0, 1, 0, 0]), 3.0);
        assert_eq!(t.norm(), 5.0);
        assert_eq!(t.bytes(), 32);
        let u = Tile::from_data(shape, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(u.get([1, 1, 0, 0]), 4.0);
    }

    #[test]
    fn random_tiles_are_reproducible_and_bounded() {
        let shape = TileShape::rank4(3, 3, 3, 3);
        let a = Tile::random(shape, &mut StdRng::seed_from_u64(1));
        let b = Tile::random(shape, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
        assert!(a.data().iter().all(|x| (-1.0..=1.0).contains(x)));
    }

    #[test]
    #[should_panic]
    fn mismatched_data_length_panics() {
        let _ = Tile::from_data(TileShape::matrix(2, 2), vec![1.0]);
    }
}
