//! Tensor contraction (block matrix multiplication) kernel.
//!
//! Every tensor contraction over tiles can be cast as a matrix
//! multiplication `C[m, n] += Σ_k A[m, k] · B[k, n]` once the free and
//! contracted indices are grouped — this is exactly how NWChem's TCE lowers
//! its contractions. The spec therefore only carries the three combined
//! extents `(m, n, k)`.

use crate::tile::{Tile, TileShape};
use serde::{Deserialize, Serialize};

/// A contraction `C[m, n] += Σ_k A[m, k] · B[k, n]` between two tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContractionSpec {
    /// Combined extent of the free indices of `A` (rows of the result).
    pub m: usize,
    /// Combined extent of the free indices of `B` (columns of the result).
    pub n: usize,
    /// Combined extent of the contracted indices.
    pub k: usize,
}

impl ContractionSpec {
    /// Creates a spec.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        ContractionSpec { m, n, k }
    }

    /// Floating-point operations performed (multiply + add).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Bytes of input data read (A and B tiles).
    pub fn input_bytes(&self) -> u64 {
        ((self.m * self.k + self.k * self.n) * std::mem::size_of::<f64>()) as u64
    }

    /// Bytes of output data produced (C tile).
    pub fn output_bytes(&self) -> u64 {
        (self.m * self.n * std::mem::size_of::<f64>()) as u64
    }

    /// Shape of the `A` operand.
    pub fn a_shape(&self) -> TileShape {
        TileShape::matrix(self.m, self.k)
    }

    /// Shape of the `B` operand.
    pub fn b_shape(&self) -> TileShape {
        TileShape::matrix(self.k, self.n)
    }

    /// Shape of the `C` result.
    pub fn c_shape(&self) -> TileShape {
        TileShape::matrix(self.m, self.n)
    }
}

/// Performs `C += A · B` with a simple ikj loop nest (cache-friendlier than
/// the naive ijk order; the kernel is here for functional fidelity, not to
/// compete with a tuned BLAS).
///
/// # Panics
/// Panics if the operand shapes do not match `spec`.
pub fn contract(spec: ContractionSpec, a: &Tile, b: &Tile, c: &mut Tile) {
    assert_eq!(a.shape(), spec.a_shape(), "A operand shape mismatch");
    assert_eq!(b.shape(), spec.b_shape(), "B operand shape mismatch");
    assert_eq!(c.shape(), spec.c_shape(), "C operand shape mismatch");
    let (m, n, k) = (spec.m, spec.n, spec.k);
    let a_data = a.data();
    let b_data = b.data();
    let c_data = c.data_mut();
    for i in 0..m {
        for p in 0..k {
            let a_ip = a_data[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            let c_row = &mut c_data[i * n..(i + 1) * n];
            for j in 0..n {
                c_row[j] += a_ip * b_row[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reference(spec: ContractionSpec, a: &Tile, b: &Tile) -> Tile {
        let mut c = Tile::zeros(spec.c_shape());
        for i in 0..spec.m {
            for j in 0..spec.n {
                let mut acc = 0.0;
                for p in 0..spec.k {
                    acc += a.data()[i * spec.k + p] * b.data()[p * spec.n + j];
                }
                c.data_mut()[i * spec.n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn small_contraction_matches_reference() {
        let spec = ContractionSpec::new(2, 3, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tile::random(spec.a_shape(), &mut rng);
        let b = Tile::random(spec.b_shape(), &mut rng);
        let mut c = Tile::zeros(spec.c_shape());
        contract(spec, &a, &b, &mut c);
        let r = reference(spec, &a, &b);
        for (x, y) in c.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulation_adds_to_existing_c() {
        let spec = ContractionSpec::new(2, 2, 2);
        let a = Tile::from_data(spec.a_shape(), vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tile::from_data(spec.b_shape(), vec![1.0, 2.0, 3.0, 4.0]);
        let mut c = Tile::from_data(spec.c_shape(), vec![10.0, 10.0, 10.0, 10.0]);
        contract(spec, &a, &b, &mut c);
        assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn flop_and_byte_accounting() {
        let spec = ContractionSpec::new(100, 100, 100);
        assert_eq!(spec.flops(), 2_000_000);
        assert_eq!(spec.input_bytes(), 160_000);
        assert_eq!(spec.output_bytes(), 80_000);
    }

    #[test]
    fn larger_contraction_matches_reference() {
        let spec = ContractionSpec::new(17, 23, 31);
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tile::random(spec.a_shape(), &mut rng);
        let b = Tile::random(spec.b_shape(), &mut rng);
        let mut c = Tile::zeros(spec.c_shape());
        contract(spec, &a, &b, &mut c);
        let r = reference(spec, &a, &b);
        let diff: f64 = c
            .data()
            .iter()
            .zip(r.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let spec = ContractionSpec::new(2, 2, 2);
        let a = Tile::zeros(TileShape::matrix(3, 2));
        let b = Tile::zeros(spec.b_shape());
        let mut c = Tile::zeros(spec.c_shape());
        contract(spec, &a, &b, &mut c);
    }
}
