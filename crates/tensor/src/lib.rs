//! # dts-tensor
//!
//! Dense tensor-tile kernels used by the molecular-chemistry workload
//! generators. NWChem's Hartree–Fock and CCSD kernels spend their time in
//! two operations on tiles of distributed tensors: **tensor transposes**
//! (index permutations, memory-bound) and **tensor contractions**
//! (block matrix multiplications, compute-bound). This crate provides those
//! kernels on real `f64` buffers, counts their flops and bytes, and offers a
//! calibrated cost model that converts the counts into execution times — the
//! quantity the data-transfer traces need.
//!
//! The kernels are genuinely executed in the unit tests (so the flop
//! accounting is validated against a naive reference); the trace generators
//! in `dts-chem` use the [`cost`] model rather than timing every kernel,
//! which keeps trace generation fast and deterministic.

#![warn(missing_docs)]

pub mod contraction;
pub mod cost;
pub mod tile;
pub mod transpose;

pub use contraction::{contract, ContractionSpec};
pub use cost::{CostModel, KernelCost};
pub use tile::{Tile, TileShape};
pub use transpose::transpose;
