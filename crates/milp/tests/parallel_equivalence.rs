//! Equivalence suite for the parallel solve layers of the `lp.k` pipeline:
//! the parallel window enumeration and the parallel window-size sweep must
//! produce results identical to their sequential counterparts — not merely
//! equal makespans, but the same schedules, including which of several
//! key-tied orderings wins.

use dts_core::instances::{random_instance_decoupled_memory, table3, table5};
use dts_core::prelude::*;
use dts_milp::window::{solve_window_parallel, solve_window_sequential, WindowState};
use dts_milp::{lp_k, lp_k_sweep, LpKConfig, PARALLEL_SWEEP_MIN_TASKS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_solutions_identical(instance: &Instance, state: &WindowState, window: &[TaskId]) {
    let sequential = solve_window_sequential(instance, state, window);
    let parallel = solve_window_parallel(instance, state, window);
    assert_eq!(
        sequential.entries,
        parallel.entries,
        "entries diverged on {} (window of {})",
        instance.label,
        window.len()
    );
    assert_eq!(sequential.state.link_free, parallel.state.link_free);
    assert_eq!(sequential.state.cpu_free, parallel.state.cpu_free);
    assert_eq!(
        sequential.state.pending_releases,
        parallel.state.pending_releases
    );
}

#[test]
fn parallel_window_solver_matches_sequential_on_paper_fixtures() {
    for instance in [table3(), table5()] {
        let window = instance.task_ids();
        assert_solutions_identical(&instance, &WindowState::default(), &window);
    }
}

#[test]
fn parallel_window_solver_matches_sequential_on_seeded_instances() {
    // Windows of every size the solver accepts, both cold and warm-started.
    // Small value domains (the generator's defaults are already narrow)
    // produce plenty of key ties, which is exactly where a combination-order
    // bug between the per-prefix workers would show.
    let mut rng = StdRng::seed_from_u64(2025);
    for seed in 0..8u64 {
        for size in 1..=8usize {
            let instance = random_instance_decoupled_memory(&mut rng, size, 1.2);
            let window = instance.task_ids();
            assert_solutions_identical(&instance, &WindowState::default(), &window);

            // Warm start: pretend earlier windows still hold some memory.
            let held = instance.min_capacity().bytes() / 2;
            let state = WindowState {
                link_free: Time::units_int(seed + 1),
                cpu_free: Time::units_int(seed + 3),
                pending_releases: vec![(
                    Time::units_int(seed + 2 + rng.gen_range(0..4u64)),
                    MemSize::from_bytes(held),
                )],
            };
            assert_solutions_identical(&instance, &state, &window);
        }
    }
}

#[test]
fn parallel_sweep_matches_per_size_runs() {
    // Large enough to cross PARALLEL_SWEEP_MIN_TASKS, so the sweep takes the
    // threaded path; the small paper fixtures exercise the sequential path.
    let mut rng = StdRng::seed_from_u64(11);
    let big = random_instance_decoupled_memory(&mut rng, PARALLEL_SWEEP_MIN_TASKS + 9, 1.25);
    for instance in [table3(), table5(), big] {
        let sweep = lp_k_sweep(&instance).unwrap();
        assert_eq!(sweep.len(), LpKConfig::PAPER_WINDOW_SIZES.len());
        for (i, &k) in LpKConfig::PAPER_WINDOW_SIZES.iter().enumerate() {
            assert_eq!(sweep[i].0, k, "sweep rows must stay in size order");
            let reference = lp_k(&instance, LpKConfig { window: k })
                .unwrap()
                .makespan(&instance);
            assert_eq!(sweep[i].1, reference, "lp.{k} on {}", instance.label);
        }
    }
}

#[test]
fn parallel_sweep_reports_the_earliest_failing_size() {
    // A malformed (deserialized) instance fails every window size with the
    // same error; the sweep must report it exactly like a sequential run.
    let json = format!(
        r#"{{
            "tasks": [{}],
            "capacity": 4,
            "label": "malformed"
        }}"#,
        (0..PARALLEL_SWEEP_MIN_TASKS + 1)
            .map(|i| format!(
                r#"{{"name": "t{i}", "comm_time": 1000, "comp_time": 1000, "mem": {}}}"#,
                if i == 3 { 9 } else { 2 }
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let instance: Instance = serde_json::from_str(&json).unwrap();
    let parallel_err = lp_k_sweep(&instance).unwrap_err();
    let sequential_err = lp_k(&instance, LpKConfig { window: 3 }).unwrap_err();
    assert_eq!(parallel_err, sequential_err);
}
